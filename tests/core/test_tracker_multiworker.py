"""Multi-worker tracker scenarios beyond the basic invariants."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import TopKSparsifier, encode_sparse
from repro.core.tracker import ModelDifferenceTracker

SHAPES = OrderedDict([("w", (30,))])


def upd(rng, scale=1.0):
    arr = rng.normal(size=30) * scale
    arr[np.abs(arr) < 0.5 * scale] = 0.0
    return OrderedDict([("w", encode_sparse(arr))])


class TestManyWorkers:
    def test_each_worker_sees_all_updates_once(self, rng):
        """Five workers with arbitrary sync patterns: at drain, every worker
        has received exactly M — no duplicates, no gaps."""
        tr = ModelDifferenceTracker(SHAPES, 5)
        received = [np.zeros(30) for _ in range(5)]
        sched = rng.integers(0, 5, size=60)
        for step, k in enumerate(sched):
            tr.apply_update(upd(rng))
            if step % 3 == 0:
                tr.model_difference(int(k))["w"].add_into(received[int(k)])
        for k in range(5):
            tr.model_difference(k)["w"].add_into(received[k])
            # atol covers float32 wire rounding of the downloaded diffs.
            np.testing.assert_allclose(received[k], tr.M["w"], atol=1e-5)

    def test_idle_worker_catches_up_in_one_download(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 3)
        for _ in range(25):
            tr.apply_update(upd(rng))
            tr.model_difference(0)  # only worker 0 syncs
        assert tr.staleness(2) == 25
        theta = np.zeros(30)
        tr.model_difference(2)["w"].add_into(theta)
        np.testing.assert_allclose(theta, tr.M["w"], atol=1e-5)
        assert tr.staleness(2) == 0

    def test_per_worker_secondary_backlogs_are_independent(self, rng):
        """With secondary compression, each worker's pending difference
        drains independently of the others' sync cadence."""
        tr = ModelDifferenceTracker(
            SHAPES, 2, secondary=TopKSparsifier(0.1, min_sparse_size=0)
        )
        for _ in range(10):
            tr.apply_update(upd(rng, scale=2.0))
        # Worker 0 drains over many syncs; worker 1 stays idle.
        got0 = np.zeros(30)
        for _ in range(40):
            tr.model_difference(0)["w"].add_into(got0)
        pending1_before = tr.M["w"] - tr.v[1]["w"]
        np.testing.assert_allclose(got0, tr.M["w"], atol=1e-9)
        # Worker 1's backlog untouched by worker 0's drain:
        np.testing.assert_array_equal(tr.M["w"] - tr.v[1]["w"], pending1_before)

    def test_interleaved_sparse_updates_commute(self, rng):
        """M depends only on the multiset of updates, not arrival order."""
        updates = [upd(np.random.default_rng(i)) for i in range(12)]
        a = ModelDifferenceTracker(SHAPES, 1)
        b = ModelDifferenceTracker(SHAPES, 1)
        for u in updates:
            a.apply_update(u)
        for u in reversed(updates):
            b.apply_update(u)
        np.testing.assert_allclose(a.M["w"], b.M["w"], atol=1e-12)
