"""Table 2 — final top-1 accuracy of all five methods, both datasets, 4 workers."""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from .common import METHOD_LABELS, mean_accuracy, resolve_fast

__all__ = ["run"]

PAPER_ROWS = [
    ("Cifar10", "MSGD", 1, "93.08%"),
    ("Cifar10", "ASGD", 4, "90.74%"),
    ("Cifar10", "GD-async", 4, "92.01%"),
    ("Cifar10", "DGC-async", 4, "92.64%"),
    ("Cifar10", "DGS", 4, "92.91%"),
    ("ImageNet", "MSGD", 1, "69.4%"),
    ("ImageNet", "ASGD", 4, "66.68%"),
    ("ImageNet", "GD-async", 4, "66.26%"),
    ("ImageNet", "DGC-async", 4, "68.37%"),
    ("ImageNet", "DGS", 4, "69.0%"),
]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0, 1, 2)) -> ExperimentReport:
    fast = resolve_fast(fast)
    if fast:
        seeds = seeds[:1]
    report = ExperimentReport(
        experiment_id="Table 2",
        title="Results of ResNet-18 stand-in on synthetic Cifar10 and ImageNet",
        headers=("Dataset", "Training Method", "Workers in total", "Top-1 Accuracy"),
        paper_rows=PAPER_ROWS,
    )
    for wl_name, pretty in (("cifar10", "Cifar10"), ("imagenet", "ImageNet")):
        wl = get_workload(wl_name)
        for method in ("msgd", "asgd", "gd_async", "dgc_async", "dgs"):
            workers = 1 if method == "msgd" else 4
            acc, std = mean_accuracy(method, wl, workers, seeds, fast)
            report.add_row(pretty, METHOD_LABELS[method], workers, f"{100 * acc:.2f}% ± {100 * std:.2f}")
    report.add_note(
        "Expected shape: MSGD best; DGS within ~0.5 pt of MSGD; DGC-async next; "
        "GD-async and ASGD trail (paper Table 2)."
    )
    return report
