"""Stochastic gradient descent with (Nesterov) momentum and weight decay."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["SGD"]


class SGD:
    """Classic SGD.  The single-node MSGD baseline of the paper (Eq. 7, N=1).

    Update rule (momentum ``m``, learning rate ``lr``)::

        u <- m * u + lr * (grad + weight_decay * w)
        w <- w - u
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the gradients currently stored on params."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += self.lr * g
                if self.nesterov:
                    p.data -= self.momentum * v + self.lr * g
                else:
                    p.data -= v
            else:
                p.data -= self.lr * g

    def velocity_bytes(self) -> int:
        """Memory held by momentum buffers (for the §5.6.2 accounting)."""
        return sum(v.nbytes for v in self._velocity if v is not None)
