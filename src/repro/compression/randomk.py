"""Random coordinate dropping (Wangni et al. 2018).

Listed in the paper's future work (§6) as a compression approach DGS could
be combined with; provided here as an alternative selector for the
combination ablation bench.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Sparsifier

__all__ = ["RandomKSparsifier"]


class RandomKSparsifier(Sparsifier):
    """Keep a uniformly random ⌈ratio·n⌉ subset, unbiased via 1/ratio scaling.

    With ``rescale=True`` the kept entries are amplified so the sparsified
    vector is an unbiased estimator of the original (the Wangni et al.
    construction).
    """

    def __init__(self, ratio: float, seed: int = 0, rescale: bool = False) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.rescale = rescale
        self._rng = np.random.default_rng(seed)

    def mask(self, arr: np.ndarray) -> np.ndarray:
        n = arr.size
        k = max(1, min(n, math.ceil(n * self.ratio)))
        idx = self._rng.choice(n, size=k, replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[idx] = True
        return mask.reshape(arr.shape)

    def split(self, arr: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        m = self.mask(arr)
        scale = 1.0 / self.ratio if self.rescale else 1.0
        sent = np.where(m, arr * scale, 0.0)
        kept = np.where(m, 0.0, arr)
        return m, sent, kept

    def __repr__(self) -> str:
        return f"RandomKSparsifier(ratio={self.ratio}, rescale={self.rescale})"
