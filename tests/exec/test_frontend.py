"""The unified Trainer front-end: one RunConfig, four backends."""

import pytest

from repro.core import Hyper
from repro.exec import RunConfig, Trainer, get_backend, train, validate_result
from repro.sim import ClusterConfig

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0)
BACKENDS = ("threaded", "process", "simulated", "sync")


def tiny_config(tiny_dataset, tiny_model_factory, **overrides):
    kwargs = dict(
        num_workers=2,
        batch_size=16,
        total_iterations=40,
        hyper=HYPER,
        seed=0,
    )
    kwargs.update(overrides)
    return RunConfig("dgs", tiny_model_factory, tiny_dataset, **kwargs)


class TestRunConfig:
    def test_rejects_bad_counts(self, tiny_dataset, tiny_model_factory):
        with pytest.raises(ValueError, match="num_workers"):
            tiny_config(tiny_dataset, tiny_model_factory, num_workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            tiny_config(tiny_dataset, tiny_model_factory, batch_size=0)
        with pytest.raises(ValueError, match="total_iterations"):
            tiny_config(tiny_dataset, tiny_model_factory, total_iterations=0)

    def test_budget_slicing(self, tiny_dataset, tiny_model_factory):
        config = tiny_config(tiny_dataset, tiny_model_factory, num_workers=4, total_iterations=100)
        assert config.iterations_per_worker() == 25
        assert config.rounds() == 25

    def test_budget_slicing_never_zero(self, tiny_dataset, tiny_model_factory):
        config = tiny_config(tiny_dataset, tiny_model_factory, num_workers=8, total_iterations=4)
        assert config.iterations_per_worker() == 1
        assert config.rounds() == 1

    def test_resolved_cluster_default(self, tiny_dataset, tiny_model_factory):
        config = tiny_config(tiny_dataset, tiny_model_factory, num_workers=3)
        assert config.resolved_cluster().num_workers == 3

    def test_cluster_worker_mismatch_rejected(self, tiny_dataset, tiny_model_factory):
        config = tiny_config(
            tiny_dataset,
            tiny_model_factory,
            num_workers=2,
            cluster=ClusterConfig.with_bandwidth(3, 10),
        )
        for name in ("simulated", "sync"):
            with pytest.raises(ValueError, match="disagrees"):
                get_backend(name).create(config)


class TestTrainerFrontend:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_returns_valid_unified_result(
        self, backend, tiny_dataset, tiny_model_factory
    ):
        spec = get_backend(backend)
        result = train(tiny_config(tiny_dataset, tiny_model_factory), backend=backend)
        assert validate_result(result, measures=spec.measures) == []
        assert result.backend == backend
        assert result.clock == spec.clock
        assert result.num_workers == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_budget_and_sample_accounting(self, backend, tiny_dataset, tiny_model_factory):
        result = train(tiny_config(tiny_dataset, tiny_model_factory), backend=backend)
        assert result.total_iterations == 40
        # every applied gradient consumed one batch of 16
        assert result.samples_processed == 40 * 16

    def test_trainer_exposes_engine_for_instrumentation(self, tiny_dataset, tiny_model_factory):
        trainer = Trainer(tiny_config(tiny_dataset, tiny_model_factory), backend="threaded")
        assert trainer.engine.server.timestamp == 0  # pre-run state is reachable
        result = trainer.run()
        assert trainer.engine.server.timestamp == result.total_iterations

    def test_default_backend_is_simulated(self, tiny_dataset, tiny_model_factory):
        result = train(tiny_config(tiny_dataset, tiny_model_factory))
        assert result.backend == "simulated"
        assert result.clock == "virtual"

    def test_ambient_backend_honoured(self, tiny_dataset, tiny_model_factory):
        from repro.exec import use_backend

        with use_backend("sync"):
            result = train(tiny_config(tiny_dataset, tiny_model_factory))
        assert result.backend == "sync"
        assert result.rounds == 20

    def test_single_node_method_rejected_on_ps_backends(self, tiny_dataset, tiny_model_factory):
        config = tiny_config(tiny_dataset, tiny_model_factory)
        config.method = "msgd"
        for backend in ("threaded", "process", "simulated"):
            with pytest.raises(ValueError, match="single-node"):
                Trainer(config, backend=backend)

    def test_sync_accepts_single_node_method(self, tiny_dataset, tiny_model_factory):
        # SSGD has no parameter server, so the local baseline spec is legal.
        config = tiny_config(tiny_dataset, tiny_model_factory)
        config.method = "msgd"
        result = train(config, backend="sync")
        assert result.method == "msgd"


class TestRunDistributedBackendParam:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_via_harness(self, backend):
        from repro.exec import TrainResult
        from repro.harness import get_workload
        from repro.harness.runners import run_distributed

        result = run_distributed(
            "dgs",
            get_workload("cifar10"),
            2,
            total_iterations=16,
            fast=True,
            backend=backend,
        )
        assert isinstance(result, TrainResult)
        assert result.backend == backend
