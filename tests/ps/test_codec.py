"""Binary wire codec: roundtrips, size accounting, format validation."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import QuantizedSparseTensor, SparseTensor, encode_sparse
from repro.ps import DiffMessage, GradientMessage, ModelMessage
from repro.ps.codec import MAGIC, decode_message, encode_message, _pack_signs, _unpack_signs


def sparse_payload(rng):
    arr = rng.normal(size=(8, 9))
    arr[np.abs(arr) < 0.9] = 0.0
    return OrderedDict([("layer.w", encode_sparse(arr)), ("layer.b", encode_sparse(rng.normal(size=5)))])


class TestSignPacking:
    def test_roundtrip(self, rng):
        signs = rng.integers(-1, 2, size=101).astype(np.int8)
        assert np.array_equal(_unpack_signs(_pack_signs(signs), 101), signs)

    def test_packed_density(self):
        signs = np.ones(1000, dtype=np.int8)
        assert len(_pack_signs(signs)) == 250  # 2 bits each

    def test_empty(self):
        assert len(_unpack_signs(_pack_signs(np.zeros(0, dtype=np.int8)), 0)) == 0


class TestGradientRoundtrip:
    def test_sparse_payload(self, rng):
        msg = GradientMessage(3, sparse_payload(rng), 17)
        out = decode_message(encode_message(msg))
        assert isinstance(out, GradientMessage)
        assert out.worker_id == 3 and out.local_iteration == 17
        for name in msg.payload:
            a, b = msg.payload[name], out.payload[name]
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_allclose(a.values, b.values, rtol=1e-6)  # f32 wire
            assert a.shape == b.shape

    def test_dense_payload(self, rng):
        payload = OrderedDict([("w", rng.normal(size=(4, 5)))])
        out = decode_message(encode_message(GradientMessage(0, payload, 0)))
        np.testing.assert_allclose(out.payload["w"], payload["w"], rtol=1e-6)

    def test_quantized_payload(self, rng):
        idx = np.array([1, 5, 9], dtype=np.int64)
        signs = np.array([1, -1, 1], dtype=np.int8)
        payload = OrderedDict([("w", QuantizedSparseTensor(idx, signs, 0.25, (12,)))])
        out = decode_message(encode_message(GradientMessage(0, payload, 0)))
        q = out.payload["w"]
        np.testing.assert_array_equal(q.indices, idx)
        np.testing.assert_array_equal(q.signs, signs)
        assert q.scale == pytest.approx(0.25)

    def test_mixed_payload(self, rng):
        payload = OrderedDict([
            ("a", rng.normal(size=6)),
            ("b", encode_sparse(np.array([0.0, 1.5, 0.0]))),
        ])
        out = decode_message(encode_message(GradientMessage(1, payload, 2)))
        assert isinstance(out.payload["a"], np.ndarray)
        assert isinstance(out.payload["b"], SparseTensor)


class TestOtherMessageKinds:
    def test_diff_roundtrip(self, rng):
        msg = DiffMessage(2, sparse_payload(rng), server_timestamp=99, staleness=4)
        out = decode_message(encode_message(msg))
        assert isinstance(out, DiffMessage)
        assert out.server_timestamp == 99

    def test_model_roundtrip(self, rng):
        payload = OrderedDict([("w", rng.normal(size=(3, 3)))])
        msg = ModelMessage(1, payload, 7, 0)
        out = decode_message(encode_message(msg))
        assert isinstance(out, ModelMessage)
        np.testing.assert_allclose(out.payload["w"], payload["w"], rtol=1e-6)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_message(object())


class TestWireSize:
    def test_matches_analytic_accounting(self, rng):
        """Measured bytes ≈ the analytic model: identical per-element costs,
        header differs only by the (small) name table."""
        payload = sparse_payload(rng)
        msg = GradientMessage(0, payload, 0)
        raw = encode_message(msg)
        analytic = msg.nbytes()
        names = sum(len(n.encode()) for n in payload)
        # elements cost exactly 8 bytes each in both models
        per_elem = sum(8 * t.nnz for t in payload.values())
        assert len(raw) >= per_elem
        assert abs(len(raw) - analytic) <= names + 64

    def test_sparse_wire_smaller_than_dense(self, rng):
        arr = rng.normal(size=1000)
        arr[np.abs(arr) < 2.0] = 0.0  # very sparse
        sparse = encode_message(GradientMessage(0, OrderedDict([("w", encode_sparse(arr))]), 0))
        dense = encode_message(GradientMessage(0, OrderedDict([("w", arr)]), 0))
        assert len(sparse) < len(dense) / 4


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            decode_message(b"\x00" * 32)

    def test_truncated_raises(self, rng):
        raw = encode_message(GradientMessage(0, sparse_payload(rng), 0))
        with pytest.raises(Exception):
            decode_message(raw[: len(raw) // 2])
