"""Model zoo: shapes, determinism, trainability."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    MLP,
    MicroResNet,
    SimpleCNN,
    cross_entropy,
    micro_resnet18,
    micro_resnet_imagenet,
)


class TestMLP:
    def test_output_shape(self, rng):
        m = MLP(10, (16, 16), 3, seed=0)
        out = m(Tensor(rng.normal(size=(5, 10))))
        assert out.shape == (5, 3)

    def test_flattens_images(self, rng):
        m = MLP(2 * 3 * 3, (8,), 2, seed=0)
        out = m(Tensor(rng.normal(size=(4, 2, 3, 3))))
        assert out.shape == (4, 2)

    def test_seed_determinism(self):
        a, b = MLP(6, (8,), 2, seed=5), MLP(6, (8,), 2, seed=5)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_overfits_tiny_batch(self, rng):
        m = MLP(8, (32,), 2, seed=0)
        x, y = rng.normal(size=(8, 8)), np.array([0, 1] * 4)
        for _ in range(200):
            loss = cross_entropy(m(Tensor(x)), y)
            m.zero_grad()
            loss.backward()
            for p in m.parameters():
                p.data -= 0.3 * p.grad
        assert float(loss.data) < 0.05


class TestSimpleCNN:
    def test_output_shape(self, rng):
        m = SimpleCNN(3, 10, width=4, seed=0)
        out = m(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_grad_reaches_all_params(self, rng):
        m = SimpleCNN(3, 4, width=4, seed=0)
        loss = cross_entropy(m(Tensor(rng.normal(size=(4, 3, 8, 8)))), np.array([0, 1, 2, 3]))
        loss.backward()
        for name, p in m.named_parameters():
            assert p.grad is not None, name
            assert np.abs(p.grad).sum() > 0, name


class TestMicroResNet:
    def test_resnet18_shape_and_depth(self, rng):
        m = micro_resnet18(num_classes=10, seed=0)
        out = m(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)
        # 4 stages × 2 blocks
        assert len(m.stages) == 8

    def test_downsampling_halves_spatial(self, rng):
        m = MicroResNet(3, 5, widths=(4, 8), blocks_per_stage=1, seed=0)
        out = m(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 5)

    def test_projection_shortcut_used_on_width_change(self):
        from repro.nn import BasicBlock, Identity

        block = BasicBlock(4, 8, stride=2, rng=np.random.default_rng(0))
        assert not isinstance(block.shortcut, Identity)
        block_same = BasicBlock(4, 4, stride=1, rng=np.random.default_rng(0))
        assert isinstance(block_same.shortcut, Identity)

    def test_grad_reaches_stem(self, rng):
        m = MicroResNet(3, 4, widths=(4, 8), blocks_per_stage=1, seed=0)
        loss = cross_entropy(m(Tensor(rng.normal(size=(2, 3, 8, 8)))), np.array([0, 1]))
        loss.backward()
        assert np.abs(m.stem.weight.grad).sum() > 0

    def test_imagenet_variant(self, rng):
        m = micro_resnet_imagenet(num_classes=100, seed=0)
        out = m(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 100)


class TestSmallVGG:
    def test_output_shape(self, rng):
        from repro.nn import SmallVGG

        m = SmallVGG(3, 10, widths=(4, 8), seed=0)
        out = m(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_depth(self):
        from repro.nn import Conv2d, SmallVGG

        m = SmallVGG(3, 10, widths=(4, 8), seed=0)
        convs = [mod for mod in m.modules() if isinstance(mod, Conv2d)]
        assert len(convs) == 4  # two per block

    def test_trains_one_step(self, rng):
        from repro.nn import SmallVGG

        m = SmallVGG(3, 4, widths=(4,), seed=0)
        loss = cross_entropy(m(Tensor(rng.normal(size=(4, 3, 8, 8)))), np.array([0, 1, 2, 3]))
        loss.backward()
        assert all(p.grad is not None for p in m.parameters())

    def test_seed_determinism(self, rng):
        from repro.nn import SmallVGG

        a, b = SmallVGG(3, 4, seed=2), SmallVGG(3, 4, seed=2)
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        a.eval(); b.eval()
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_works_in_distributed_training(self, rng):
        from repro.core import Hyper
        from repro.data import make_image_classes
        from repro.nn import SmallVGG
        from repro.sim import ClusterConfig, SimulatedTrainer

        ds = make_image_classes(n_samples=240, num_classes=4, size=8, difficulty=1.0, seed=0)
        r = SimulatedTrainer(
            "dgs", lambda: SmallVGG(3, 4, widths=(4, 8), seed=0), ds,
            ClusterConfig.with_bandwidth(2, 10, compute_mean_s=0.02),
            batch_size=16, total_iterations=60,
            hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1), seed=0,
        ).run()
        assert r.final_accuracy > 0.6
