"""Checkpointing to .npz."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MLP, SimpleCNN, load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_roundtrip_params(self, tmp_path):
        m1 = MLP(6, (8,), 3, seed=0)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        m2 = MLP(6, (8,), 3, seed=99)
        load_checkpoint(m2, path)
        for (_, a), (_, b) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_roundtrip_buffers(self, tmp_path, rng):
        m1 = SimpleCNN(3, 4, width=4, seed=0)
        m1(Tensor(rng.normal(size=(8, 3, 8, 8))))  # populate BN running stats
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        m2 = SimpleCNN(3, 4, width=4, seed=5)
        load_checkpoint(m2, path)
        np.testing.assert_array_equal(
            m1.bn1._buffers["running_mean"], m2.bn1._buffers["running_mean"]
        )

    def test_identical_predictions_after_load(self, tmp_path, rng):
        m1 = SimpleCNN(3, 4, width=4, seed=0)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        m1(x)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        m2 = SimpleCNN(3, 4, width=4, seed=9)
        load_checkpoint(m2, path)
        m1.eval()
        m2.eval()
        np.testing.assert_allclose(m1(x).data, m2(x).data, atol=1e-12)

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(ValueError):
            load_checkpoint(MLP(2, (2,), 2, seed=0), path)

    def test_shape_mismatch_raises(self, tmp_path):
        m1 = MLP(6, (8,), 3, seed=0)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(m1, path)
        with pytest.raises(Exception):
            load_checkpoint(MLP(7, (8,), 3, seed=0), path)
