"""Property tests: every payload type round-trips through Frame encode/decode."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CloseFrame,
    DiffFrame,
    GradientFrame,
    TelemetryFrame,
    decode_frame,
    encode_frame,
)
from repro.compression import BitmapTensor, DenseTensor, QuantizedSparseTensor, SparseTensor
from repro.compression.qsgd import QSGDTensor
from repro.compression.terngrad import TernaryTensor
from repro.ps.messages import DiffMessage, GradientMessage

f32_exact = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)
pos_f32 = st.floats(min_value=0.125, max_value=1024.0, allow_nan=False, width=32)


@st.composite
def sparse_payloads(draw):
    """SparseTensor including the zero-nnz and scalar-shape edge cases."""
    if draw(st.booleans()):
        n = draw(st.integers(1, 64))
        nnz = draw(st.integers(0, n))  # zero-nnz allowed
        idx = np.array(
            sorted(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz, unique=True))),
            dtype=np.int64,
        )
        vals = np.array(draw(st.lists(f32_exact, min_size=nnz, max_size=nnz)), dtype=np.float64)
        return SparseTensor(idx, vals, (n,))
    # scalar shape: a 0-d tensor has exactly one slot
    nnz = draw(st.integers(0, 1))
    idx = np.arange(nnz, dtype=np.int64)
    vals = np.array(draw(st.lists(f32_exact, min_size=nnz, max_size=nnz)), dtype=np.float64)
    return SparseTensor(idx, vals, ())


@st.composite
def bitmap_payloads(draw):
    n = draw(st.integers(1, 64))
    mask = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    dense = np.zeros(n)
    nnz = int(mask.sum())
    dense[mask] = np.array(draw(st.lists(f32_exact, min_size=nnz, max_size=nnz)))
    return BitmapTensor.from_mask(dense, mask)


@st.composite
def quantized_payloads(draw):
    n = draw(st.integers(1, 64))
    nnz = draw(st.integers(0, n))
    idx = np.array(
        sorted(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz, unique=True))),
        dtype=np.int64,
    )
    signs = np.array(
        draw(st.lists(st.sampled_from([-1, 1]), min_size=nnz, max_size=nnz)), dtype=np.int8
    )
    return QuantizedSparseTensor(idx, signs, draw(pos_f32), (n,))


@st.composite
def ternary_payloads(draw):
    n = draw(st.integers(1, 64))
    signs = np.array(
        draw(st.lists(st.sampled_from([-1, 0, 1]), min_size=n, max_size=n)), dtype=np.int8
    )
    return TernaryTensor(signs, draw(pos_f32), (n,))


@st.composite
def qsgd_payloads(draw):
    n = draw(st.integers(1, 64))
    s = draw(st.integers(1, 8))
    levels = np.array(
        draw(st.lists(st.integers(-s, s), min_size=n, max_size=n)), dtype=np.int32
    )
    return QSGDTensor(levels, draw(pos_f32), s, (n,))


@st.composite
def dense_payloads(draw):
    n = draw(st.integers(1, 64))
    data = np.array(draw(st.lists(f32_exact, min_size=n, max_size=n)), dtype=np.float64)
    return DenseTensor(data) if draw(st.booleans()) else data


any_payload = st.one_of(
    sparse_payloads(),
    bitmap_payloads(),
    quantized_payloads(),
    ternary_payloads(),
    qsgd_payloads(),
    dense_payloads(),
)


def _dense(payload):
    arr = payload if isinstance(payload, np.ndarray) else payload.to_dense()
    return np.asarray(arr, dtype=np.float64)


@given(payload=any_payload, worker=st.integers(0, 500), loss=f32_exact)
@settings(max_examples=120, deadline=None)
def test_gradient_frame_roundtrip_any_payload(payload, worker, loss):
    frame = GradientFrame(GradientMessage(worker, {"w": payload}, 3), loss=float(loss))
    out = decode_frame(encode_frame(frame))
    assert isinstance(out, GradientFrame)
    assert out.worker_id == worker
    assert out.loss == float(loss)
    sent, received = _dense(payload), _dense(out.message.payload["w"])
    assert sent.shape == received.shape
    np.testing.assert_allclose(received, sent.astype(np.float32).astype(np.float64), rtol=1e-6)


@given(payload=any_payload, staleness=st.integers(0, 10_000), ts=st.integers(0, 10**6))
@settings(max_examples=60, deadline=None)
def test_diff_frame_roundtrip_any_payload(payload, staleness, ts):
    frame = DiffFrame(DiffMessage(1, {"w": payload}, server_timestamp=ts, staleness=staleness))
    out = decode_frame(encode_frame(frame))
    assert isinstance(out, DiffFrame)
    assert out.message.staleness == staleness
    assert out.message.server_timestamp == ts
    np.testing.assert_allclose(
        _dense(out.message.payload["w"]),
        _dense(payload).astype(np.float32).astype(np.float64),
        rtol=1e-6,
    )


@given(
    worker=st.integers(0, 2**31 - 1),
    samples=st.none() | st.integers(0, 2**62),
    state=st.none() | st.integers(0, 2**62),
    error=st.none() | st.text(min_size=1, max_size=200),
)
@settings(max_examples=120, deadline=None)
def test_close_frame_roundtrip(worker, samples, state, error):
    frame = CloseFrame(
        worker_id=worker, samples_processed=samples, worker_state_bytes=state, error=error
    )
    assert decode_frame(encode_frame(frame)) == frame


#: JSON-representable scalar values for span/metric record fields
_json_scalars = st.none() | st.booleans() | st.integers(-(2**53), 2**53) | st.text(max_size=20)

#: span-ish records: unicode names exercise the utf-8 body encoding
_span_records = st.fixed_dictionaries(
    {
        "type": st.just("span"),
        "name": st.text(min_size=1, max_size=40),
        "ts": st.floats(0, 1e6, allow_nan=False),
        "dur": st.floats(0, 1e3, allow_nan=False),
    },
    optional={
        "cat": st.text(max_size=10),
        "proc": st.text(max_size=10),
        "args": st.dictionaries(st.text(min_size=1, max_size=10), _json_scalars, max_size=3),
    },
)

_metric_records = st.fixed_dictionaries(
    {
        "type": st.just("metric"),
        "name": st.text(min_size=1, max_size=40),
        "kind": st.sampled_from(["counter", "gauge", "histogram"]),
        "value": st.floats(-1e9, 1e9, allow_nan=False),
    },
    optional={"labels": st.dictionaries(st.text(min_size=1, max_size=10), _json_scalars, max_size=3)},
)


@given(
    worker=st.integers(0, 2**31 - 1),
    spans=st.lists(_span_records, max_size=8),
    metrics=st.lists(_metric_records, max_size=4),
)
@settings(max_examples=120, deadline=None)
def test_telemetry_frame_roundtrip(worker, spans, metrics):
    """Any JSON-able span/metric batch round-trips exactly — including the
    empty batch (a traced worker that emitted nothing still ships a frame)
    and unicode span names (the body is utf-8, not ascii-escaped)."""
    frame = TelemetryFrame(worker_id=worker, spans=tuple(spans), metrics=tuple(metrics))
    out = decode_frame(encode_frame(frame))
    assert isinstance(out, TelemetryFrame)
    assert out.worker_id == worker
    assert list(out.spans) == spans
    assert list(out.metrics) == metrics
    # Diagnostic side channel: telemetry never counts as payload traffic.
    assert frame.nbytes() == 0 and out.dense_nbytes() == 0


@given(spans=st.lists(_span_records, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_telemetry_frames_are_independent_per_worker(spans):
    """Multi-worker shipping: each worker's frame decodes to its own id and
    records; concatenated wire buffers do not bleed into each other."""
    frames = [TelemetryFrame(worker_id=w, spans=tuple(spans)) for w in range(3)]
    for w, frame in enumerate(frames):
        out = decode_frame(encode_frame(frame))
        assert out.worker_id == w
        assert list(out.spans) == spans
