"""Dense, activation, and structural layers."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "ReLU", "Tanh", "Sigmoid", "Flatten", "Dropout", "Identity"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` with Kaiming-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Collapse all axes but the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)
