"""Ablation — sparsification ratio R sweep for DGS.

The paper fixes R=1% ("of course some more advanced threshold selection
methods can be used", §4.1).  This bench exposes the accuracy/compression
trade-off around that operating point.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import get_workload
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast

__all__ = ["run"]

RATIOS = (0.01, 0.02, 0.05, 0.10, 0.25)


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    ratios = RATIOS[:3] if fast else RATIOS
    wl = get_workload("cifar10")
    seed = seeds[0]

    report = ExperimentReport(
        experiment_id="Ablation (sparsity ratio)",
        title="DGS accuracy and compression vs send ratio R (4 workers)",
        headers=("R", "Top-1 Accuracy", "Upload compression", "Overall compression"),
    )
    for ratio in ratios:
        hyper = replace(wl.hyper, ratio=ratio, secondary_ratio=ratio)
        r = run_distributed("dgs", wl, 4, hyper=hyper, fast=fast, seed=seed)
        up_ratio = r.upload_dense_bytes / max(r.upload_bytes, 1)
        report.add_row(
            f"{100 * ratio:g}%",
            f"{100 * r.final_accuracy:.2f}%",
            f"{up_ratio:.0f}x",
            f"{r.compression_ratio:.0f}x",
        )
    report.add_note(
        "Expected shape: accuracy is flat for moderate R then sags at very small R "
        "(per-parameter update intervals grow too long at micro-model scale); "
        "compression scales ~1/(2R) upstream (COO doubles per-element cost)."
    )
    return report
