"""Pipe channels: real bytes between OS processes, plus the serving loop.

:class:`PipeChannel` wraps one ``multiprocessing`` pipe endpoint; every
frame is byte-serialised through :mod:`repro.comm.frames` (which performs
the float32 wire conversion via the payload codec).  The same class serves
both ends: the child process drives it through the worker protocol loop,
the parent through :func:`serve_pipe_channels`.

:func:`serve_pipe_channels` is the parameter-server side of the process
backend: multiplex gradient frames from all worker pipes, dispatch them to
the shared :class:`~repro.comm.channel.ServerService`, and account bytes —
until every channel has delivered its :class:`~repro.comm.frames.CloseFrame`
or died.  A pipe that hits EOF/EPIPE *without* a close frame is a crashed
worker: the loop records the loss of that worker and carries on, so a
worker dying mid-run yields a graceful partial result instead of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing.connection import wait
from typing import Callable

from ..compression.stats import CompressionStats
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .channel import ChannelClosed, ServerService
from .frames import (
    CloseFrame,
    Frame,
    GradientFrame,
    TelemetryFrame,
    decode_frame,
    encode_frame,
)

__all__ = ["PipeChannel", "ServeReport", "serve_pipe_channels"]


class PipeChannel:
    """One endpoint of a byte pipe speaking the comm frame format."""

    def __init__(self, connection, tracer: "object | None" = None) -> None:
        #: the underlying ``multiprocessing`` connection (read by ``wait``)
        self.connection = connection
        self.tracer = tracer
        #: actual bytes through the pipe, frame headers included
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _tracer(self):
        return self.tracer if self.tracer is not None else current_tracer()

    def send(self, frame: Frame) -> None:
        if self._closed:
            raise ChannelClosed("pipe channel is closed")
        raw = encode_frame(frame)
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_SEND, cat="comm", bytes=len(raw)):
                self.connection.send_bytes(raw)
        else:
            self.connection.send_bytes(raw)
        self.wire_bytes_sent += len(raw)

    def recv(self) -> Frame:
        if self._closed:
            raise ChannelClosed("pipe channel is closed")
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_RECV, cat="comm") as span:
                raw = self.connection.recv_bytes()
                span.set(bytes=len(raw))
        else:
            raw = self.connection.recv_bytes()
        self.wire_bytes_received += len(raw)
        return decode_frame(raw)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.connection.close()


@dataclass
class ServeReport:
    """What the serving loop observed across all worker channels."""

    #: summed final accounting from clean close frames
    samples_processed: int = 0
    worker_state_bytes: int = 0
    #: human-readable crash/error descriptions, one per failed worker
    errors: "list[str]" = field(default_factory=list)
    clean_closes: int = 0
    crashes: int = 0
    #: worker_id → TelemetryFrame shipped before that worker's close
    telemetry: "dict[int, TelemetryFrame]" = field(default_factory=dict)


def serve_pipe_channels(
    channels: "list[PipeChannel]",
    service: ServerService,
    stats: "CompressionStats | None" = None,
    on_loss: "Callable[[float], None] | None" = None,
) -> ServeReport:
    """Run the server side of the process backend until all workers close.

    ``stats`` receives the analytic payload byte accounting (upload on
    every gradient frame, download on every reply); ``on_loss`` is called
    with each gradient frame's training loss after the reply is shipped.
    """
    report = ServeReport()
    open_channels = {ch.connection: ch for ch in channels}
    while open_channels:
        for conn in wait(list(open_channels)):
            channel = open_channels[conn]
            try:
                frame = channel.recv()
            except (EOFError, OSError):
                report.crashes += 1
                report.errors.append("worker pipe closed without a close frame (crash)")
                open_channels.pop(conn, None)
                continue
            if isinstance(frame, CloseFrame):
                if frame.samples_processed is not None:
                    report.samples_processed += frame.samples_processed
                if frame.worker_state_bytes is not None:
                    report.worker_state_bytes += frame.worker_state_bytes
                if frame.error is not None:
                    report.crashes += 1
                    report.errors.append(f"worker {frame.worker_id}: {frame.error}")
                else:
                    report.clean_closes += 1
                open_channels.pop(conn, None)
                continue
            if isinstance(frame, TelemetryFrame):
                report.telemetry[frame.worker_id] = frame
                continue  # diagnostic side channel: no reply, channel stays open
            if not isinstance(frame, GradientFrame):
                report.errors.append(f"unexpected {type(frame).__name__} from worker pipe")
                open_channels.pop(conn, None)
                continue
            if stats is not None:
                stats.record_upload(frame.nbytes(), frame.dense_nbytes())
            reply = service(frame)
            if stats is not None:
                stats.record_download(reply.nbytes(), reply.dense_nbytes())
            try:
                channel.send(reply)
            except (BrokenPipeError, OSError):
                report.crashes += 1
                report.errors.append(
                    f"worker {frame.worker_id}: pipe broke while sending the reply (crash)"
                )
                open_channels.pop(conn, None)
                continue
            if on_loss is not None:
                on_loss(frame.loss)
    return report
