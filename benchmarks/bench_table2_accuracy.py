"""Table 2 — final top-1 accuracy, 5 methods × 2 datasets, 4 workers."""

from repro.harness.experiments import table2_accuracy
from repro.harness.config import is_fast_mode


def test_table2_accuracy(run_experiment):
    report = run_experiment(table2_accuracy, "table2_accuracy", seeds=(0, 1))
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    accs = {row[1]: float(row[3].split("%")[0]) for row in report.rows if row[0] == "Cifar10"}
    # Shape check (paper Table 2): MSGD best, DGS within ~2 pts of it and
    # ahead of GD-async/ASGD.
    assert accs["MSGD"] >= accs["DGS"] - 1.0
    assert accs["DGS"] > accs["ASGD"] - 0.5
    assert accs["DGS"] > accs["GD-async"] - 0.5
