"""Shared helpers for the experiment runners."""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from ...core.methods import Hyper, get_method
from ..config import WorkloadSpec, get_workload, is_fast_mode
from ..runners import run_distributed, run_msgd

__all__ = [
    "scaling_hyper",
    "scaled_batch",
    "mean_accuracy",
    "METHOD_LABELS",
    "resolve_fast",
]

METHOD_LABELS = {
    "msgd": "MSGD",
    "asgd": "ASGD",
    "gd_async": "GD-async",
    "dgc_async": "DGC-async",
    "dgs": "DGS",
}


def resolve_fast(fast: bool | None) -> bool:
    return is_fast_mode() if fast is None else fast


def scaled_batch(num_workers: int, base: int = 128, floor: int = 8) -> int:
    """Table 3's rule — per-worker batch halves as workers double.

    The paper runs 256→16 over 1→32 workers; our scaled-down datasets use
    base 128 with a floor of 8 (below which micro-scale SGD is too noisy to
    train at any method — a substitution documented in DESIGN.md §2).
    """
    return max(floor, base // max(num_workers, 1))


def scaling_hyper(workload: WorkloadSpec, num_workers: int) -> Hyper:
    """Worker-count-dependent hyper-parameters, following the paper.

    §5.1 uses momentum 0.7 at ≤8 workers and reduces it at scale (0.45 at
    16 workers); §5.4 reports that momentum 0.3 is the right setting at 32
    workers because "asynchrony introduces momentum" [19].  Our micro-scale
    models see the same staleness with ~100× fewer parameters, so the
    reduction is needed one step earlier: we apply 0.3 from 16 workers up
    (documented deviation — DESIGN.md §2).  The LR drop at 32 workers
    compensates for the smaller per-worker batch (linear-scaling rule the
    paper cites [Goyal et al.]).
    """
    h = workload.hyper
    if num_workers >= 32:
        return replace(h, momentum=0.3, lr=h.lr * 0.5)
    if num_workers >= 16:
        return replace(h, momentum=0.3)
    return h


def mean_accuracy(
    method: str,
    workload: WorkloadSpec,
    num_workers: int,
    seeds: Sequence[int],
    fast: bool,
    **kwargs,
) -> tuple[float, float]:
    """Mean ± std final accuracy across seeds for one configuration."""
    accs = []
    for seed in seeds:
        if method == "msgd":
            r = run_msgd(workload, fast=fast, seed=seed,
                         epochs=kwargs.get("epochs"), batch_size=kwargs.get("batch_size"))
        else:
            r = run_distributed(method, workload, num_workers, fast=fast, seed=seed, **kwargs)
        accs.append(r.final_accuracy)
    return float(np.mean(accs)), float(np.std(accs))
