"""Repo-specific AST lint engine.

A :class:`Rule` inspects one parsed module and yields findings; the engine
walks a source tree, parses each file once, runs every registered rule and
applies ``# repro: noqa`` suppression.  Rules are deliberately small and
repo-aware — they encode invariants of *this* codebase (hot-path dtype
hygiene, RNG plumbing, ``Tensor.data`` ownership) rather than general
style, which generic linters already cover.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .findings import Finding, filter_suppressed

__all__ = [
    "LintConfig",
    "ModuleInfo",
    "Rule",
    "iter_python_files",
    "lint_file",
    "lint_tree",
    "load_module",
    "numpy_aliases",
]

#: subpackages where allocation dtype and similar perf-sensitive rules apply
HOT_PATH_PREFIXES = ("autograd/", "compression/", "ps/", "optim/")

#: subpackages allowed to mutate ``Tensor.data`` in place
TENSOR_MUTATION_ALLOWED = ("autograd/", "optim/")

#: the only places allowed to do wire framing (struct, pipes, codec calls)
FRAMING_ALLOWED = ("comm/", "ps/codec.py")

#: the only place allowed to spell telemetry names as inline strings
TELEMETRY_NAME_ALLOWED = ("obs/",)

#: subpackages where per-layer Python loops over whole-model state are banned
PERF_LOOP_PREFIXES = ("core/", "ps/", "exec/")

#: the dict-of-float64 reference path — allowed to stay naive (PERF001)
PERF_LOOP_ALLOWED = ("core/layerops.py",)

#: subpackages where payload decodes inside a lock-held region are banned
DECODE_LOCK_PREFIXES = ("ps/", "comm/")


@dataclass(frozen=True)
class LintConfig:
    """Knobs controlling path-scoped rules.

    Prefixes are matched against the module path *relative to the package
    root* (posix separators).  Tests point these at fixture directories.
    """

    hot_path_prefixes: "tuple[str, ...]" = HOT_PATH_PREFIXES
    tensor_mutation_allowed: "tuple[str, ...]" = TENSOR_MUTATION_ALLOWED
    framing_allowed: "tuple[str, ...]" = FRAMING_ALLOWED
    telemetry_name_allowed: "tuple[str, ...]" = TELEMETRY_NAME_ALLOWED
    perf_loop_prefixes: "tuple[str, ...]" = PERF_LOOP_PREFIXES
    perf_loop_allowed: "tuple[str, ...]" = PERF_LOOP_ALLOWED
    decode_lock_prefixes: "tuple[str, ...]" = DECODE_LOCK_PREFIXES
    #: basenames never linted for export rules (CLI entry points)
    entry_point_names: "tuple[str, ...]" = ("__main__.py",)


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module handed to every rule."""

    path: str  #: path as reported in findings
    relpath: str  #: posix path relative to the package root ('' prefix-matched)
    source: str
    tree: ast.Module
    lines: "list[str]" = field(default_factory=list)

    def is_hot_path(self, config: LintConfig) -> bool:
        return self.relpath.startswith(config.hot_path_prefixes)

    def may_mutate_tensor_data(self, config: LintConfig) -> bool:
        return self.relpath.startswith(config.tensor_mutation_allowed)

    def may_do_wire_framing(self, config: LintConfig) -> bool:
        return self.relpath.startswith(config.framing_allowed)

    def may_name_telemetry_inline(self, config: LintConfig) -> bool:
        return self.relpath.startswith(config.telemetry_name_allowed)

    def in_perf_loop_scope(self, config: LintConfig) -> bool:
        return self.relpath.startswith(config.perf_loop_prefixes) and not self.relpath.startswith(
            config.perf_loop_allowed
        )

    def in_decode_lock_scope(self, config: LintConfig) -> bool:
        return self.relpath.startswith(config.decode_lock_prefixes)

    def is_entry_point(self, config: LintConfig) -> bool:
        return Path(self.relpath).name in config.entry_point_names


class Rule(ABC):
    """One lint rule: an id, a summary, and a check over a module."""

    id: str = "XXX000"
    summary: str = ""

    @abstractmethod
    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        """Yield findings for ``module``."""

    # Convenience for subclasses.
    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def numpy_aliases(tree: ast.Module) -> "set[str]":
    """Names the module binds to the ``numpy`` package (e.g. ``{'np'}``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "numpy":
                    aliases.add(a.asname or "numpy")
    return aliases


def load_module(path: "str | Path", root: "str | Path | None" = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    p = Path(path)
    source = p.read_text()
    tree = ast.parse(source, filename=str(p))
    if root is not None:
        try:
            rel = p.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            rel = p.name
    else:
        rel = p.name
    return ModuleInfo(
        path=str(p), relpath=rel, source=source, tree=tree, lines=source.splitlines()
    )


def iter_python_files(root: "str | Path") -> "Iterator[Path]":
    """Yield ``*.py`` files under ``root`` in sorted order."""
    rootp = Path(root)
    if rootp.is_file():
        yield rootp
        return
    yield from sorted(rootp.rglob("*.py"))


def lint_file(
    path: "str | Path",
    rules: Sequence[Rule],
    config: "LintConfig | None" = None,
    root: "str | Path | None" = None,
) -> "list[Finding]":
    """Run ``rules`` over one file, applying noqa suppression."""
    config = config if config is not None else LintConfig()
    try:
        module = load_module(path, root=root)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PAR001",
                path=str(path),
                line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(module, config))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return filter_suppressed(findings, module.lines)


def lint_tree(
    root: "str | Path",
    rules: "Sequence[Rule] | None" = None,
    config: "LintConfig | None" = None,
) -> "list[Finding]":
    """Run the lint pillar over every python file under ``root``."""
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    findings: list[Finding] = []
    for path in iter_python_files(root):
        findings.extend(lint_file(path, rules, config=config, root=root))
    return findings
