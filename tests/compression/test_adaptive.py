"""Adaptive threshold sparsifier."""

import numpy as np
import pytest

from repro.compression import AdaptiveThresholdSparsifier


class TestAdaptive:
    def test_first_call_matches_topk_count(self, rng):
        sp = AdaptiveThresholdSparsifier(0.1, min_sparse_size=0)
        arr = rng.normal(size=1000)
        count = sp.mask(arr).sum()
        assert 80 <= count <= 120  # exact top-k bootstrap ± threshold strictness

    def test_tracks_target_on_stationary_stream(self, rng):
        sp = AdaptiveThresholdSparsifier(0.05, min_sparse_size=0)
        counts = []
        for _ in range(60):
            counts.append(sp.mask(rng.normal(size=2000)).sum())
        avg = np.mean(counts[10:])  # after burn-in
        assert 70 <= avg <= 130  # target is 100

    def test_adapts_to_scale_shift(self, rng):
        """After the stream's magnitude jumps 10×, the tracked threshold
        recovers the target count within a few iterations."""
        sp = AdaptiveThresholdSparsifier(0.05, gain=0.5, min_sparse_size=0)
        for _ in range(20):
            sp.mask(rng.normal(size=2000))
        counts = [sp.mask(10.0 * rng.normal(size=2000)).sum() for _ in range(30)]
        assert 60 <= np.mean(counts[10:]) <= 160

    def test_cheaper_than_exact_on_large_layers(self, rng):
        """Sampled estimation touches O(sample) for the threshold; verify it
        produces sane masks on a layer far larger than the sample."""
        sp = AdaptiveThresholdSparsifier(0.01, sample_size=256, min_sparse_size=0)
        arr = rng.normal(size=200_000)
        count = sp.mask(arr).sum()
        assert 500 <= count <= 8000  # target 2000, generous sampling band

    def test_small_layer_dense(self, rng):
        sp = AdaptiveThresholdSparsifier(0.01, min_sparse_size=64)
        assert sp.mask(rng.normal(size=10)).all()

    def test_all_zero_layer_selects_one(self):
        sp = AdaptiveThresholdSparsifier(0.1, min_sparse_size=0)
        mask = sp.mask(np.zeros(100))
        assert mask.sum() == 1

    def test_independent_thresholds_per_shape(self, rng):
        sp = AdaptiveThresholdSparsifier(0.1, min_sparse_size=0)
        sp.mask(rng.normal(size=500))
        sp.mask(100.0 * rng.normal(size=(20, 30)))
        assert len(sp._thresholds) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdSparsifier(0.0)
        with pytest.raises(ValueError):
            AdaptiveThresholdSparsifier(0.1, gain=0.0)

    def test_works_inside_gradient_dropping(self, rng):
        from collections import OrderedDict

        from repro.core.strategies import GradientDroppingStrategy

        shapes = OrderedDict([("w", (500,))])
        strat = GradientDroppingStrategy(shapes, AdaptiveThresholdSparsifier(0.1, min_sparse_size=0))
        sent = np.zeros(500)
        total = np.zeros(500)
        for _ in range(10):
            g = rng.normal(size=500)
            out = strat.prepare(OrderedDict([("w", g)]), 0.1)
            sent += out["w"].to_dense()
            total += 0.1 * g
        # atol covers float32 wire rounding of the sent values.
        np.testing.assert_allclose(sent + strat.residual["w"], total, atol=1e-5)
