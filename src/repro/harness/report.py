"""Experiment report container shared by all table/figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..metrics.tables import format_markdown_table, format_table

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """Rows + rendered output for one paper table or figure."""

    experiment_id: str  # e.g. "Table 2", "Figure 6"
    title: str
    headers: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    figures: list[str] = field(default_factory=list)  # ASCII-rendered charts
    #: name -> standalone SVG document (written next to the .md by benches)
    svgs: "dict[str, str]" = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: the paper's own numbers for side-by-side comparison, same headers
    paper_rows: list[Sequence] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def table(self) -> str:
        return format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")

    def markdown(self) -> str:
        parts = [format_markdown_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")]
        if self.paper_rows:
            parts.append(
                format_markdown_table(self.headers, self.paper_rows, title=f"{self.experiment_id} (paper)")
            )
        for note in self.notes:
            parts.append(f"> {note}")
        return "\n\n".join(parts)

    def render(self) -> str:
        """Full plain-text rendering: table, figures, notes."""
        parts = [self.table()]
        parts.extend(self.figures)
        if self.paper_rows:
            parts.append(format_table(self.headers, self.paper_rows, title=f"{self.experiment_id} (paper reported)"))
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n\n".join(parts)
