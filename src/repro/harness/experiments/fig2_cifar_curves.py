"""Figure 2 — learning curves (top-1 accuracy + training loss) on CIFAR-10
stand-in with 4 workers, all five methods."""

from __future__ import annotations

from ...metrics.curves import Curve
from ...metrics.plots import ascii_plot
from ...metrics.svg import render_svg
from ..config import get_workload
from ..report import ExperimentReport
from ..runners import run_distributed, run_msgd
from .common import METHOD_LABELS, resolve_fast

__all__ = [
    "collect_curves",
    "build_report",
    "run",
]


def collect_curves(
    workload_name: str,
    num_workers: int,
    fast: bool,
    seed: int = 0,
    hyper=None,
    batch_size: int | None = None,
) -> tuple[dict[str, Curve], dict[str, Curve], dict[str, float]]:
    """Run all five methods; return (acc curves, loss curves, final accs)."""
    wl = get_workload(workload_name)
    bs = batch_size if batch_size is not None else wl.batch_size
    dataset = wl.dataset(fast)
    total_iters = max(1, wl.epochs * dataset.n_train // bs)
    eval_every = max(1, total_iters // 12)

    acc_curves: dict[str, Curve] = {}
    loss_curves: dict[str, Curve] = {}
    finals: dict[str, float] = {}

    msgd = run_msgd(wl, eval_every=eval_every, fast=fast, seed=seed, batch_size=bs)
    acc_curves["MSGD"] = msgd.acc_vs_step
    loss_curves["MSGD"] = msgd.loss_vs_step
    finals["MSGD"] = msgd.final_accuracy
    for method in ("asgd", "gd_async", "dgc_async", "dgs"):
        r = run_distributed(
            method, wl, num_workers, eval_every=eval_every, fast=fast, seed=seed,
            hyper=hyper, batch_size=bs,
        )
        label = METHOD_LABELS[method]
        acc_curves[label] = r.acc_vs_step
        loss_curves[label] = r.loss_vs_step
        finals[label] = r.final_accuracy
    return acc_curves, loss_curves, finals


def build_report(
    experiment_id: str,
    title: str,
    workload_name: str,
    num_workers: int,
    fast: bool,
    hyper=None,
    batch_size: int | None = None,
) -> ExperimentReport:
    acc_curves, loss_curves, finals = collect_curves(
        workload_name, num_workers, fast, hyper=hyper, batch_size=batch_size
    )
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        headers=("Method", "Final Top-1 Accuracy"),
    )
    for label, acc in finals.items():
        report.add_row(label, f"{100 * acc:.2f}%")
    report.figures.append(
        ascii_plot(acc_curves, title=f"{experiment_id}a: top-1 accuracy vs iteration",
                   xlabel="server iteration", ylabel="top-1 accuracy")
    )
    report.figures.append(
        ascii_plot(loss_curves, title=f"{experiment_id}b: training loss vs iteration",
                   xlabel="server iteration", ylabel="training loss (EMA)")
    )
    report.svgs["accuracy"] = render_svg(
        acc_curves, title=f"{experiment_id}a: top-1 accuracy",
        xlabel="server iteration", ylabel="top-1 accuracy",
    )
    report.svgs["loss"] = render_svg(
        loss_curves, title=f"{experiment_id}b: training loss",
        xlabel="server iteration", ylabel="training loss (EMA)", logy=True,
    )
    report.add_note(
        "Expected shape: DGS tracks MSGD closely; DGC-async converges slightly slower "
        "but close; GD-async and ASGD converge to visibly worse accuracy."
    )
    return report


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    return build_report(
        "Figure 2",
        "Learning curve of ResNet-18 stand-in on synthetic Cifar10 with 4 workers",
        "cifar10",
        num_workers=4,
        fast=fast,
    )
