"""Convolution and pooling layers."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from . import init
from .module import Module, Parameter

__all__ = ["Conv2d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class Conv2d(Module):
    """2-D convolution (cross-correlation), im2col-based."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, pad=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """(N, C, H, W) -> (N, C): the ResNet head pooling."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)
