"""Gradient clipping (one of DGC's accuracy-preserving tricks)."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["global_norm", "clip_by_global_norm"]


def global_norm(grads: Sequence[np.ndarray]) -> float:
    """L2 norm of the concatenation of all gradient arrays."""
    total = 0.0
    for g in grads:
        total += float(np.dot(g.reshape(-1), g.reshape(-1)))
    return math.sqrt(total)


def clip_by_global_norm(grads: Sequence[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global norm is ≤ ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_norm(grads)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for g in grads:
            g *= scale
    return norm
