"""Virtual-timeline trace invariants (record_trace=True)."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.sim import ClusterConfig, SimulatedTrainer


@pytest.fixture(scope="module")
def trace(tiny_dataset_mod, tiny_factory_mod):
    trainer = SimulatedTrainer(
        "dgs",
        tiny_factory_mod,
        tiny_dataset_mod,
        ClusterConfig.with_bandwidth(4, 0.01, compute_mean_s=0.03),
        batch_size=16,
        total_iterations=80,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        record_trace=True,
        seed=0,
    )
    result = trainer.run()
    assert result.trace is not None
    return result.trace


@pytest.fixture(scope="module")
def tiny_dataset_mod():
    from repro.data import make_blobs

    return make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.5, noise=0.8, seed=1)


@pytest.fixture(scope="module")
def tiny_factory_mod():
    from repro.nn import MLP

    return lambda: MLP(12, (24,), 4, seed=7)


class TestTraceInvariants:
    def test_one_event_per_iteration(self, trace):
        assert len(trace) == 80

    def test_per_event_causality(self, trace):
        for e in trace:
            assert e.ready_t <= e.up_start <= e.up_end <= e.server_t <= e.down_end

    def test_server_times_strictly_increase(self, trace):
        times = [e.server_t for e in trace]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_uplink_fifo_no_overlap(self, trace):
        """Uplink transmissions never overlap (shared FIFO resource)."""
        spans = sorted((e.up_start, e.up_end) for e in trace if e.up_bytes > 0)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9

    def test_worker_lifecycle_sequential(self, trace):
        """Each worker's iteration k+1 computes only after k's download."""
        per_worker: dict[int, list] = {}
        for e in trace:
            per_worker.setdefault(e.worker, []).append(e)
        for events in per_worker.values():
            events.sort(key=lambda e: e.local_iteration)
            for prev, cur in zip(events, events[1:]):
                assert cur.local_iteration == prev.local_iteration + 1
                assert cur.ready_t >= prev.down_end

    def test_staleness_matches_interleaving(self, trace):
        """Recorded staleness equals the number of other-worker updates
        applied between this worker's consecutive server visits."""
        last_server_index: dict[int, int] = {}
        for i, e in enumerate(trace):
            if e.worker in last_server_index:
                expected = i - last_server_index[e.worker] - 1
                assert e.staleness == expected
            last_server_index[e.worker] = i

    def test_bytes_positive(self, trace):
        assert all(e.up_bytes > 0 and e.down_bytes > 0 for e in trace)
