"""Figure 6 — speedup vs worker count for DGS and ASGD at 10 and 1 Gbps.

Speedup of ``n`` workers is throughput(n) / throughput(1) for the same
method and bandwidth (samples per virtual second at equal iteration
budgets).  The paper reports ASGD collapsing to ~1× at 16 workers on
1 Gbps while DGS reaches 12.6×, and near-linear DGS scaling at 10 Gbps.
Convergence is irrelevant to this figure, so each point runs a short
fixed-iteration budget.
"""

from __future__ import annotations

from dataclasses import replace

from ...metrics.plots import ascii_plot
from ..config import get_workload, paper_cluster
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast

__all__ = ["run"]

WORKER_COUNTS = (1, 2, 4, 8, 16)
PAPER_NOTE = (
    "Paper: with 1 Gbps ASGD achieves ~1× at 16 workers while DGS achieves 12.6×; "
    "with 10 Gbps DGS is near-linear while ASGD saturates."
)


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    worker_counts = (1, 2, 4) if fast else WORKER_COUNTS
    iters_per_worker = 10 if fast else 25
    wl = get_workload("cifar10")
    # Throughput experiment: convergence is irrelevant, so use the paper's
    # exact setting — R = 1% over *every* layer.  (The workload defaults
    # R = 5% + dense small layers exist only for accuracy at micro-model
    # scale — see DESIGN.md §2 — and would inflate wire volume here.)
    hyper = replace(wl.hyper, ratio=0.01, secondary_ratio=0.01, min_sparse_size=0)
    seed = seeds[0]

    report = ExperimentReport(
        experiment_id="Figure 6",
        title="Speedups for DGS and ASGD with 10 Gbps and 1 Gbps Ethernet",
        headers=("Bandwidth", "Method", *[f"{n}w" for n in worker_counts]),
    )
    curves = {}
    for gbps in (10.0, 1.0):
        for method in ("asgd", "dgs"):
            throughputs = []
            for n in worker_counts:
                r = run_distributed(
                    method,
                    wl,
                    n,
                    gbps=gbps,
                    hyper=hyper,
                    secondary_compression=True if method == "dgs" else None,
                    fast=fast,
                    seed=seed,
                    # fixed per-worker iteration budget — speedup needs
                    # steady-state throughput, not convergence
                    total_iterations=iters_per_worker * n,
                    cluster=paper_cluster(n, gbps, wl.model_factory(seed)(), seed=seed),
                )
                throughputs.append(r.throughput)
            speedups = [t / throughputs[0] for t in throughputs]
            label = f"{method.upper()}@{gbps:g}Gbps"
            curves[label] = (list(worker_counts), speedups)
            report.add_row(f"{gbps:g} Gbps", method.upper(), *[f"{s:.2f}x" for s in speedups])
    report.figures.append(
        ascii_plot(curves, title="Figure 6: speedup vs number of workers",
                   xlabel="workers", ylabel="speedup")
    )
    from ...metrics.svg import render_svg

    report.svgs["speedup"] = render_svg(
        curves, title="Figure 6: speedup vs number of workers",
        xlabel="workers", ylabel="speedup",
    )
    report.add_note(PAPER_NOTE)
    return report
