"""repro.comm — one typed channel layer under all four backends.

Every worker↔server exchange in the repo crosses a :class:`Channel`
speaking the typed frame vocabulary of :mod:`repro.comm.frames`:

* **threaded** — :class:`InProcChannel` (synchronous dispatch; optional
  wire-fidelity mode round-trips bytes through the real codec);
* **process** — :class:`PipeChannel` + :func:`serve_pipe_channels`
  (real bytes over OS pipes);
* **socket** — :class:`SocketChannel` + :class:`SocketListener` (real
  bytes over TCP, loopback-ephemeral by default for CI);
* **simulated / sync** — :class:`SimChannel` / :class:`SimTransport`
  (frames cost virtual link time on the paper's modelled testbed).

The server side is one transport-agnostic loop —
:func:`~repro.comm.service.serve_channels` driving a shared
:class:`~repro.comm.service.ServerService` — with crash-to-partial-result
semantics, telemetry absorption, elastic membership (join/leave control
frames), and straggler eviction, identical under pipes and sockets.
``serve_channels(..., shard_lanes=N)`` upgrades it to the parallel mode:
per-shard executor lanes decode shard-addressed payloads outside every
lock while the loop's own thread demuxes raw bytes by the frame header
(see the "Parallel serve architecture" section of ``docs/comm.md``).

The channel layer owns byte accounting and ``comm.send`` / ``comm.recv``
obs spans, so ``TrainResult`` byte fields and traces mean the same thing
on every substrate.  See ``docs/comm.md`` for the frame schema and the
channel contract.
"""

from . import channel, frames, pipe, protocol, service, sim, socket
from .channel import Channel, ChannelClosed, InProcChannel
from .frames import (
    CONTROL_JOIN,
    CONTROL_LEAVE,
    FRAME_MAGIC,
    KIND_CLOSE,
    KIND_CONTROL,
    KIND_DIFF,
    KIND_GRADIENT,
    KIND_MODEL,
    KIND_TELEMETRY,
    CloseFrame,
    ControlFrame,
    DiffFrame,
    Frame,
    GradientFrame,
    ModelFrame,
    TelemetryFrame,
    decode_frame,
    encode_frame,
    peek_kind,
    peek_shard,
    reply_frame,
)
from .pipe import PipeChannel, serve_pipe_channels
from .protocol import run_worker_loop
from .service import ServeReport, ServerService, serve_channels
from .sim import SimChannel, SimTransfer, SimTransport
from .socket import ChannelTimeout, ShardListenerGroup, SocketChannel, SocketListener

__all__ = [
    "channel",
    "frames",
    "pipe",
    "protocol",
    "service",
    "sim",
    "socket",
    "FRAME_MAGIC",
    "Frame",
    "GradientFrame",
    "DiffFrame",
    "ModelFrame",
    "CloseFrame",
    "TelemetryFrame",
    "ControlFrame",
    "CONTROL_JOIN",
    "CONTROL_LEAVE",
    "KIND_GRADIENT",
    "KIND_DIFF",
    "KIND_MODEL",
    "KIND_CLOSE",
    "KIND_TELEMETRY",
    "KIND_CONTROL",
    "encode_frame",
    "decode_frame",
    "peek_kind",
    "peek_shard",
    "reply_frame",
    "Channel",
    "ChannelClosed",
    "ChannelTimeout",
    "ServerService",
    "InProcChannel",
    "PipeChannel",
    "ServeReport",
    "serve_pipe_channels",
    "serve_channels",
    "ShardListenerGroup",
    "SocketChannel",
    "SocketListener",
    "SimChannel",
    "SimTransfer",
    "SimTransport",
    "run_worker_loop",
]
