"""Backend protocol, registry, and the ambient default backend.

A backend turns one :class:`~repro.exec.config.RunConfig` into a
:class:`~repro.exec.result.TrainResult`.  The four built-ins ("threaded",
"process", "simulated", "sync") register themselves on import of
:mod:`repro.exec`; extensions register their own with
:func:`register_backend` and immediately work everywhere a backend name is
accepted — ``Trainer``, ``run_distributed(backend=...)``, ``python -m
repro run --backend``, and ``make backend-matrix``.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Protocol, runtime_checkable

from .config import RunConfig
from .result import TrainResult

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "list_backends",
    "default_backend",
    "use_backend",
    "collect_results",
    "notify_result",
]


@runtime_checkable
class Backend(Protocol):
    """One way of executing a distributed training run."""

    #: registry name, e.g. "threaded"
    name: str
    #: clock domain of the results it produces: "wall" | "virtual"
    clock: str
    #: optional TrainResult fields this backend guarantees to populate
    measures: "frozenset[str]"

    def create(self, config: RunConfig):
        """Build (but do not run) the underlying engine for ``config``.

        The returned engine exposes ``run() -> TrainResult`` plus whatever
        pre-run state the engine publishes (e.g. ``.server``/``.workers``)
        for instrumentation.
        """

    def run(self, config: RunConfig) -> TrainResult:
        """Execute ``config`` to completion."""


_REGISTRY: "dict[str, Backend]" = {}

#: name resolved when a caller passes ``backend=None``; the simulator is
#: the default because it is cheap, deterministic, and fully instrumented.
_DEFAULT = "simulated"


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add ``backend`` to the registry under ``backend.name``."""
    name = backend.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: "str | Backend | None" = None) -> Backend:
    """Resolve a backend by registry name (None ⇒ the ambient default)."""
    if name is None:
        name = _DEFAULT
    if not isinstance(name, str):
        return name  # already a Backend instance
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; known: {list_backends()}") from None


def list_backends() -> "tuple[str, ...]":
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def default_backend() -> str:
    """The backend name used when callers pass ``backend=None``."""
    return _DEFAULT


#: active result sinks — every completed backend run is appended to each
_COLLECTORS: "list[list[tuple[RunConfig, TrainResult]]]" = []


def notify_result(config: RunConfig, result: TrainResult) -> None:
    """Report a completed run to every active :func:`collect_results` scope.

    The built-in backends call this from their shared ``run()``; custom
    backends should too, so CLI-level run manifests see their results.
    """
    for sink in _COLLECTORS:
        sink.append((config, result))


@contextlib.contextmanager
def collect_results() -> "Iterator[list[tuple[RunConfig, TrainResult]]]":
    """Collect every (config, result) pair produced while the scope is open.

    The seam behind ``python -m repro run --run-dir``: experiments run
    arbitrarily many distributed jobs internally, and the CLI turns the
    collected pairs into run-manifest artifacts without threading a sink
    through every runner signature.
    """
    sink: "list[tuple[RunConfig, TrainResult]]" = []
    _COLLECTORS.append(sink)
    try:
        yield sink
    finally:
        _COLLECTORS.remove(sink)


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily change the ambient default backend.

    The seam behind ``python -m repro run --backend``: experiments that
    call ``run_distributed`` without an explicit backend inherit this.
    """
    global _DEFAULT
    get_backend(name)  # fail fast on unknown names
    previous = _DEFAULT
    _DEFAULT = name
    try:
        yield name
    finally:
        _DEFAULT = previous
