"""SocketTrainer end-to-end: elastic workers over real TCP loopback.

Each test forks real worker processes that connect to an ephemeral
loopback listener; the paper's training loop runs unchanged on top —
what is under test here is the deployment machinery: membership
accounting, crash → partial result, mid-run joins, checkpoint cadence.
"""

from __future__ import annotations

import pytest

from repro.core.methods import Hyper
from repro.ps.socket import SocketTrainer


def _trainer(tiny_dataset, tiny_model_factory, **kwargs):
    defaults = dict(
        num_workers=2,
        batch_size=16,
        iterations_per_worker=20,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        seed=0,
    )
    defaults.update(kwargs)
    return SocketTrainer("dgs", tiny_model_factory, tiny_dataset, **defaults)


def test_two_workers_learn_over_tcp(tiny_dataset, tiny_model_factory):
    trainer = _trainer(tiny_dataset, tiny_model_factory)
    result = trainer.run()
    assert result.backend == "socket"
    assert result.errors == []
    assert result.final_accuracy > 0.9
    assert result.total_iterations == 40
    assert result.samples_processed == 40 * 16
    # every frame crossed a real socket: transport counters are live
    assert result.wire_bytes_up > 0 and result.wire_bytes_down > 0
    snap = trainer.membership.snapshot()
    assert snap["joins"] == 2 and snap["leaves"] == 2
    assert snap["crashes"] == 0 and snap["evictions"] == 0


def test_worker_crash_yields_partial_result(tiny_dataset, tiny_model_factory):
    """A hard-killed worker (no close frame) must not hang or fail the run."""
    trainer = _trainer(tiny_dataset, tiny_model_factory, fail_at={1: 5})
    result = trainer.run()
    assert len(result.errors) == 1
    assert "without a close frame" in result.errors[0]
    # the survivor finished its full budget; the victim stopped at ~5
    assert 20 <= result.total_iterations < 40
    assert trainer.membership.members[1] == "crash"
    assert trainer.membership.members[0] == "left"


def test_mid_run_join_completes_with_correct_accounting(
    tiny_dataset, tiny_model_factory
):
    trainer = _trainer(tiny_dataset, tiny_model_factory, join_delay_s={1: 0.3})
    result = trainer.run()
    assert result.errors == []
    assert result.total_iterations == 40
    snap = trainer.membership.snapshot()
    assert snap["joins"] == 2 and snap["leaves"] == 2
    # the delayed worker joined against a server that had already moved
    join_ts = {w: ts for (w, kind, ts) in trainer.membership.events if kind == "join"}
    assert join_ts[0] == 0
    assert join_ts[1] > 0


def test_checkpoint_cadence_writes_file(tmp_path, tiny_dataset, tiny_model_factory):
    path = tmp_path / "run.ckpt"
    result = _trainer(
        tiny_dataset,
        tiny_model_factory,
        checkpoint_every=10,
        checkpoint_path=path,
    ).run()
    assert result.errors == []
    assert path.exists()
    from repro.ps.checkpoint import load_checkpoint
    from repro.core.layerops import parameters_of
    from repro.exec.common import build_server
    from repro.core.methods import get_method

    server = build_server(
        get_method("dgs"),
        parameters_of(tiny_model_factory()),
        2,
        Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
    )
    header = load_checkpoint(server, path)
    # the final checkpoint covers the whole run's updates
    assert sum(header["shards"][0]["updates"].values()) == 40
    assert server.timestamp == 40


def test_checkpoint_every_requires_path(tiny_dataset, tiny_model_factory):
    with pytest.raises(ValueError, match="checkpoint_path"):
        _trainer(tiny_dataset, tiny_model_factory, checkpoint_every=5)
