"""Opt-in numeric sanitizer: NaN/Inf and dtype-drift detection at the op level.

Aggressive dual-way sparsification plus SAMomentum's ``1/m`` rescale is
exactly the kind of numerics that degrades silently — compression bugs show
up as slow accuracy loss, not crashes.  ``with sanitize():`` instruments the
three numeric surfaces of the system and reports the *offending op*, not
the eventual symptom:

* **autograd** — every ``Tensor`` op output and every accumulated gradient;
* **optim**    — parameters after each optimizer ``step()``;
* **compression** — sparsifier ``mask()`` inputs and codec
  ``to_dense()``/``add_into()`` outputs.

Checks: non-finite values (NaN/Inf) always; *dtype drift* — a floating
array whose dtype differs from the stream's established dtype (float64
creep / float32 truncation) — once a baseline dtype is known (taken from
the first array seen, or pinned via ``expected_dtype``).

The context is reentrant-safe per instance and restores every patched
callable on exit.  ``on_fault='record'`` collects faults instead of
raising, for harness sweeps where one bad op should not kill the run.
"""

from __future__ import annotations

import sys
from typing import Callable

import numpy as np

__all__ = ["NumericFault", "Sanitizer", "sanitize", "sanitizer_selfcheck"]


class NumericFault(RuntimeError):
    """A numeric invariant violated by one op."""

    def __init__(self, op: str, kind: str, detail: str) -> None:
        super().__init__(f"[{kind}] in {op}: {detail}")
        self.op = op
        self.kind = kind  #: ``'non-finite'`` or ``'dtype-drift'``
        self.detail = detail


def _caller_op(depth: int = 2) -> str:
    """Qualified name of the frame that invoked the patched op."""
    frame = sys._getframe(depth)
    code = frame.f_code
    return getattr(code, "co_qualname", code.co_name)


class Sanitizer:
    """Context manager installing the numeric checks; see module docstring."""

    def __init__(
        self,
        expected_dtype: "np.dtype | type | None" = None,
        check_autograd: bool = True,
        check_optim: bool = True,
        check_compression: bool = True,
        on_fault: str = "raise",
    ) -> None:
        if on_fault not in ("raise", "record"):
            raise ValueError(f"on_fault must be 'raise' or 'record', got {on_fault!r}")
        self.expected_dtype = np.dtype(expected_dtype) if expected_dtype is not None else None
        self.check_autograd = check_autograd
        self.check_optim = check_optim
        self.check_compression = check_compression
        self.on_fault = on_fault
        self.faults: "list[NumericFault]" = []
        self._patches: "list[tuple[object, str, object]]" = []
        self._inferred_dtype: "np.dtype | None" = self.expected_dtype

    # ------------------------------------------------------------------
    def check_array(self, arr: object, op: str) -> None:
        """Check one array against the sanitizer's invariants."""
        if not isinstance(arr, np.ndarray):
            return
        if np.issubdtype(arr.dtype, np.floating):
            if self._inferred_dtype is None:
                self._inferred_dtype = arr.dtype
            elif arr.dtype != self._inferred_dtype:
                self._fault(
                    op,
                    "dtype-drift",
                    f"array is {arr.dtype}, stream dtype is {self._inferred_dtype}",
                )
            if arr.size and not np.isfinite(arr).all():
                n_nan = int(np.isnan(arr).sum())
                n_inf = int(np.isinf(arr).sum())
                self._fault(op, "non-finite", f"{n_nan} NaN / {n_inf} Inf of {arr.size} values")

    def _fault(self, op: str, kind: str, detail: str) -> None:
        fault = NumericFault(op, kind, detail)
        self.faults.append(fault)
        if self.on_fault == "raise":
            raise fault

    # ------------------------------------------------------------------
    def _patch(self, owner: object, name: str, wrapper: "Callable[..., object]") -> None:
        self._patches.append((owner, name, owner.__dict__[name]))
        setattr(owner, name, wrapper)

    def _install_autograd(self) -> None:
        from ..autograd.tensor import Tensor

        sanitizer = self
        orig_make = Tensor._make
        orig_accumulate = Tensor._accumulate

        def make(self, data, parents, backward):
            out = orig_make(self, data, parents, backward)
            sanitizer.check_array(out.data, _caller_op())
            return out

        def accumulate(self, grad):
            orig_accumulate(self, grad)
            sanitizer.check_array(self.grad, _caller_op())

        self._patch(Tensor, "_make", make)
        self._patch(Tensor, "_accumulate", accumulate)

    def _install_optim(self) -> None:
        from .. import optim

        sanitizer = self
        for cls_name in ("SGD", "LARS"):
            cls = getattr(optim, cls_name, None)
            if cls is None or "step" not in cls.__dict__:
                continue
            orig_step = cls.__dict__["step"]

            def step(self, _orig=orig_step, _name=cls_name):
                _orig(self)
                for p in self.params:
                    sanitizer.check_array(p.data, f"{_name}.step")

            self._patch(cls, "step", step)

    def _install_compression(self) -> None:
        from ..compression import coding
        from ..compression.base import Sparsifier

        sanitizer = self

        def subclasses(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from subclasses(sub)

        for cls in subclasses(Sparsifier):
            if "mask" not in cls.__dict__:
                continue
            orig_mask = cls.__dict__["mask"]

            def mask(self, arr, _orig=orig_mask, _name=cls.__name__):
                sanitizer.check_array(arr, f"{_name}.mask")
                return _orig(self, arr)

            self._patch(cls, "mask", mask)

        for codec_name in ("SparseTensor", "DenseTensor", "BitmapTensor", "QuantizedSparseTensor"):
            cls = getattr(coding, codec_name, None)
            if cls is None:
                continue
            if "to_dense" in cls.__dict__:
                orig_td = cls.__dict__["to_dense"]

                def to_dense(self, _orig=orig_td, _name=codec_name):
                    out = _orig(self)
                    sanitizer.check_array(out, f"{_name}.to_dense")
                    return out

                self._patch(cls, "to_dense", to_dense)
            if "add_into" in cls.__dict__:
                orig_ai = cls.__dict__["add_into"]

                def add_into(self, dest, _orig=orig_ai, _name=codec_name):
                    _orig(self, dest)
                    sanitizer.check_array(dest, f"{_name}.add_into")

                self._patch(cls, "add_into", add_into)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Sanitizer":
        if self._patches:
            raise RuntimeError("Sanitizer context is not reentrant; create a new one")
        if self.check_autograd:
            self._install_autograd()
        if self.check_optim:
            self._install_optim()
        if self.check_compression:
            self._install_compression()
        return self

    def __exit__(self, *exc: object) -> None:
        while self._patches:
            owner, name, orig = self._patches.pop()
            setattr(owner, name, orig)


def sanitize(
    expected_dtype: "np.dtype | type | None" = None,
    check_autograd: bool = True,
    check_optim: bool = True,
    check_compression: bool = True,
    on_fault: str = "raise",
) -> Sanitizer:
    """Build a :class:`Sanitizer` context (``with sanitize() as s: ...``)."""
    return Sanitizer(
        expected_dtype=expected_dtype,
        check_autograd=check_autograd,
        check_optim=check_optim,
        check_compression=check_compression,
        on_fault=on_fault,
    )


def sanitizer_selfcheck() -> "list[str]":
    """Verify the sanitizer both passes clean numerics and trips on bad ones.

    Returns a list of problems (empty == healthy).  This is the third CLI
    pillar: it proves the hooks are actually attached to the current code —
    a refactor that renames ``Tensor._make`` or ``Sparsifier.mask`` breaks
    detection silently otherwise.
    """
    from ..autograd.tensor import Tensor
    from ..compression.coding import SparseTensor
    from ..compression.topk import TopKSparsifier
    from ..nn.module import Parameter
    from ..optim.sgd import SGD

    problems: list[str] = []

    # 1) clean numerics must pass untouched
    try:
        with sanitize():
            a = Tensor(np.ones(8, dtype=np.float64), requires_grad=True)
            loss = (a * 2.0).sum()
            loss.backward()
            p = Parameter(np.ones(8, dtype=np.float64))
            p.grad = np.full(8, 0.5, dtype=np.float64)
            SGD([p], lr=0.1).step()
            arr = np.linspace(-1.0, 1.0, 64, dtype=np.float64)
            sp = TopKSparsifier(0.25)
            dense = SparseTensor(
                np.flatnonzero(sp.mask(arr)).astype(np.int64),
                arr[sp.mask(arr)],
                arr.shape,
            ).to_dense()
            assert dense.shape == arr.shape
    except NumericFault as fault:
        problems.append(f"sanitizer flagged clean numerics: {fault}")

    # 2) each hook family must trip on a seeded NaN
    bad = np.array([1.0, np.nan, 3.0], dtype=np.float64)
    with sanitize(on_fault="record") as s:
        Tensor(bad, requires_grad=True) * 2.0
        autograd_hits = len(s.faults)
        TopKSparsifier(0.5).mask(bad)
        compression_hits = len(s.faults) - autograd_hits
        p = Parameter(np.ones(3, dtype=np.float64))
        p.grad = bad
        SGD([p], lr=0.1).step()
        optim_hits = len(s.faults) - autograd_hits - compression_hits
    if not autograd_hits:
        problems.append("autograd hook did not fire on a NaN tensor op")
    if not compression_hits:
        problems.append("compression hook did not fire on a NaN sparsifier input")
    if not optim_hits:
        problems.append("optim hook did not fire on a NaN gradient step")

    # 3) dtype drift must be detected
    with sanitize(expected_dtype=np.float64, on_fault="record") as s:
        Tensor(np.ones(4, dtype=np.float64)) + Tensor(np.ones(4, dtype=np.float64))
        before = len(s.faults)
        s.check_array(np.ones(4, dtype=np.float32), "selfcheck.float32-creep")
        if len(s.faults) == before:
            problems.append("dtype-drift check did not fire on a float32 array")

    return problems
