"""Backend protocol, registry, and the ambient default backend.

A backend turns one :class:`~repro.exec.config.RunConfig` into a
:class:`~repro.exec.result.TrainResult`.  The five built-ins ("threaded",
"process", "socket", "simulated", "sync") register themselves on import of
:mod:`repro.exec`; extensions register their own with
:func:`register_backend` and immediately work everywhere a backend name is
accepted — ``Trainer``, ``run_distributed(backend=...)``, ``python -m
repro run --backend``, and ``make backend-matrix``.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Protocol, runtime_checkable

from .config import RunConfig
from .result import TrainResult

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "list_backends",
    "default_backend",
    "use_backend",
    "use_config_overrides",
    "apply_config_overrides",
    "collect_results",
    "notify_result",
]


@runtime_checkable
class Backend(Protocol):
    """One way of executing a distributed training run."""

    #: registry name, e.g. "threaded"
    name: str
    #: clock domain of the results it produces: "wall" | "virtual"
    clock: str
    #: optional TrainResult fields this backend guarantees to populate
    measures: "frozenset[str]"

    def create(self, config: RunConfig):
        """Build (but do not run) the underlying engine for ``config``.

        The returned engine exposes ``run() -> TrainResult`` plus whatever
        pre-run state the engine publishes (e.g. ``.server``/``.workers``)
        for instrumentation.
        """

    def run(self, config: RunConfig) -> TrainResult:
        """Execute ``config`` to completion."""


_REGISTRY: "dict[str, Backend]" = {}

#: name resolved when a caller passes ``backend=None``; the simulator is
#: the default because it is cheap, deterministic, and fully instrumented.
_DEFAULT = "simulated"


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add ``backend`` to the registry under ``backend.name``."""
    name = backend.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: "str | Backend | None" = None) -> Backend:
    """Resolve a backend by registry name (None ⇒ the ambient default)."""
    if name is None:
        name = _DEFAULT
    if not isinstance(name, str):
        return name  # already a Backend instance
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; known: {list_backends()}") from None


def list_backends() -> "tuple[str, ...]":
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def default_backend() -> str:
    """The backend name used when callers pass ``backend=None``."""
    return _DEFAULT


#: active result sinks — every completed backend run is appended to each
_COLLECTORS: "list[list[tuple[RunConfig, TrainResult]]]" = []


def notify_result(config: RunConfig, result: TrainResult) -> None:
    """Report a completed run to every active :func:`collect_results` scope.

    The built-in backends call this from their shared ``run()``; custom
    backends should too, so CLI-level run manifests see their results.
    """
    for sink in _COLLECTORS:
        sink.append((config, result))


@contextlib.contextmanager
def collect_results() -> "Iterator[list[tuple[RunConfig, TrainResult]]]":
    """Collect every (config, result) pair produced while the scope is open.

    The seam behind ``python -m repro run --run-dir``: experiments run
    arbitrarily many distributed jobs internally, and the CLI turns the
    collected pairs into run-manifest artifacts without threading a sink
    through every runner signature.
    """
    sink: "list[tuple[RunConfig, TrainResult]]" = []
    _COLLECTORS.append(sink)
    try:
        yield sink
    finally:
        _COLLECTORS.remove(sink)


#: ambient RunConfig field overrides, innermost scope last
_CONFIG_OVERRIDES: "list[dict[str, object]]" = []


@contextlib.contextmanager
def use_config_overrides(**fields: object) -> "Iterator[dict[str, object]]":
    """Temporarily override :class:`RunConfig` fields for every run.

    The seam behind ``python -m repro run --checkpoint-every/--restore``:
    experiments build their own configs internally, and the CLI layers
    run-level settings (checkpointing, restore) over all of them without
    threading new parameters through every runner signature.  Overrides
    are applied by :func:`apply_config_overrides` (the built-in backends
    call it from their shared ``run()``); unknown field names fail fast.
    """
    import dataclasses

    known = {f.name for f in dataclasses.fields(RunConfig)}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown RunConfig fields: {sorted(unknown)}")
    scope = dict(fields)
    _CONFIG_OVERRIDES.append(scope)
    try:
        yield scope
    finally:
        _CONFIG_OVERRIDES.remove(scope)


def apply_config_overrides(config: RunConfig) -> RunConfig:
    """``config`` with every active override scope applied (innermost wins).

    Returns the input object unchanged when no scope is active.
    """
    if not _CONFIG_OVERRIDES:
        return config
    import dataclasses

    merged: "dict[str, object]" = {}
    for scope in _CONFIG_OVERRIDES:
        merged.update(scope)
    return dataclasses.replace(config, **merged)


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily change the ambient default backend.

    The seam behind ``python -m repro run --backend``: experiments that
    call ``run_distributed`` without an explicit backend inherit this.
    """
    global _DEFAULT
    get_backend(name)  # fail fast on unknown names
    previous = _DEFAULT
    _DEFAULT = name
    try:
        yield name
    finally:
        _DEFAULT = previous
