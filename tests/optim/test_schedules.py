"""Learning-rate schedules."""

import math

import pytest

from repro.optim import ConstantLR, CosineDecay, StepDecay, WarmupWrapper


class TestConstant:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(100) == 0.1


class TestStepDecay:
    def test_paper_imagenet_schedule(self):
        """LR 0.1 decays ×0.1 at epochs 30 and 60 (§5.1)."""
        s = StepDecay(0.1, milestones=(30, 60), factor=0.1)
        assert s(0) == pytest.approx(0.1)
        assert s(29.9) == pytest.approx(0.1)
        assert s(30) == pytest.approx(0.01)
        assert s(59.9) == pytest.approx(0.01)
        assert s(60) == pytest.approx(0.001)

    def test_unsorted_milestones(self):
        s = StepDecay(1.0, milestones=(40, 30), factor=0.5)
        assert s(35) == pytest.approx(0.5)

    def test_fractional_epochs(self):
        s = StepDecay(1.0, milestones=(1.5,), factor=0.1)
        assert s(1.4) == 1.0 and s(1.6) == pytest.approx(0.1)


class TestCosine:
    def test_endpoints(self):
        s = CosineDecay(1.0, total_epochs=10, min_lr=0.01)
        assert s(0) == pytest.approx(1.0)
        assert s(10) == pytest.approx(0.01)

    def test_midpoint(self):
        s = CosineDecay(1.0, total_epochs=10, min_lr=0.0)
        assert s(5) == pytest.approx(0.5)

    def test_clamps_beyond_total(self):
        s = CosineDecay(1.0, total_epochs=10, min_lr=0.01)
        assert s(20) == pytest.approx(0.01)

    def test_monotone_decreasing(self):
        s = CosineDecay(1.0, total_epochs=10)
        values = [s.lr_at(e) for e in range(11)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestWarmup:
    def test_starts_at_factor(self):
        s = WarmupWrapper(ConstantLR(1.0), warmup_epochs=5, warmup_factor=0.1)
        assert s(0) == pytest.approx(0.1)

    def test_reaches_base_at_end(self):
        s = WarmupWrapper(ConstantLR(1.0), warmup_epochs=5, warmup_factor=0.1)
        assert s(5) == pytest.approx(1.0)
        assert s(10) == pytest.approx(1.0)

    def test_linear_in_between(self):
        s = WarmupWrapper(ConstantLR(1.0), warmup_epochs=4, warmup_factor=0.0)
        assert s(1) == pytest.approx(0.25)
        assert s(2) == pytest.approx(0.5)

    def test_zero_warmup(self):
        s = WarmupWrapper(ConstantLR(0.5), warmup_epochs=0)
        assert s(0) == 0.5

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            WarmupWrapper(ConstantLR(1.0), warmup_epochs=-1)

    def test_composes_with_step_decay(self):
        s = WarmupWrapper(StepDecay(1.0, (10,), 0.1), warmup_epochs=2)
        assert s(15) == pytest.approx(0.1)


class TestValidation:
    def test_nonpositive_lr_raises_at_call(self):
        s = ConstantLR(0.0)
        with pytest.raises(ValueError):
            s(0)
