"""Channel implementations: in-process dispatch, OS pipes, the serving loop."""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.comm import (
    ChannelClosed,
    CloseFrame,
    DiffFrame,
    GradientFrame,
    InProcChannel,
    PipeChannel,
    run_worker_loop,
    serve_pipe_channels,
)
from repro.compression import SparseTensor
from repro.compression.stats import CompressionStats
from repro.ps.messages import DiffMessage, GradientMessage


def _gradient(worker_id=0, value=1.5, iteration=0):
    payload = {"w": SparseTensor(np.array([1], dtype=np.int64), np.array([value]), (4,))}
    return GradientFrame(GradientMessage(worker_id, payload, iteration), loss=0.5)


def _echo_service(frame):
    """Stub service: replies with a diff carrying the same payload."""
    return DiffFrame(
        DiffMessage(frame.worker_id, frame.message.payload, server_timestamp=1, staleness=0)
    )


class TestInProcChannel:
    def test_send_recv_roundtrip(self):
        channel = InProcChannel(_echo_service, worker_id=0)
        channel.send(_gradient())
        reply = channel.recv()
        assert isinstance(reply, DiffFrame)
        np.testing.assert_array_equal(reply.message.payload["w"].values, [1.5])

    def test_stats_recorded_both_directions(self):
        stats = CompressionStats()
        channel = InProcChannel(_echo_service, worker_id=0, stats=stats)
        frame = _gradient()
        channel.send(frame)
        channel.recv()
        assert stats.upload_messages == 1 and stats.download_messages == 1
        assert stats.upload_bytes == frame.nbytes()
        assert stats.upload_dense_bytes == frame.dense_nbytes()

    def test_wire_fidelity_round_trips_through_the_codec(self):
        seen = {}

        def service(frame):
            seen["value"] = frame.message.payload["w"].values[0]
            return _echo_service(frame)

        channel = InProcChannel(service, worker_id=0, wire_fidelity=True)
        channel.send(_gradient(value=0.1))  # not float32-representable
        reply = channel.recv()
        wire_value = float(np.float32(0.1))
        assert seen["value"] == wire_value != 0.1
        assert reply.message.payload["w"].values[0] == wire_value

    def test_close_frame_captured_not_dispatched(self):
        def service(frame):  # pragma: no cover - must not be reached
            raise AssertionError("close frames never reach the service")

        channel = InProcChannel(service, worker_id=2)
        close = CloseFrame(worker_id=2, samples_processed=64, worker_state_bytes=128)
        channel.send(close)
        assert channel.close_frame == close

    def test_send_after_close_raises(self):
        channel = InProcChannel(_echo_service, worker_id=0)
        channel.close()
        with pytest.raises(ChannelClosed):
            channel.send(_gradient())

    def test_worker_end_rejects_downstream_frames(self):
        channel = InProcChannel(_echo_service, worker_id=0)
        with pytest.raises(TypeError):
            channel.send(DiffFrame(DiffMessage(0, {}, 0, 0)))


class TestPipeChannel:
    def test_loopback_and_wire_counters(self):
        left, right = mp.Pipe(duplex=True)
        sender, receiver = PipeChannel(left), PipeChannel(right)
        frame = _gradient(worker_id=4, iteration=9)
        sender.send(frame)
        out = receiver.recv()
        assert isinstance(out, GradientFrame)
        assert out.worker_id == 4 and out.message.local_iteration == 9
        assert sender.wire_bytes_sent == receiver.wire_bytes_received > frame.nbytes()
        sender.close()
        receiver.close()

    def test_closed_channel_raises(self):
        left, right = mp.Pipe(duplex=True)
        channel = PipeChannel(left)
        channel.close()
        with pytest.raises(ChannelClosed):
            channel.send(_gradient())
        with pytest.raises(ChannelClosed):
            channel.recv()
        right.close()


class TestServePipeChannels:
    def _pair(self):
        parent, child = mp.Pipe(duplex=True)
        return PipeChannel(parent), PipeChannel(child)

    def test_serves_until_clean_close(self):
        server_ch, worker_ch = self._pair()
        worker_ch.send(_gradient(worker_id=0))
        worker_ch.send(CloseFrame(worker_id=0, samples_processed=16, worker_state_bytes=32))
        stats = CompressionStats()
        losses = []
        report = serve_pipe_channels([server_ch], _echo_service, stats=stats, on_loss=losses.append)
        assert report.clean_closes == 1 and report.crashes == 0
        assert report.samples_processed == 16 and report.worker_state_bytes == 32
        assert stats.upload_messages == 1 and stats.download_messages == 1
        assert losses == [0.5]
        assert isinstance(worker_ch.recv(), DiffFrame)  # the buffered reply

    def test_close_frame_with_error_counts_as_crash(self):
        server_ch, worker_ch = self._pair()
        worker_ch.send(CloseFrame(worker_id=3, samples_processed=8, error="RuntimeError: boom"))
        report = serve_pipe_channels([server_ch], _echo_service)
        assert report.crashes == 1 and report.clean_closes == 0
        assert report.samples_processed == 8  # accounting up to the failure survives
        assert any("worker 3" in e and "boom" in e for e in report.errors)

    def test_eof_without_close_frame_is_a_crash(self):
        server_ch, worker_ch = self._pair()
        worker_ch.connection.close()  # hard death: no close frame
        report = serve_pipe_channels([server_ch], _echo_service)
        assert report.crashes == 1
        assert any("without a close frame" in e for e in report.errors)


class _FakeNode:
    """Minimal worker-node double for driving the protocol loop."""

    def __init__(self, worker_id=0, fail_on=None):
        self.worker_id = worker_id
        self.fail_on = fail_on
        self.samples_processed = 0
        self.last_loss = 0.25
        self.applied = []

    def compute_step(self):
        if self.fail_on is not None and self.samples_processed >= self.fail_on:
            raise ZeroDivisionError("synthetic failure")
        self.samples_processed += 1
        return GradientMessage(self.worker_id, {"w": np.ones(2)}, self.samples_processed)

    def apply_reply(self, msg):
        self.applied.append(msg)

    def worker_state_bytes(self):
        return 64


class TestWorkerProtocolLoop:
    def test_clean_run_sends_accounting_close(self):
        node = _FakeNode(worker_id=1)
        channel = InProcChannel(_echo_service, worker_id=1)
        run_worker_loop(node, channel, iterations=3)
        assert node.samples_processed == 3 and len(node.applied) == 3
        close = channel.close_frame
        assert close is not None and close.error is None
        assert close.worker_id == 1
        assert close.samples_processed == 3 and close.worker_state_bytes == 64

    def test_worker_exception_reported_in_close_frame(self):
        node = _FakeNode(worker_id=2, fail_on=2)
        channel = InProcChannel(_echo_service, worker_id=2)
        with pytest.raises(ZeroDivisionError):
            run_worker_loop(node, channel, iterations=5)
        close = channel.close_frame
        assert close is not None
        assert "ZeroDivisionError" in close.error
        assert close.samples_processed == 2  # partial accounting still attached
