"""The parameter server.

Wraps :class:`~repro.core.tracker.ModelDifferenceTracker` with the paper's
two downstream modes:

* ``difference`` — DGS / GD-async / DGC-async: reply with the sparse model
  difference ``G_k`` (Algorithm 2), optionally secondary-compressed;
* ``model`` — vanilla ASGD: reply with the full dense global model.

Thread-safe: :meth:`handle` takes an internal lock, so the threaded trainer
exercises genuine HOGWILD-style contention while state stays consistent.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..compression.base import Sparsifier
from ..compression.stats import CompressionStats
from ..compression.topk import TopKSparsifier
from ..core.layerops import scale_payload
from ..core.tracker import ModelDifferenceTracker
from ..metrics.meters import AverageMeter
from ..obs import names as obs_names
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import current_tracer
from .messages import DiffMessage, GradientMessage, ModelMessage

__all__ = [
    "ParameterServer",
    "STALENESS_BUCKETS",
    "LOCK_SECONDS_BUCKETS",
    "summarize_staleness",
]

#: histogram bucket upper bounds for staleness (update counts, not
#: seconds — the +Inf slot catches anything above 128 timestamps)
STALENESS_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: half-decade bucket bounds for the lock wait/hold series.  Lock events
#: live in the µs–ms range; the coarse decade-wide default buckets put
#: p99 interpolation error at ~10×, which would drown the shard-count
#: effect the contention benchmark measures.
LOCK_SECONDS_BUCKETS = (
    1e-6, 3.16e-6, 1e-5, 3.16e-5, 1e-4, 3.16e-4,
    1e-3, 3.16e-3, 1e-2, 3.16e-2, 0.1, 0.316, 1.0,
)


def summarize_staleness(
    per_worker_values: "Mapping[int, list[int]]",
) -> "dict[str, object]":
    """Pure aggregation of raw per-worker staleness observations.

    Kept outside the server class (and outside any lock) so callers that
    fan in over N shards — N snapshot calls per report — pay for the
    percentile math once, on merged data, with no lock held.
    """
    all_values = [s for values in per_worker_values.values() for s in values]
    per_worker = {
        w: {
            "count": len(values),
            "mean": float(np.mean(values)),
            "p50": float(np.percentile(values, 50)),
            "p99": float(np.percentile(values, 99)),
        }
        for w, values in sorted(per_worker_values.items())
    }
    return {
        "p50": float(np.percentile(all_values, 50)) if all_values else float("nan"),
        "p99": float(np.percentile(all_values, 99)) if all_values else float("nan"),
        "per_worker": per_worker,
    }


class ParameterServer:
    """PS node: applies worker updates, answers with model state."""

    #: attributes ``self._lock`` protects — the single source of truth
    #: shared by the static checker and the dynamic race instrumentation
    #: (:func:`repro.analysis.race.instrument_object`).  ``stats`` is
    #: deliberately absent: byte accounting is recorded by the channel
    #: layer into a self-synchronising ``CompressionStats``.
    __guarded_attrs__ = ("tracker", "staleness_meter", "worker_staleness")

    def __init__(
        self,
        theta0: "Mapping[str, np.ndarray]",
        num_workers: int,
        downstream: str = "difference",
        secondary_ratio: float | None = None,
        secondary_min_sparse_size: int = 256,
        staleness_damping: bool = False,
        arena: bool = False,
        arena_dtype: "np.dtype | type | str | None" = None,
        shard: int | None = None,
    ) -> None:
        if downstream not in ("difference", "model"):
            raise ValueError(f"downstream must be 'difference' or 'model', got {downstream!r}")
        if arena:
            # θ0 as an arena too, so global_model() is one fused θ0 + M.
            from ..core.arena import LayerArena

            self.theta0 = LayerArena.from_layers(
                theta0, dtype=np.float32 if arena_dtype is None else arena_dtype
            )
        else:
            self.theta0 = OrderedDict((k, v.copy()) for k, v in theta0.items())
        shapes = OrderedDict((k, v.shape) for k, v in theta0.items())
        secondary: Sparsifier | None = (
            TopKSparsifier(secondary_ratio, min_sparse_size=secondary_min_sparse_size)
            if secondary_ratio is not None
            else None
        )
        self.downstream = downstream
        self.tracker = ModelDifferenceTracker(
            shapes,
            num_workers,
            secondary=secondary,
            track_differences=(downstream == "difference"),
            arena=arena,
            dtype=arena_dtype,
        )
        #: byte-accounting sink — *recorded into by the comm channel layer*
        #: (the server applies updates; what they cost on the wire is the
        #: transport's knowledge), read back by every TrainResult.
        self.stats = CompressionStats()
        self.staleness_meter = AverageMeter("staleness")
        #: contention telemetry: how long handle() waited for the lock vs
        #: how long it held it — the HOGWILD bottleneck signal (seconds).
        self.lock_wait_meter = AverageMeter("lock_wait_s")
        self.lock_hold_meter = AverageMeter("lock_hold_s")
        self.worker_lock_wait: "dict[int, AverageMeter]" = {}
        #: raw per-worker staleness observations (exact p50/p99 for
        #: TrainResult; the registry's bucketed series are the streamable
        #: approximation for metrics.jsonl / health checks)
        self.worker_staleness: "dict[int, list[int]]" = {}
        #: per-worker time-bucketed series (self-synchronising, like
        #: ``stats``: observed *outside* the server lock)
        self.metrics = MetricsRegistry()
        #: gap-aware mitigation (Barkai et al., the paper's [4]): scale an
        #: incoming update by 1/(staleness + 1) before applying it, damping
        #: the implicit momentum that asynchrony introduces.
        self.staleness_damping = staleness_damping
        #: shard id when this server is one partition of a
        #: :class:`~repro.ps.sharded.ShardedParameterServer` (labels the
        #: telemetry series and trace lanes); ``None`` = unsharded.
        self.shard = shard
        #: server memory (M + all v_k + θ0), fixed at construction — every
        #: buffer is preallocated above, so this is cached once instead of
        #: being recomputed under the lock on each report call.
        self.state_bytes = self.tracker.server_state_bytes() + sum(
            a.nbytes for a in self.theta0.values()
        )
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def handle(self, msg: GradientMessage) -> "DiffMessage | ModelMessage":
        """Process one upstream gradient message and build the reply."""
        t_request = time.perf_counter()
        with self._lock:
            t_acquired = time.perf_counter()
            staleness = self.tracker.staleness(msg.worker_id)
            self.staleness_meter.update(staleness)
            self.worker_staleness.setdefault(msg.worker_id, []).append(staleness)
            payload = msg.payload
            if self.staleness_damping and staleness > 0:
                payload = scale_payload(payload, 1.0 / (staleness + 1))
            t = self.tracker.apply_update(payload)

            if self.downstream == "difference":
                diff = self.tracker.model_difference(msg.worker_id)
                reply: DiffMessage | ModelMessage = DiffMessage(
                    msg.worker_id, diff, t, staleness
                )
            else:
                model = self.tracker.global_model(self.theta0)
                # ASGD still advances prev(k): the worker now holds θ_t.
                self.tracker.prev[msg.worker_id] = t
                reply = ModelMessage(msg.worker_id, model, t, staleness)
            t_done = time.perf_counter()
            wait = t_acquired - t_request
            self.lock_wait_meter.update(wait)
            self.lock_hold_meter.update(t_done - t_acquired)
            per_worker = self.worker_lock_wait.get(msg.worker_id)
            if per_worker is None:
                per_worker = AverageMeter(f"lock_wait_s[w{msg.worker_id}]")
                self.worker_lock_wait[msg.worker_id] = per_worker
            per_worker.update(wait)

        # Bucketed series are observed outside the lock (their own fine-
        # grained locks must never nest inside the server lock), same as
        # the tracer spans below; the registry is self-synchronising, so
        # it is not server-lock-guarded state.
        hold = t_done - t_acquired
        labels = {"worker": msg.worker_id}
        if self.shard is not None:
            labels["shard"] = self.shard
        metrics = self.metrics
        metrics.histogram(
            obs_names.METRIC_SERVER_STALENESS,
            buckets=STALENESS_BUCKETS,
            **labels,
        ).observe(staleness)
        metrics.histogram(
            obs_names.METRIC_SERVER_LOCK_WAIT_S,
            buckets=LOCK_SECONDS_BUCKETS,
            **labels,
        ).observe(wait)
        metrics.histogram(
            obs_names.METRIC_SERVER_LOCK_HOLD_S,
            buckets=LOCK_SECONDS_BUCKETS,
            **labels,
        ).observe(hold)

        tracer = current_tracer()
        if tracer.enabled:
            # Emitted outside the lock (no tracing cost added to hold time);
            # wall-clock domain — the simulator stamps its own virtual-time
            # server spans from the event timeline instead.  Shards emit on
            # their own ``shard-<n>`` lane so the Chrome view shows the
            # partitions working side by side.
            tid = "" if self.shard is None else f"shard-{self.shard}"
            tracer.add_span(
                obs_names.SERVER_LOCK_WAIT,
                t_request,
                t_acquired,
                tid=tid,
                cat="server",
                domain="wall",
                args={"worker": msg.worker_id, **(
                    {"shard": self.shard} if self.shard is not None else {}
                )},
            )
            tracer.add_span(
                obs_names.SERVER_HANDLE,
                t_acquired,
                t_done,
                tid=tid,
                cat="server",
                domain="wall",
                args={
                    "worker": msg.worker_id,
                    "staleness": staleness,
                    "up_bytes": msg.nbytes(),
                    "down_bytes": reply.nbytes(),
                    **({"shard": self.shard} if self.shard is not None else {}),
                },
            )
        return reply

    # ------------------------------------------------------------------
    def bootstrap_worker(self, worker_id: int) -> ModelMessage:
        """Admit a (possibly new) worker under the lock; reply with θ_t.

        The elastic-join handshake: the tracker records ``v_k ← M_t`` /
        ``prev(k) ← t`` (so the joiner's first staleness reads zero and
        Eq. 5 holds from its first exchange), and the reply carries the
        full dense model the worker installs before training.
        """
        with self._lock:
            self.tracker.bootstrap_worker(worker_id)
            model = self.tracker.global_model(self.theta0)
            t = self.tracker.t
            # v_k buffers may have grown; refresh the cached memory figure.
            self.state_bytes = self.tracker.server_state_bytes() + sum(
                a.nbytes for a in self.theta0.values()
            )
        return ModelMessage(worker_id, model, t, 0)

    def worker_model(self, worker_id: int) -> "Mapping[str, np.ndarray]":
        """Materialise the model worker ``k`` holds (θ_0 + v_k) — what a
        restored trainer installs on that worker's replica."""
        with self._lock:
            return self.tracker.worker_model(self.theta0, worker_id)

    def worker_update_counts(self) -> "dict[int, int]":
        """Updates each worker has contributed (drives restore fast-forward)."""
        with self._lock:
            return {w: len(v) for w, v in self.worker_staleness.items()}

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> "dict[str, object]":
        """Snapshot the full server state under one lock hold.

        Buffers are copied out contiguous (``[M, v_0, …]``, see
        :meth:`~repro.core.tracker.ModelDifferenceTracker.flat_state`) so
        the caller can serialise outside the lock; ``updates`` carries the
        per-worker handled-update counts a restoring trainer fast-forwards
        its data streams by.
        """
        with self._lock:
            return {
                "t": self.tracker.t,
                "prev": list(self.tracker.prev),
                "num_workers": self.tracker.num_workers,
                "updates": {w: len(v) for w, v in self.worker_staleness.items()},
                "buffers": [buf.copy() for buf in self.tracker.flat_state()],
            }

    def restore_state(self, state: "Mapping[str, object]") -> None:
        """Restore a :meth:`checkpoint_state` snapshot under the lock."""
        with self._lock:
            self.tracker.load_flat_state(state["buffers"])
            self.tracker.t = int(state["t"])
            self.tracker.prev = [int(x) for x in state["prev"]]
            # model-mode checkpoints carry no v_k buffers, so growth comes
            # from the prev list alone.
            self.tracker.num_workers = max(
                self.tracker.num_workers, len(self.tracker.prev)
            )
            self.state_bytes = self.tracker.server_state_bytes() + sum(
                a.nbytes for a in self.theta0.values()
            )

    # ------------------------------------------------------------------
    def raw_staleness(self) -> "dict[int, list[int]]":
        """Snapshot the raw per-worker staleness lists (lock held only for
        the copy — aggregation happens in :func:`summarize_staleness`)."""
        with self._lock:
            return {w: list(v) for w, v in self.worker_staleness.items()}

    def staleness_summary(self) -> "dict[str, object]":
        """Exact staleness percentiles from the raw observations.

        Returns ``{"p50", "p99", "per_worker"}`` where ``per_worker`` maps
        worker id → ``{"count", "mean", "p50", "p99"}``.  Percentiles are
        ``nan`` when no updates were observed (the server never handled a
        message) — the *measured but empty* case; backends that cannot
        measure staleness at all report ``None`` fields on TrainResult
        instead (see docs/execution.md).
        """
        return summarize_staleness(self.raw_staleness())

    def global_model(self) -> "OrderedDict[str, np.ndarray]":
        """Materialise θ_t = θ_0 + M_t for evaluation (thread-safe)."""
        with self._lock:
            return self.tracker.global_model(self.theta0)

    @property
    def timestamp(self) -> int:
        with self._lock:
            return self.tracker.t

    def server_state_bytes(self) -> int:
        """Server memory: M + all v_k (+ θ0 kept for evaluation).

        Cached, but no longer constant: an elastic join
        (:meth:`bootstrap_worker`) or a checkpoint restore grows the
        ``v_k`` set, so the read takes the lock like any other guarded
        state (it is a report path, not a hot path).
        """
        with self._lock:
            return self.state_bytes

    # ------------------------------------------------------------------
    def register_lock(self, registry, name: str = "ps") -> None:
        """Enroll the server lock in a lock-order :class:`LockRegistry`.

        After this call every acquisition of the server lock is nesting-
        timestamped, so a run under the registry reports order inversions
        against any other enrolled lock (shards, group leaders, channels).
        See :mod:`repro.analysis.concurrency.runtime`.
        """
        registry.attach(self, name)
