"""Two-terminal deployment demo: one server process, N worker processes.

Both sides build the *same* standard workload (synthetic blobs + MLP)
from identical flags, so the only thing crossing between terminals is the
wire protocol — start the server in one terminal, then each worker in its
own::

    # terminal 1
    python -m repro.ps serve --bind 127.0.0.1:5555 --workers 2

    # terminals 2..N+1
    python -m repro.ps worker --connect 127.0.0.1:5555 --id 0
    python -m repro.ps worker --connect 127.0.0.1:5555 --id 1

Workers may start before the server: ``SocketChannel.connect`` retries
with capped exponential backoff for ``--retry-for`` seconds.  Flags that
shape the workload (``--method``, ``--iterations``, ``--batch-size``,
``--seed``) must match on every side; the demo has no config exchange.
The programmatic equivalent — forked workers, one process tree — is
``repro.exec.train(config, backend="socket")``.
"""

from __future__ import annotations

import argparse
import sys


def _workload(args: argparse.Namespace):
    """The standard demo workload, derived only from the shared flags."""
    from ..core.methods import Hyper
    from ..data.synthetic import make_blobs
    from ..exec.common import resolve_hyper, resolve_method, resolve_schedule
    from ..nn.models.mlp import MLP

    dataset = make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.5, noise=0.8, seed=1)
    method = resolve_method(args.method)
    hyper = resolve_hyper(Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0))
    schedule = resolve_schedule(None, hyper)
    return dataset, (lambda: MLP(12, (24,), 4, seed=7)), method, hyper, schedule


def _parse_endpoint(text: str) -> "tuple[str, int]":
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {text!r}")
    return host or "127.0.0.1", int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from ..comm.service import ServerService, serve_channels
    from ..comm.socket import ShardListenerGroup, SocketListener
    from ..core.layerops import parameters_of
    from ..exec.common import build_server
    from ..metrics.evaluation import evaluate_params
    from .checkpoint import load_checkpoint, save_checkpoint
    from .membership import WorkerDirectory

    dataset, model_factory, method, hyper, schedule = _workload(args)
    eval_model = model_factory()
    server = build_server(
        method, parameters_of(eval_model), args.workers, hyper, num_shards=args.shards
    )
    if args.restore:
        header = load_checkpoint(server, args.restore)
        print(f"restored t={header['shards'][0]['t']} from {args.restore}", file=sys.stderr)
    membership = WorkerDirectory(server)

    host, port = args.bind
    if args.shard_parallel:
        # Shard s listens on port+s, each drained by its own serve loop;
        # shard 0's loop keeps the membership/accounting control plane.
        group = ShardListenerGroup(
            server.num_shards, host, port, read_timeout_s=args.evict_after
        )
        endpoints = ", ".join(f"{h}:{p}" for h, p in group.addresses)
        print(
            f"serving {method.name} shard-parallel on {endpoints} — "
            f"waiting for {args.workers} worker(s)",
            file=sys.stderr,
        )
        thread_errors: "list[BaseException]" = []

        def _serve_shard(s: int) -> None:
            try:
                serve_channels(
                    [],
                    ServerService(server),
                    stats=server.stats,
                    listener=group[s],
                    expected_closes=args.workers,
                    straggler_timeout_s=args.evict_after,
                )
            except BaseException as exc:
                thread_errors.append(exc)

        threads = [
            threading.Thread(
                target=_serve_shard, args=(s,), name=f"shard-serve-{s}", daemon=True
            )
            for s in range(1, len(group))
        ]
        try:
            for thread in threads:
                thread.start()
            report = serve_channels(
                [],
                ServerService(server, membership=membership),
                stats=server.stats,
                listener=group[0],
                expected_closes=args.workers,
                straggler_timeout_s=args.evict_after,
            )
            for thread in threads:
                thread.join()
        finally:
            group.close()
        if thread_errors:
            raise thread_errors[0]
    else:
        listener = SocketListener(host, port, read_timeout_s=args.evict_after)
        host, port = listener.address
        print(
            f"serving {method.name} on {host}:{port} — waiting for {args.workers} worker(s)",
            file=sys.stderr,
        )

        def on_update(updates: int) -> None:
            if args.checkpoint_every and updates % args.checkpoint_every == 0:
                save_checkpoint(server, args.checkpoint)

        try:
            report = serve_channels(
                [],
                ServerService(server, membership=membership),
                stats=server.stats,
                on_update=on_update if args.checkpoint_every else None,
                listener=listener,
                expected_closes=args.workers,
                straggler_timeout_s=args.evict_after,
            )
        finally:
            listener.close()
    if args.checkpoint_every:
        save_checkpoint(server, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}", file=sys.stderr)

    acc, loss = evaluate_params(
        eval_model, server.global_model(), dataset.x_val, dataset.y_val
    )
    events = membership.snapshot()
    print(
        f"done: t={server.timestamp} accuracy={acc:.3f} loss={loss:.4f} "
        f"joins={events['joins']} leaves={events['leaves']} "
        f"crashes={events['crashes']} evictions={events['evictions']}"
    )
    for err in report.errors:
        print(f"partial run: {err}", file=sys.stderr)
    return 1 if report.errors else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from ..comm.protocol import run_worker_loop
    from ..comm.socket import SocketChannel
    from ..core.layerops import parameters_of
    from ..core.partition import PartitionMap
    from ..data.loader import DataLoader
    from ..exec.common import build_worker

    dataset, model_factory, method, hyper, schedule = _workload(args)
    loader = DataLoader(dataset, args.batch_size, seed=args.seed)
    model = model_factory()
    # theta0=None: the join handshake installs the live θ_t, exactly as a
    # late joiner on any other host would receive it.
    node = build_worker(
        args.id,
        args.workers,
        model,
        loader,
        method,
        hyper,
        schedule,
        theta0=None,
    )
    host, port = args.connect
    if args.shard_parallel:
        # Mirror the server's partition from the shared model flags; shard
        # s lives on port+s per the serve side's --shard-parallel layout.
        params = parameters_of(model)
        fanout = PartitionMap(
            {k: v.shape for k, v in params.items()},
            args.shards,
            itemsize=next(iter(params.values())).itemsize,
        )
        shard_channels = [
            SocketChannel.connect(host, port + s, retry_for_s=args.retry_for)
            for s in range(fanout.num_shards)
        ]
        channel = shard_channels[0]
        print(
            f"worker {args.id} connected to {host}:{port}"
            f"..{port + fanout.num_shards - 1} ({fanout.num_shards} shards)",
            file=sys.stderr,
        )
        run_worker_loop(
            node,
            channel,
            args.iterations,
            register=True,
            shard_fanout=fanout,
            shard_channels=shard_channels,
        )
    else:
        channel = SocketChannel.connect(host, port, retry_for_s=args.retry_for)
        print(f"worker {args.id} connected to {host}:{port}", file=sys.stderr)
        run_worker_loop(node, channel, args.iterations, register=True)
    print(
        f"worker {args.id} done: {node.iteration} iterations, "
        f"final loss {node.last_loss:.4f}"
    )
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """checkpoint → restore → continue over TCP loopback, asserted bitwise.

    Dense ASGD (momentum 0: no worker-side strategy state, so the server
    checkpoint is the *whole* training state) — the restored run must
    reproduce the uninterrupted run's loss curve exactly, float for float.
    """
    from ..core.methods import Hyper
    from ..data.synthetic import make_blobs
    from ..nn.models.mlp import MLP
    from .socket import SocketTrainer

    dataset = make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.5, noise=0.8, seed=1)

    def run(iterations: int, **kwargs):
        return SocketTrainer(
            "asgd",
            lambda: MLP(12, (24,), 4, seed=7),
            dataset,
            num_workers=1,
            batch_size=16,
            iterations_per_worker=iterations,
            hyper=Hyper(lr=0.1, momentum=0.0),
            seed=args.seed,
            **kwargs,
        ).run()

    half = max(1, args.iterations // 2)
    full = run(args.iterations)
    first = run(half, checkpoint_every=half, checkpoint_path=args.checkpoint)
    resumed = run(args.iterations - half, restore_from=args.checkpoint)

    full_ys = list(full.loss_vs_step.ys)
    failures = []
    if list(first.loss_vs_step.ys) != full_ys[:half]:
        failures.append("pre-checkpoint losses diverge from the uninterrupted run")
    if list(resumed.loss_vs_step.ys) != full_ys[half:]:
        failures.append("restored continuation diverges from the uninterrupted tail")
    if resumed.final_loss != full.final_loss:
        failures.append("final loss differs after restore")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"socket checkpoint smoke ok: {half}+{args.iterations - half} iterations "
            f"== {args.iterations} uninterrupted, bitwise"
        )
    return 1 if failures else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.ps", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def shared(p: argparse.ArgumentParser) -> None:
        p.add_argument("--method", default="dgs", help="method registry name (default dgs)")
        p.add_argument("--workers", type=int, default=2, help="expected worker count")
        p.add_argument("--iterations", type=int, default=50, help="iterations per worker")
        p.add_argument("--batch-size", type=int, default=16)
        p.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser("serve", help="bind the parameter server and wait for workers")
    shared(p_serve)
    p_serve.add_argument(
        "--bind",
        type=_parse_endpoint,
        default=("127.0.0.1", 5555),
        metavar="HOST:PORT",
        help="listener endpoint (default 127.0.0.1:5555; port 0 = ephemeral)",
    )
    p_serve.add_argument("--shards", type=int, default=1, help="parameter-server shards")
    p_serve.add_argument(
        "--shard-parallel",
        action="store_true",
        help="one listener + serve loop per shard (shard s on PORT+s); "
        "requires --shards >= 2 and an explicit non-zero port",
    )
    p_serve.add_argument(
        "--evict-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict a worker silent for this long (default: wait forever)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="write a checkpoint every N applied updates (requires --checkpoint)",
    )
    p_serve.add_argument("--checkpoint", metavar="PATH", help="checkpoint file to write")
    p_serve.add_argument("--restore", metavar="PATH", help="restore server state before serving")
    p_serve.set_defaults(fn=_cmd_serve)

    p_worker = sub.add_parser("worker", help="connect one worker and train")
    shared(p_worker)
    p_worker.add_argument(
        "--connect",
        type=_parse_endpoint,
        default=("127.0.0.1", 5555),
        metavar="HOST:PORT",
        help="server endpoint (default 127.0.0.1:5555)",
    )
    p_worker.add_argument("--id", type=int, required=True, help="this worker's id (0-based)")
    p_worker.add_argument(
        "--retry-for",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="keep retrying the connect with backoff for this long (default 10)",
    )
    p_worker.add_argument(
        "--shards", type=int, default=1, help="server shard count (must match serve)"
    )
    p_worker.add_argument(
        "--shard-parallel",
        action="store_true",
        help="dial one channel per shard (shard s on PORT+s), matching a "
        "server started with --shard-parallel",
    )
    p_worker.set_defaults(fn=_cmd_worker)

    p_smoke = sub.add_parser(
        "smoke",
        help="CI gate: checkpoint → restore → continue over TCP, bitwise",
    )
    p_smoke.add_argument("--iterations", type=int, default=20, help="uninterrupted run length")
    p_smoke.add_argument("--seed", type=int, default=0)
    p_smoke.add_argument(
        "--checkpoint",
        default=".socket-smoke.ckpt",
        metavar="PATH",
        help="where the mid-run checkpoint is written (default .socket-smoke.ckpt)",
    )
    p_smoke.set_defaults(fn=_cmd_smoke)

    args = parser.parse_args(argv)
    if getattr(args, "checkpoint_every", None) and not args.checkpoint:
        parser.error("--checkpoint-every requires --checkpoint")
    if getattr(args, "shard_parallel", False):
        if args.shards < 2:
            parser.error("--shard-parallel requires --shards >= 2")
        if args.command == "serve":
            if args.bind[1] == 0:
                parser.error("--shard-parallel needs an explicit port (shard s binds PORT+s)")
            if args.checkpoint_every:
                parser.error("--shard-parallel does not support --checkpoint-every")
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
