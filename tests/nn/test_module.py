"""Module registration, state dicts, train/eval modes."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import BatchNorm1d, Linear, MLP, Module, Parameter, ReLU, Sequential


class TestRegistration:
    def test_parameters_discovered(self):
        lin = Linear(4, 3, rng=np.random.default_rng(0))
        names = [n for n, _ in lin.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_module_prefixes(self):
        model = MLP(4, (8,), 2, seed=0)
        names = [n for n, _ in model.named_parameters()]
        assert "net.0.weight" in names and "net.2.bias" in names

    def test_num_parameters(self):
        lin = Linear(4, 3, rng=np.random.default_rng(0))
        assert lin.num_parameters() == 4 * 3 + 3

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert [n for n, _ in lin.named_parameters()] == ["weight"]

    def test_modules_iterates_tree(self):
        model = Sequential(Linear(2, 2), ReLU())
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds == ["Sequential", "Linear", "ReLU"]

    def test_buffers_discovered(self):
        bn = BatchNorm1d(4)
        names = [n for n, _ in bn.named_buffers()]
        assert set(names) == {"running_mean", "running_var"}


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = MLP(4, (8,), 2, seed=0)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_roundtrip(self):
        m1 = MLP(4, (8,), 2, seed=0)
        m2 = MLP(4, (8,), 2, seed=99)
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_copies(self):
        m = MLP(4, (8,), 2, seed=0)
        state = m.state_dict()
        first = next(iter(state))
        state[first][...] = 123.0
        assert not np.allclose(dict(m.named_parameters())[first].data, 123.0)

    def test_buffers_roundtrip(self):
        bn1, bn2 = BatchNorm1d(3), BatchNorm1d(3)
        bn1(Tensor(np.random.default_rng(0).normal(size=(16, 3))))
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_array_equal(bn1._buffers["running_mean"], bn2._buffers["running_mean"])

    def test_unknown_key_raises(self):
        m = MLP(4, (8,), 2, seed=0)
        with pytest.raises(KeyError):
            m.load_state_dict({"nope": np.zeros(1)})


class TestZeroGrad:
    def test_clears_all(self):
        from repro.nn import cross_entropy

        m = MLP(4, (8,), 2, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 4)))
        cross_entropy(m(x), np.array([0, 1, 0, 1])).backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestSequential:
    def test_len_iter(self):
        s = Sequential(Linear(2, 2), ReLU(), Linear(2, 2))
        assert len(s) == 3
        assert len(list(iter(s))) == 3

    def test_forward_chains(self):
        rng = np.random.default_rng(0)
        s = Sequential(Linear(3, 3, rng=rng), ReLU())
        x = Tensor(rng.normal(size=(2, 3)))
        out = s(x)
        assert (out.data >= 0).all()
