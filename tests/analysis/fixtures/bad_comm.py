"""Deliberately bad module for COM001: ad-hoc wire framing outside repro.comm.

Never imported — parsed only.  Every construct below is a way a trainer
could grow its own wire protocol instead of going through the channel
layer; the tests assert exact finding counts against this file.
"""

import socket  # COM001
import struct  # COM001
from multiprocessing import connection  # COM001
from multiprocessing.connection import wait  # COM001
from socket import AF_INET, SOCK_STREAM  # COM001

__all__ = ["recv_raw", "send_raw", "dial"]

_HEADER = struct.Struct("<I")


def dial(host, port):
    sock = socket.socket(AF_INET, SOCK_STREAM)
    sock.connect((host, port))
    return sock


def send_raw(conn, codec, msg):
    raw = codec.encode_message(msg)  # COM001
    conn.send_bytes(_HEADER.pack(len(raw)) + raw)


def recv_raw(conn, decode_message):
    wait([conn])
    raw = conn.recv_bytes()
    return decode_message(raw[_HEADER.size :])  # COM001
