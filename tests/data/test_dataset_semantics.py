"""Dataset container semantics and generator statistics."""

import numpy as np
import pytest

from repro.data import Dataset, make_blobs, make_image_classes


class TestShardEdgeCases:
    def test_one_shard_is_identity_content(self):
        ds = make_blobs(n_samples=50, seed=0)
        s = ds.shard(1, 0)
        np.testing.assert_array_equal(s.x_train, ds.x_train)

    def test_more_shards_than_samples(self):
        ds = make_blobs(n_samples=10, num_classes=2, seed=0)  # 8 train
        shards = [ds.shard(8, i) for i in range(8)]
        assert all(s.n_train == 1 for s in shards)

    def test_shard_name_annotated(self):
        ds = make_blobs(n_samples=40, seed=0)
        assert "shard 2/4" in ds.shard(4, 2).name

    def test_uneven_shard_sizes_differ_by_at_most_one(self):
        ds = make_blobs(n_samples=103, seed=0)
        sizes = [ds.shard(4, i).n_train for i in range(4)]
        assert max(sizes) - min(sizes) <= 1


class TestGeneratorStatistics:
    def test_image_pixels_roughly_centered(self):
        ds = make_image_classes(n_samples=300, num_classes=5, size=8, seed=0)
        assert abs(ds.x_train.mean()) < 0.5
        assert 0.2 < ds.x_train.std() < 5.0

    def test_higher_difficulty_more_noise(self):
        lo = make_image_classes(n_samples=200, num_classes=5, size=8, difficulty=0.5, seed=0)
        hi = make_image_classes(n_samples=200, num_classes=5, size=8, difficulty=5.0, seed=0)
        # same templates (same seed), more additive noise → higher variance
        assert hi.x_train.std() > lo.x_train.std()

    def test_all_classes_present_in_both_splits(self):
        ds = make_image_classes(n_samples=500, num_classes=5, size=8, seed=1)
        assert set(np.unique(ds.y_train)) == set(range(5))
        assert set(np.unique(ds.y_val)) == set(range(5))

    def test_val_fraction_respected(self):
        ds = make_blobs(n_samples=200, val_fraction=0.25, seed=0)
        assert ds.n_val == 50


class TestDatasetValidation:
    def test_val_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 2)), np.zeros(4), np.zeros((2, 2)), np.zeros(3), 2)

    def test_input_shape_multi_dim(self):
        ds = make_image_classes(n_samples=50, num_classes=3, channels=2, size=4, seed=0)
        assert ds.input_shape == (2, 4, 4)
