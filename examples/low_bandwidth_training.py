#!/usr/bin/env python
"""Low-bandwidth scenario (the paper's §5.5 / Figure 5 motivation).

Distributed training over commodity 1 Gbps Ethernet — the regime the paper
targets ("mobile or wireless environments").  Dense ASGD saturates the
server link; DGS with secondary compression keeps both directions sparse
and trains several times faster in wall-clock terms.

Usage:  python examples/low_bandwidth_training.py [--fast] [--gbps 1.0]
"""

import argparse

from repro.harness import get_workload, run_distributed
from repro.metrics import ascii_plot, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--gbps", type=float, default=1.0)
    parser.add_argument("--workers", type=int, default=8)
    args = parser.parse_args()

    workload = get_workload("cifar10")
    runs = {
        "ASGD (dense both ways)": run_distributed(
            "asgd", workload, args.workers, gbps=args.gbps, fast=args.fast, seed=0
        ),
        "DGS (dual-way sparsified)": run_distributed(
            "dgs", workload, args.workers, gbps=args.gbps,
            secondary_compression=True, fast=args.fast, seed=0,
        ),
    }

    rows = []
    for name, r in runs.items():
        rows.append((
            name,
            f"{r.makespan_s / 60:.1f} min",
            f"{100 * r.final_accuracy:.2f}%",
            f"{(r.upload_bytes + r.download_bytes) / 1e6:.1f} MB",
            f"{r.uplink_utilisation:.0%}",
        ))
    print(format_table(
        ("method", "wall-clock", "top-1 acc", "bytes on wire", "server link busy"),
        rows,
        title=f"{args.workers} workers @ {args.gbps:g} Gbps (virtual time, paper-matched cluster)",
    ))
    speedup = runs["ASGD (dense both ways)"].makespan_s / runs["DGS (dual-way sparsified)"].makespan_s
    print(f"\nDGS wall-clock speedup over ASGD: {speedup:.1f}x  (paper Figure 5: 5.7x)\n")

    print(ascii_plot(
        {name.split()[0]: r.loss_vs_time for name, r in runs.items()},
        title="training loss vs wall-clock time",
        xlabel="seconds", ylabel="loss",
    ))


if __name__ == "__main__":
    main()
