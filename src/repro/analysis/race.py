"""ThreadSanitizer-lite for the HOGWILD trainer.

The static checker (:mod:`repro.analysis.locks`) proves lexical lock
discipline; this module verifies it *dynamically* under real thread
interleavings.  :func:`instrument_server` swaps a live
:class:`~repro.ps.server.ParameterServer`'s lock for a
:class:`CheckedLock` (which remembers its owning thread) and wraps the
server's mutable state in access-recording proxies.  Any attribute access
that happens (a) without the current thread holding the lock and (b) while
more than one thread is alive is recorded as a :class:`RaceViolation` —
accesses during single-threaded setup/teardown are exempt, because a race
needs a second runner.

Violations are *recorded*, not raised: the monitored run completes and the
test asserts on :attr:`RaceMonitor.violations` afterwards, so one racy
access does not mask the next.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "CheckedLock",
    "RaceMonitor",
    "RaceViolation",
    "GuardedProxy",
    "instrument_object",
    "instrument_server",
    "SERVER_GUARDED_ATTRS",
]

#: Legacy alias for :attr:`repro.ps.server.ParameterServer.__guarded_attrs__`
#: — the per-class declaration is the source of truth now (``stats`` is
#: deliberately absent there: byte accounting moved into the channel layer,
#: which records into a self-synchronising ``CompressionStats`` outside the
#: server lock by design).
SERVER_GUARDED_ATTRS = ("tracker", "staleness_meter", "worker_staleness")


class CheckedLock:
    """A ``threading.Lock`` wrapper that knows which thread holds it."""

    def __init__(self) -> None:
        self._inner = threading.Lock()
        self._owner: "int | None" = None
        self.acquisitions = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = threading.get_ident()
            self.acquisitions += 1
        return ok

    def release(self) -> None:
        self._owner = None
        self._inner.release()

    def __enter__(self) -> "CheckedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def locked(self) -> bool:
        return self._inner.locked()


@dataclass(frozen=True)
class RaceViolation:
    """One unguarded access to protected state."""

    thread: str
    attr: str
    access: str  #: dotted access path, e.g. ``staleness_meter.update``

    def format(self) -> str:
        return f"[{self.thread}] touched {self.access} without holding the lock"


class RaceMonitor:
    """Collects :class:`RaceViolation` records (thread-safe)."""

    def __init__(self) -> None:
        self.violations: "list[RaceViolation]" = []
        self._mu = threading.Lock()
        self._enabled = True

    def record(self, attr: str, access: str) -> None:
        v = RaceViolation(threading.current_thread().name, attr, access)
        with self._mu:
            self.violations.append(v)

    def pause(self) -> None:
        """Stop recording (e.g. for a known single-threaded phase)."""
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    @property
    def enabled(self) -> bool:
        return self._enabled

    def report(self) -> str:
        with self._mu:
            return "\n".join(v.format() for v in self.violations) or "<no violations>"


class GuardedProxy:
    """Wraps an object; every attribute access asserts the lock is held.

    Accesses while only one thread is alive are exempt — during
    single-threaded setup/evaluation no interleaving exists to race with.
    """

    __slots__ = ("_gp_obj", "_gp_lock", "_gp_monitor", "_gp_name")

    def __init__(self, obj: object, lock: CheckedLock, monitor: RaceMonitor, name: str) -> None:
        object.__setattr__(self, "_gp_obj", obj)
        object.__setattr__(self, "_gp_lock", lock)
        object.__setattr__(self, "_gp_monitor", monitor)
        object.__setattr__(self, "_gp_name", name)

    def _gp_check(self, access: str) -> None:
        lock: CheckedLock = object.__getattribute__(self, "_gp_lock")
        monitor: RaceMonitor = object.__getattribute__(self, "_gp_monitor")
        if (
            monitor.enabled
            and not lock.held_by_current_thread()
            and threading.active_count() > 1
        ):
            monitor.record(object.__getattribute__(self, "_gp_name"), access)

    def __getattr__(self, item: str):
        name = object.__getattribute__(self, "_gp_name")
        self._gp_check(f"{name}.{item}")
        return getattr(object.__getattribute__(self, "_gp_obj"), item)

    def __setattr__(self, item: str, value: object) -> None:
        name = object.__getattribute__(self, "_gp_name")
        self._gp_check(f"{name}.{item} = …")
        setattr(object.__getattribute__(self, "_gp_obj"), item, value)

    def __repr__(self) -> str:
        return f"GuardedProxy({object.__getattribute__(self, '_gp_obj')!r})"


def instrument_object(
    obj: object,
    attrs: "Sequence[str] | None" = None,
    monitor: "RaceMonitor | None" = None,
    name: "str | None" = None,
    registry: "object | None" = None,
    lock_attr: str = "_lock",
) -> RaceMonitor:
    """Instrument any lock-owning object for dynamic race detection.

    Replaces ``obj.<lock_attr>`` with a :class:`CheckedLock` and wraps each
    guarded attribute in a :class:`GuardedProxy`.  Guarded attributes come
    from, in priority order: the ``attrs`` argument, the class's
    ``__guarded_attrs__`` declaration (shared with the static checker —
    see :func:`repro.analysis.concurrency.guarded_attrs_of`), or nothing.

    Pass a :class:`repro.analysis.concurrency.LockRegistry` as ``registry``
    and the swapped-in lock is also enrolled for lock-order recording, so
    one instrumented run yields both race violations and order inversions::

        monitor = instrument_object(trainer.server, registry=registry)
        trainer.run()
        assert not monitor.violations, monitor.report()
        assert not registry.inversions(), registry.report()
    """
    if not hasattr(obj, lock_attr):
        raise AttributeError(
            f"{type(obj).__name__} has no {lock_attr!r}; not a lock-owning object"
        )
    monitor = monitor if monitor is not None else RaceMonitor()
    label = name if name is not None else type(obj).__name__
    if registry is not None:
        lock = registry.attach(obj, label, lock_attr=lock_attr)
    else:
        lock = CheckedLock()
        setattr(obj, lock_attr, lock)
    if attrs is not None:
        selected: Iterable[str] = attrs
    else:
        from .concurrency.registry import guarded_attrs_of

        declared = guarded_attrs_of(type(obj))
        selected = [a for a in (declared or ()) if hasattr(obj, a)]
    for a in selected:
        setattr(obj, a, GuardedProxy(getattr(obj, a), lock, monitor, a))
    return monitor


def instrument_server(
    server: object,
    attrs: "Sequence[str] | None" = None,
    monitor: "RaceMonitor | None" = None,
) -> RaceMonitor:
    """Instrument a live parameter server, in place.

    Thin wrapper over :func:`instrument_object` kept for the existing race
    harness; falls back to :data:`SERVER_GUARDED_ATTRS` when the server's
    class carries no ``__guarded_attrs__`` declaration.
    """
    if attrs is None and getattr(type(server), "__guarded_attrs__", None) is None:
        attrs = [a for a in SERVER_GUARDED_ATTRS if hasattr(server, a)]
    return instrument_object(server, attrs=attrs, monitor=monitor)
