"""Table 3 — CIFAR-10 scaling sweep, 1→32 workers."""

from repro.harness.experiments import table3_scaling
from repro.harness.config import is_fast_mode


def test_table3_scaling(run_experiment):
    report = run_experiment(table3_scaling, "table3_scaling", seeds=(0, 1))
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only

    def acc(workers, method):
        for row in report.rows:
            if row[0] == workers and row[2] == method:
                return float(row[3].rstrip("%"))
        raise KeyError((workers, method))

    max_workers = max(r[0] for r in report.rows if r[2] != "MSGD")
    # Shape (paper): at the largest scale ASGD has degraded the most; DGS
    # stays closest to the sparsified pack.
    assert acc(max_workers, "ASGD") <= acc(max_workers, "DGS") + 0.5
    assert acc(max_workers, "ASGD") <= acc(max_workers, "DGC-async") + 0.5
