"""Model evaluation on held-out data."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.layerops import assign_parameters
from ..nn.loss import accuracy, cross_entropy
from ..nn.module import Module

__all__ = ["evaluate_model", "evaluate_params"]


def evaluate_model(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 512
) -> tuple[float, float]:
    """Return (top-1 accuracy, mean loss) of ``model`` on (x, y)."""
    was_training = model.training
    model.eval()
    correct = 0
    loss_total = 0.0
    with no_grad():
        for start in range(0, len(x), batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            logits = model(Tensor(xb))
            correct += int(round(accuracy(logits, yb) * len(xb)))
            loss_total += float(cross_entropy(logits, yb).data) * len(xb)
    if was_training:
        model.train()
    return correct / len(x), loss_total / len(x)


def evaluate_params(
    model: Module,
    params: Mapping[str, np.ndarray],
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 512,
) -> tuple[float, float]:
    """Evaluate a parameter snapshot using ``model`` as scratch space.

    The model's current parameters are restored afterwards, so the caller's
    replica is untouched.
    """
    saved = {name: p.data.copy() for name, p in model.named_parameters()}
    try:
        assign_parameters(model, params)
        return evaluate_model(model, x, y, batch_size=batch_size)
    finally:
        assign_parameters(model, saved)
