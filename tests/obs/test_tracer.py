"""Span tracer: nesting, thread-safety, clocks, ambient management."""

import json
import threading

import pytest

from repro.obs import (
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
    validate_records,
)


class FakeClock:
    """Deterministic monotonic clock for span tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestSpanBasics:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", cat="test"):
            pass
        (rec,) = tracer.records()
        assert rec["name"] == "outer"
        assert rec["cat"] == "test"
        assert rec["ts"] == 1.0 and rec["dur"] == 1.0
        assert rec["domain"] == "wall"

    def test_nested_spans_are_well_nested(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r["name"]: r for r in tracer.records()}
        outer, inner = by_name["outer"], by_name["inner"]
        # outer: [1, 4], inner: [2, 3] — strictly contained
        assert outer["ts"] < inner["ts"]
        assert inner["ts"] + inner["dur"] < outer["ts"] + outer["dur"]

    def test_args_and_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", worker=3) as sp:
            sp.set(up_bytes=100)
        (rec,) = tracer.records()
        assert rec["args"] == {"worker": 3, "up_bytes": 100}

    def test_add_span_virtual_domain(self):
        tracer = Tracer()
        tracer.add_span("sim", 1.5, 2.5, tid="worker-0", cat="net", args={"up_bytes": 7})
        (rec,) = tracer.records()
        assert rec["domain"] == "virtual"
        assert rec["ts"] == 1.5 and rec["dur"] == 1.0
        assert rec["tid"] == "worker-0"

    def test_records_are_schema_valid(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.add_span("b", 0.0, 1.0, tid="lane")
        assert validate_records(tracer.records()) == []

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.records() == []


class TestThreadSafety:
    def test_two_threads_disjoint_well_nested(self):
        """Concurrent tracing threads produce disjoint, well-nested spans."""
        tracer = Tracer()
        barrier = threading.Barrier(2)
        depth = 5

        def work():
            barrier.wait()
            for _ in range(20):
                with tracer.span("L0"):
                    with tracer.span("L1"):
                        with tracer.span("L2"):
                            pass

        threads = [threading.Thread(target=work, name=f"tracee-{i}") for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        records = tracer.records()
        assert len(records) == 2 * 20 * 3
        tids = {r["tid"] for r in records}
        assert tids == {"tracee-0", "tracee-1"}
        # per-thread: spans nest by interval containment, never interleave
        for tid in tids:
            lane = sorted((r for r in records if r["tid"] == tid), key=lambda r: r["ts"])
            stack = []
            for r in lane:
                start, end = r["ts"], r["ts"] + r["dur"]
                while stack and stack[-1] <= start:
                    stack.pop()
                for open_end in stack:
                    assert end <= open_end + 1e-9, "span crosses an enclosing span boundary"
                assert len(stack) < depth
                stack.append(end)

    def test_buffers_merge_sorted(self):
        tracer = Tracer()

        def work(offset):
            tracer.add_span("x", offset, offset + 0.5, tid=f"lane-{offset}")

        threads = [threading.Thread(target=work, args=(float(i),)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ts = [r["ts"] for r in tracer.records()]
        assert ts == sorted(ts)


class TestAmbientTracer:
    def test_default_is_null(self):
        assert isinstance(current_tracer(), (NullTracer, Tracer))

    def test_use_tracer_scopes_and_restores(self):
        before = current_tracer()
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_set_tracer_none_installs_null(self):
        previous = set_tracer(None)
        try:
            assert isinstance(current_tracer(), NullTracer)
        finally:
            set_tracer(previous)

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("anything", cat="x") as sp:
            sp.set(a=1)
        null.add_span("b", 0.0, 1.0)
        assert null.records() == []

    def test_null_span_is_shared_singleton(self):
        """The disabled fast path allocates nothing per call."""
        null = NullTracer()
        assert null.span("a") is null.span("b")


class TestDump:
    def test_dump_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(meta={"method": "dgs"})
        with tracer.span("a", cat="worker"):
            pass
        path = tmp_path / "run.jsonl"
        n = tracer.dump_jsonl(path, meta={"seed": 3}, metrics=[{"type": "metric", "kind": "counter", "name": "c", "labels": {}, "value": 1.0}])
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert n == len(lines) == 3
        assert lines[0]["type"] == "meta"
        assert lines[0]["method"] == "dgs" and lines[0]["seed"] == 3
        assert lines[1]["type"] == "span"
        assert lines[2]["type"] == "metric"
        assert validate_records(lines) == []


def test_custom_clock_injection():
    times = iter([10.0, 12.5])
    tracer = Tracer(clock=lambda: next(times))
    with tracer.span("timed"):
        pass
    (rec,) = tracer.records()
    assert rec["ts"] == 10.0
    assert rec["dur"] == pytest.approx(2.5)
