"""Batch iteration and per-worker sharding."""

import numpy as np
import pytest

from repro.data import BatchIterator, DataLoader, make_blobs


class TestBatchIterator:
    def test_batch_shapes(self):
        x, y = np.arange(100).reshape(50, 2).astype(float), np.arange(50)
        it = BatchIterator(x, y, batch_size=8, seed=0)
        xb, yb = it.next_batch()
        assert xb.shape == (8, 2) and yb.shape == (8,)

    def test_epoch_counter(self):
        x, y = np.zeros((20, 1)), np.zeros(20)
        it = BatchIterator(x, y, batch_size=5, seed=0)
        for _ in range(4):
            it.next_batch()
        assert it.epoch == 0
        it.next_batch()
        assert it.epoch == 1

    def test_epoch_covers_all_samples(self):
        x = np.arange(24, dtype=float).reshape(24, 1)
        it = BatchIterator(x, np.zeros(24), batch_size=6, seed=0)
        seen = np.concatenate([it.next_batch()[0].reshape(-1) for _ in range(4)])
        assert set(seen) == set(range(24))

    def test_reshuffles_between_epochs(self):
        x = np.arange(32, dtype=float).reshape(32, 1)
        it = BatchIterator(x, np.zeros(32), batch_size=32, seed=0)
        first = it.next_batch()[0].copy()
        second = it.next_batch()[0].copy()
        assert not np.array_equal(first, second)
        assert set(first.reshape(-1)) == set(second.reshape(-1))

    def test_batch_larger_than_data_clamped(self):
        it = BatchIterator(np.zeros((4, 1)), np.zeros(4), batch_size=100, seed=0)
        xb, _ = it.next_batch()
        assert len(xb) == 4

    def test_drop_last_false_yields_tail(self):
        it = BatchIterator(np.zeros((10, 1)), np.zeros(10), batch_size=4, seed=0, drop_last=False)
        sizes = [len(it.next_batch()[0]) for _ in range(3)]
        assert sorted(sizes) == [2, 4, 4]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((4, 1)), np.zeros(4), batch_size=0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((4, 1)), np.zeros(5), batch_size=2)

    def test_iter_protocol(self):
        it = BatchIterator(np.zeros((8, 1)), np.zeros(8), batch_size=2, seed=0)
        stream = iter(it)
        xb, yb = next(stream)
        assert len(xb) == 2

    def test_batches_per_epoch(self):
        it = BatchIterator(np.zeros((10, 1)), np.zeros(10), batch_size=3, seed=0)
        assert it.batches_per_epoch == 3
        it2 = BatchIterator(np.zeros((10, 1)), np.zeros(10), batch_size=3, seed=0, drop_last=False)
        assert it2.batches_per_epoch == 4


class TestDataLoader:
    def test_worker_iterators_disjoint(self):
        ds = make_blobs(n_samples=100, seed=0)
        loader = DataLoader(ds, batch_size=4, seed=0)
        its = [loader.worker_iterator(w, 4) for w in range(4)]
        sizes = [len(it.x) for it in its]
        assert sum(sizes) == ds.n_train

    def test_worker_seeds_differ(self):
        ds = make_blobs(n_samples=100, seed=0)
        loader = DataLoader(ds, batch_size=4, seed=0)
        a = loader.worker_iterator(0, 2).next_batch()[0]
        b = loader.worker_iterator(1, 2).next_batch()[0]
        assert not np.array_equal(a, b)

    def test_full_iterator_uses_everything(self):
        ds = make_blobs(n_samples=60, seed=0)
        loader = DataLoader(ds, batch_size=10, seed=0)
        assert len(loader.full_iterator().x) == ds.n_train

    def test_val_batches_cover_split(self):
        ds = make_blobs(n_samples=100, seed=0)
        loader = DataLoader(ds, batch_size=8, seed=0)
        total = sum(len(x) for x, _ in loader.val_batches(batch_size=7))
        assert total == ds.n_val
