"""§5.4 ablation — DGS momentum sweep at high worker count."""

from repro.harness.experiments import ablation_momentum
from repro.harness.config import is_fast_mode


def test_ablation_momentum(run_experiment):
    report = run_experiment(ablation_momentum, "ablation_momentum", seeds=(0,))
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    accs = {float(r[0]): float(r[1].split("%")[0]) for r in report.rows}
    # Shape (paper §5.4): lower momentum beats 0.7 at high worker counts.
    best_low = max(v for m, v in accs.items() if m <= 0.45)
    assert best_low >= accs[0.7] - 0.5
