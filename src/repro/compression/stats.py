"""Communication-volume accounting used by every trainer and benchmark."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["CompressionStats"]


@dataclass
class CompressionStats:
    """Tracks actual vs dense-equivalent bytes for both directions.

    Recording is internally synchronised: the channel layer shares one
    sink across all of a trainer's channels, and in the threaded backend
    those channels record from concurrent worker threads.
    """

    upload_bytes: int = 0
    download_bytes: int = 0
    upload_dense_bytes: int = 0
    download_dense_bytes: int = 0
    upload_messages: int = 0
    download_messages: int = 0
    _mu: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_upload(self, actual: int, dense_equiv: int) -> None:
        if actual < 0 or dense_equiv < 0:
            raise ValueError("byte counts must be non-negative")
        with self._mu:
            self.upload_bytes += actual
            self.upload_dense_bytes += dense_equiv
            self.upload_messages += 1

    def record_download(self, actual: int, dense_equiv: int) -> None:
        if actual < 0 or dense_equiv < 0:
            raise ValueError("byte counts must be non-negative")
        with self._mu:
            self.download_bytes += actual
            self.download_dense_bytes += dense_equiv
            self.download_messages += 1

    @property
    def total_bytes(self) -> int:
        return self.upload_bytes + self.download_bytes

    @property
    def upload_ratio(self) -> float:
        """Compression ratio achieved upstream (dense / actual)."""
        return self.upload_dense_bytes / self.upload_bytes if self.upload_bytes else 1.0

    @property
    def download_ratio(self) -> float:
        return self.download_dense_bytes / self.download_bytes if self.download_bytes else 1.0

    @property
    def overall_ratio(self) -> float:
        dense = self.upload_dense_bytes + self.download_dense_bytes
        return dense / self.total_bytes if self.total_bytes else 1.0

    def merge(self, other: "CompressionStats") -> None:
        with self._mu:
            self.upload_bytes += other.upload_bytes
            self.download_bytes += other.download_bytes
            self.upload_dense_bytes += other.upload_dense_bytes
            self.download_dense_bytes += other.download_dense_bytes
            self.upload_messages += other.upload_messages
            self.download_messages += other.download_messages
