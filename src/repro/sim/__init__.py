"""Event-driven cluster simulator (virtual clock + network model)."""

from .analysis import PerfPrediction, predict
from .cluster import ClusterConfig, ComputeModel
from .engine import SimResult, SimulatedTrainer
from .network import GBPS, MBPS, LinkModel, SharedLink
from .sync import SyncResult, SynchronousTrainer

__all__ = [
    "predict",
    "PerfPrediction",
    "SynchronousTrainer",
    "SyncResult",
    "LinkModel",
    "SharedLink",
    "GBPS",
    "MBPS",
    "ClusterConfig",
    "ComputeModel",
    "SimulatedTrainer",
    "SimResult",
]
