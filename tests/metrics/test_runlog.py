"""Structured run logging."""

import json

import numpy as np
import pytest

from repro.metrics.runlog import RunLogger, load_runlog


class TestRunLogger:
    def test_in_memory_records(self):
        log = RunLogger()
        log.log_step(1, 0.5)
        log.log_step(2, 0.4, time_s=1.5, worker=0, staleness=3)
        assert len(log.steps()) == 2
        assert log.steps()[1]["staleness"] == 3

    def test_meta_record(self):
        log = RunLogger(meta={"method": "dgs", "workers": 4})
        assert log.records[0] == {"type": "meta", "method": "dgs", "workers": 4}
        assert log.steps() == []

    def test_curve_extraction(self):
        log = RunLogger()
        for i, loss in enumerate([3.0, 2.0, 1.0], start=1):
            log.log_step(i, loss, time_s=0.5 * i)
        c = log.curve("loss", "step")
        assert c.ys == [3.0, 2.0, 1.0]
        ct = log.curve("loss", "time_s")
        assert ct.xs == [0.5, 1.0, 1.5]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLogger(path, meta={"seed": 1}) as log:
            log.log_step(1, 0.9)
            log.log_step(2, 0.8)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 3
        assert json.loads(lines[0])["type"] == "meta"

        loaded = load_runlog(path)
        assert len(loaded.steps()) == 2
        assert loaded.curve().ys == [0.9, 0.8]

    def test_extra_fields(self):
        log = RunLogger()
        log.log_step(1, 0.5, up_bytes=100)
        assert log.steps()[0]["up_bytes"] == 100

    def test_flush_on_write(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLogger(path)
        log.log_step(1, 0.5)
        # record is on disk before close — a crashed run leaves a readable log
        assert json.loads(path.read_text().splitlines()[0])["step"] == 1
        log.close()
        log.close()  # idempotent


class TestTrainerIntegration:
    def test_simulated_trainer_logs(self, tiny_dataset, tiny_model_factory, tmp_path):
        from repro.core import Hyper
        from repro.sim import ClusterConfig, SimulatedTrainer

        path = tmp_path / "train.jsonl"
        with RunLogger(path, meta={"method": "dgs"}) as logger:
            SimulatedTrainer(
                "dgs", tiny_model_factory, tiny_dataset,
                ClusterConfig.with_bandwidth(2, 10, compute_mean_s=0.02),
                batch_size=16, total_iterations=30,
                hyper=Hyper(ratio=0.1, min_sparse_size=0), logger=logger, seed=0,
            ).run()
        loaded = load_runlog(path)
        steps = loaded.steps()
        assert len(steps) == 30
        assert {"step", "loss", "time_s", "worker", "staleness", "up_bytes"} <= set(steps[0])
        times = [s["time_s"] for s in steps]
        assert times == sorted(times)
