"""Top-k magnitude sparsification — the paper's primary selection rule.

"worker k calculates the threshold for sparsification, which we chose here
as Top 1%" (§4.1): per layer, keep the R% entries of largest absolute
value.  Implemented with ``np.argpartition`` (O(n), not a full sort).

Two call styles:

* the reference kernels (``topk_mask`` / ``topk_threshold`` with
  ``workspace=None``) allocate per call — simple, and the baseline the
  parity tests compare against;
* the hot path passes a :class:`~repro.compression.workspace.KernelWorkspace`
  to reuse the ``|u|`` magnitude and mask scratch across iterations, and
  uses :func:`topk_select` to produce the wire ``SparseTensor`` directly
  from the ``argpartition`` output — no boolean mask, no ``flatnonzero``
  scan over the full layer.  Selection is bitwise-identical either way
  (same ``argpartition`` over the same magnitudes).
"""

from __future__ import annotations

import math

import numpy as np

from .base import Sparsifier
from .coding import SparseTensor, encode_indices
from .workspace import KernelWorkspace

__all__ = ["TopKSparsifier", "topk_mask", "topk_select", "topk_threshold"]


def _k_for_ratio(n: int, ratio: float) -> int:
    """Number of entries kept for a send ratio in (0, 1]; at least 1."""
    return max(1, min(n, math.ceil(n * ratio)))


def _magnitudes(flat: np.ndarray, workspace: "KernelWorkspace | None") -> np.ndarray:
    """``|flat|``, into reusable scratch when a workspace is supplied."""
    if workspace is None:
        return np.abs(flat)
    return np.abs(flat, out=workspace.scratch("topk.abs", flat.size, flat.dtype))


def topk_mask(
    arr: np.ndarray, ratio: float, workspace: "KernelWorkspace | None" = None
) -> np.ndarray:
    """Boolean mask of the ⌈ratio·n⌉ largest-|value| entries of ``arr``.

    With a workspace, the returned mask aliases workspace memory: it is
    valid until the next kernel call on that workspace (consume it before
    selecting the next layer).
    """
    flat = arr.reshape(-1)
    n = flat.size
    k = _k_for_ratio(n, ratio)
    if k >= n:
        return np.ones(arr.shape, dtype=bool)
    mag = _magnitudes(flat, workspace)
    if workspace is None:
        mask = np.zeros(n, dtype=bool)
    else:
        mask = workspace.scratch("topk.mask", n, bool)
        mask[:] = False
    idx = np.argpartition(mag, n - k)[n - k :]
    mask[idx] = True
    return mask.reshape(arr.shape)


def topk_select(
    arr: np.ndarray, ratio: float, workspace: "KernelWorkspace | None" = None
) -> SparseTensor:
    """Fused select-and-extract: the top-⌈ratio·n⌉ entries as a ``SparseTensor``.

    Equivalent to ``encode_mask(arr, topk_mask(arr, ratio))`` — same
    selected set (one ``argpartition`` call on the same magnitudes), same
    ascending index order, same float32 wire values — without ever
    materialising the boolean mask or scanning the layer for nonzeros.
    The returned tensor owns freshly allocated indices/values (never
    workspace aliases), so it may outlive the workspace.
    """
    flat = arr.reshape(-1)
    n = flat.size
    k = _k_for_ratio(n, ratio)
    if k >= n:
        return encode_indices(
            arr, np.arange(n, dtype=np.intp), workspace=workspace, assume_sorted=True
        )
    mag = _magnitudes(flat, workspace)
    sel = np.argpartition(mag, n - k)[n - k :]
    sel.sort()  # flatnonzero yields ascending indices; match it exactly
    return encode_indices(arr, sel, workspace=workspace, assume_sorted=True)


def topk_threshold(
    arr: np.ndarray, ratio: float, workspace: "KernelWorkspace | None" = None
) -> float:
    """The magnitude threshold ``thr`` such that |arr| > thr keeps ≈ top R%.

    This is the ``thr ← R% of |u[j]|`` of Algorithms 1–3.  Exposed for tests
    and for threshold-based variants; :func:`topk_mask` is what the
    production path uses (exact k, robust to ties).
    """
    flat = arr.reshape(-1)
    k = _k_for_ratio(flat.size, ratio)
    if k >= flat.size:
        return -np.inf
    if workspace is None:
        mag = np.abs(flat)
        return float(np.partition(mag, flat.size - k)[flat.size - k])
    # The magnitude scratch is ours to destroy: partition it in place
    # instead of letting np.partition copy it first.
    mag = _magnitudes(flat, workspace)
    mag.partition(flat.size - k)
    return float(mag[flat.size - k])


class TopKSparsifier(Sparsifier):
    """Keep the top ``ratio`` fraction of entries by magnitude, per layer.

    ``ratio = R / 100`` in the paper's notation; the paper's headline setting
    is R = 1 (99% sparsity).

    ``min_sparse_size``: layers smaller than this are sent dense.  Production
    top-k systems (DGC's reference implementation among them) exempt tiny
    tensors — BatchNorm scales/biases — because a per-layer top-k over a
    handful of elements starves most of them and destabilises training while
    saving almost no bandwidth.
    """

    def __init__(self, ratio: float, min_sparse_size: int = 256) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if min_sparse_size < 0:
            raise ValueError("min_sparse_size must be non-negative")
        self.ratio = ratio
        self.min_sparse_size = min_sparse_size

    def mask(self, arr: np.ndarray) -> np.ndarray:
        if arr.size < self.min_sparse_size:
            return np.ones(arr.shape, dtype=bool)
        return topk_mask(arr, self.ratio)

    def select(
        self, arr: np.ndarray, workspace: "KernelWorkspace | None" = None
    ) -> SparseTensor:
        """Fused mask+encode (see :meth:`Sparsifier.select`): tiny layers
        come back fully selected, exactly like the all-ones mask path."""
        ratio = 1.0 if arr.size < self.min_sparse_size else self.ratio
        return topk_select(arr, ratio, workspace=workspace)

    def __repr__(self) -> str:
        return f"TopKSparsifier(ratio={self.ratio}, min_sparse_size={self.min_sparse_size})"
