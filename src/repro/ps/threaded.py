"""Real-thread asynchronous trainer.

Each worker runs in its own OS thread against a lock-protected
:class:`ParameterServer` — the genuine HOGWILD-style asynchrony of the
paper's testbed (workers exchange at their own pace; interleavings are
non-deterministic).  Used by integration tests and the quickstart; the
wall-clock experiments use ``repro.sim`` where time is modelled instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from ..core.layerops import assign_parameters, parameters_of
from ..core.methods import Hyper, MethodSpec, get_method
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_params
from ..nn.module import Module
from ..obs.tracer import NullTracer, Tracer, current_tracer
from ..optim.schedules import ConstantLR, Schedule
from .server import ParameterServer
from .worker import WorkerNode

__all__ = ["ThreadedTrainer", "ThreadedResult"]


@dataclass
class ThreadedResult:
    """Outcome of a threaded training run."""

    final_accuracy: float
    final_loss: float
    loss_curve: Curve
    server_timestamp: int
    mean_staleness: float
    upload_bytes: int
    download_bytes: int
    errors: list[BaseException] = field(default_factory=list)


class ThreadedTrainer:
    """Runs ``num_workers`` threads of asynchronous training to completion."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        iterations_per_worker: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        seed: int = 0,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        self.method = get_method(method) if isinstance(method, str) else method
        if not self.method.distributed:
            raise ValueError(f"method {self.method.name!r} is single-node; use LocalTrainer")
        self.hyper = hyper if hyper is not None else Hyper()
        self.schedule = schedule if schedule is not None else ConstantLR(self.hyper.lr)
        self.dataset = dataset
        self.num_workers = num_workers
        self.iterations_per_worker = iterations_per_worker

        loader = DataLoader(dataset, batch_size, seed=seed)
        self.eval_model = model_factory()
        theta0 = parameters_of(self.eval_model)
        shapes = {name: arr.shape for name, arr in theta0.items()}

        use_secondary = (
            self.method.secondary_default if secondary_compression is None else secondary_compression
        )
        secondary = (
            self.hyper.secondary_ratio
            if (self.method.downstream == "difference" and use_secondary)
            else None
        )
        self.server = ParameterServer(
            theta0,
            num_workers,
            downstream=self.method.downstream,
            secondary_ratio=secondary,
            secondary_min_sparse_size=self.hyper.min_sparse_size,
        )
        self.workers: list[WorkerNode] = []
        for w in range(num_workers):
            model = model_factory()
            # All replicas start from the same θ0.
            assign_parameters(model, theta0)
            self.workers.append(
                WorkerNode(
                    w,
                    model,
                    loader.worker_iterator(w, num_workers),
                    self.method.make_strategy(shapes, self.hyper),
                    schedule=self.schedule,
                )
            )

        self._loss_lock = threading.Lock()
        self.loss_curve = Curve("loss_vs_server_step")
        self._errors: list[BaseException] = []
        #: explicit tracer; None ⇒ the ambient repro.obs tracer at run time
        self.tracer = tracer

    # ------------------------------------------------------------------
    def _worker_loop(self, node: WorkerNode) -> None:
        # Each OS thread emits into its own Tracer buffer (lock-free);
        # buffers are merged after join() via Tracer.records().
        tracer = self.tracer if self.tracer is not None else current_tracer()
        try:
            for i in range(self.iterations_per_worker):
                with tracer.span(
                    "worker.step", cat="worker", worker=node.worker_id, iteration=i
                ):
                    with tracer.span("worker.compute", cat="worker", worker=node.worker_id):
                        msg = node.compute_step()
                    reply = self.server.handle(msg)
                    with tracer.span("worker.apply", cat="worker", worker=node.worker_id):
                        node.apply_reply(reply)
                with self._loss_lock:
                    # Server timestamps are unique but arrive out of order
                    # across threads; record against a local monotone index.
                    step = len(self.loss_curve) + 1
                    self.loss_curve.add(step, node.last_loss)
        except BaseException as exc:  # surface worker crashes to the caller
            self._errors.append(exc)

    def run(self) -> ThreadedResult:
        threads = [
            threading.Thread(target=self._worker_loop, args=(node,), name=f"worker-{node.worker_id}")
            for node in self.workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self._errors:
            raise RuntimeError(f"{len(self._errors)} worker(s) failed") from self._errors[0]

        global_params = self.server.global_model()
        # Borrow worker 0's replica for evaluation: its BatchNorm running
        # statistics reflect actual training data.
        acc, loss = evaluate_params(
            self.workers[0].model, global_params, self.dataset.x_val, self.dataset.y_val
        )
        return ThreadedResult(
            final_accuracy=acc,
            final_loss=loss,
            loss_curve=self.loss_curve,
            server_timestamp=self.server.timestamp,
            mean_staleness=self.server.staleness_meter.avg,
            upload_bytes=self.server.stats.upload_bytes,
            download_bytes=self.server.stats.download_bytes,
        )
