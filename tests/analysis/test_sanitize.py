"""Numeric sanitizer tests: fault detection, record mode, clean restore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import NumericFault, Sanitizer, sanitize, sanitizer_selfcheck
from repro.autograd.tensor import Tensor
from repro.compression.coding import SparseTensor
from repro.compression.topk import TopKSparsifier
from repro.nn.module import Parameter
from repro.optim.sgd import SGD

BAD = np.array([1.0, np.nan, 3.0], dtype=np.float64)


class TestFaultDetection:
    def test_autograd_nan_raises_at_the_op(self):
        with sanitize():
            t = Tensor(BAD.copy(), requires_grad=True)
            with pytest.raises(NumericFault) as exc:
                t * 2.0
        assert exc.value.kind == "non-finite"
        assert "NaN" in str(exc.value)

    def test_optimizer_step_checks_updated_params(self):
        p = Parameter(np.ones(3, dtype=np.float64))
        p.grad = BAD.copy()
        with sanitize():
            with pytest.raises(NumericFault) as exc:
                SGD([p], lr=0.1).step()
        assert exc.value.op == "SGD.step"

    def test_sparsifier_mask_checks_input(self):
        with sanitize():
            with pytest.raises(NumericFault) as exc:
                TopKSparsifier(0.5).mask(BAD)
        assert exc.value.op == "TopKSparsifier.mask"

    def test_codec_to_dense_checks_output(self):
        codec = SparseTensor(np.array([1], dtype=np.int64), np.array([np.inf]), (3,))
        with sanitize():
            with pytest.raises(NumericFault) as exc:
                codec.to_dense()
        assert exc.value.op == "SparseTensor.to_dense"
        assert "Inf" in str(exc.value)

    def test_dtype_drift_detected_against_pinned_dtype(self):
        with sanitize(expected_dtype=np.float64, on_fault="record") as s:
            s.check_array(np.ones(4, dtype=np.float32), "test.creep")
        assert [f.kind for f in s.faults] == ["dtype-drift"]
        assert "float32" in s.faults[0].detail

    def test_integer_arrays_are_ignored(self):
        with sanitize(expected_dtype=np.float64, on_fault="record") as s:
            s.check_array(np.arange(4, dtype=np.int64), "test.indices")
        assert s.faults == []


class TestRecordMode:
    def test_faults_accumulate_without_raising(self):
        with sanitize(on_fault="record") as s:
            t = Tensor(BAD.copy(), requires_grad=True)
            t * 2.0
            t + t
        assert len(s.faults) >= 2
        assert all(f.kind == "non-finite" for f in s.faults)

    def test_invalid_on_fault_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(on_fault="explode")


class TestPatchLifecycle:
    def test_hooks_removed_on_exit(self):
        make_before = Tensor.__dict__["_make"]
        step_before = SGD.__dict__["step"]
        with sanitize():
            assert Tensor.__dict__["_make"] is not make_before
            assert SGD.__dict__["step"] is not step_before
        assert Tensor.__dict__["_make"] is make_before
        assert SGD.__dict__["step"] is step_before
        # and a NaN op no longer raises after exit
        Tensor(BAD.copy()) * 2.0

    def test_hooks_removed_even_when_fault_raises(self):
        make_before = Tensor.__dict__["_make"]
        with pytest.raises(NumericFault):
            with sanitize():
                Tensor(BAD.copy(), requires_grad=True) * 2.0
        assert Tensor.__dict__["_make"] is make_before

    def test_context_is_not_reentrant(self):
        s = sanitize()
        with s:
            with pytest.raises(RuntimeError):
                s.__enter__()

    def test_clean_training_numerics_pass(self):
        with sanitize():
            a = Tensor(np.ones((4, 3), dtype=np.float64), requires_grad=True)
            loss = (a * 0.5).sum()
            loss.backward()
            assert np.isfinite(a.grad).all()


def test_selfcheck_is_healthy():
    assert sanitizer_selfcheck() == []
