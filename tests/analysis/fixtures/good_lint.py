"""Clean twin of ``bad_lint.py`` — zero findings expected.

Demonstrates the compliant idioms: passed-in Generator, None default,
typed allocation, explicit exception, complete ``__all__``, and one
deliberate ``# repro: noqa`` suppression.
"""

import numpy as np

__all__ = ["draw", "touch"]


def draw(rng: np.random.Generator, n=None):
    n = 4 if n is None else n
    try:
        return np.zeros(n, dtype=np.float64) + rng.standard_normal(n)
    except ValueError:
        return None


def touch(t):
    t.data += 1.0  # repro: noqa TEN001 — fixture-blessed mutation
    return t
