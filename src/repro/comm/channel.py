"""The ``Channel`` contract and the in-process implementation.

A channel is one worker's duplex connection to the parameter server.  The
worker side is three calls — :meth:`~Channel.send`, :meth:`~Channel.recv`,
:meth:`~Channel.close` — and the server side is a *service*: a callable
``GradientFrame -> DiffFrame | ModelFrame``.  Every backend supplies its
own transport (same-thread dispatch, OS pipes, virtual links) but they all
speak :mod:`repro.comm.frames` and account bytes identically:

* the **server-side** endpoint of a channel records analytic payload bytes
  (``frame.nbytes()`` / ``frame.dense_nbytes()``) into one
  :class:`~repro.compression.stats.CompressionStats` sink — the numbers
  ``TrainResult`` reports on every backend;
* channels emit ``comm.send`` / ``comm.recv`` obs spans (when a tracer is
  live) so traces show the wire on every substrate.

:class:`InProcChannel` is the threaded backend's channel: ``send()``
dispatches to the service synchronously on the calling thread, preserving
the genuine HOGWILD contention on the server lock.  Its *wire-fidelity*
mode round-trips every frame through the real byte codec, so fast
in-process tests exercise the exact byte path (float32 values and all)
that the process backend ships over OS pipes.
"""

from __future__ import annotations

from typing import Protocol

from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .frames import (
    CloseFrame,
    ControlFrame,
    Frame,
    GradientFrame,
    TelemetryFrame,
    decode_frame,
    encode_frame,
)
from .service import ServerService  # the server side lives in comm.service now

__all__ = ["Channel", "ChannelClosed", "ServerService", "InProcChannel"]


class ChannelClosed(RuntimeError):
    """Raised when using a channel after it was closed."""


class Channel(Protocol):
    """Worker-side endpoint: the transport every protocol loop drives."""

    def send(self, frame: Frame) -> None:
        """Ship one frame toward the server."""

    def recv(self) -> Frame:
        """Block until the server's next frame arrives."""

    def close(self) -> None:
        """Release the transport; no further send/recv."""


class InProcChannel:
    """Same-process channel: ``send`` dispatches to the service in place.

    The channel owns the byte accounting (``stats``) and, in wire-fidelity
    mode, round-trips both directions through the frame codec so the
    service sees exactly what a remote peer would have decoded.
    """

    def __init__(
        self,
        service: ServerService,
        worker_id: int,
        stats: "CompressionStats | None" = None,
        wire_fidelity: bool = False,
        tracer: "object | None" = None,
    ) -> None:
        self.service = service
        self.worker_id = worker_id
        self.stats = stats
        self.wire_fidelity = wire_fidelity
        #: explicit tracer; None ⇒ the ambient repro.obs tracer at call time
        self.tracer = tracer
        #: the worker's final close frame (accounting source for trainers)
        self.close_frame: "CloseFrame | None" = None
        #: telemetry shipped before close (unused in-process; kept for parity)
        self.telemetry_frame: "TelemetryFrame | None" = None
        self._pending: "Frame | None" = None
        self._closed = False

    # ------------------------------------------------------------------
    def _tracer(self):
        return self.tracer if self.tracer is not None else current_tracer()

    def send(self, frame: Frame) -> None:
        if self._closed:
            raise ChannelClosed(f"channel for worker {self.worker_id} is closed")
        if self.wire_fidelity:
            frame = decode_frame(encode_frame(frame))
        if isinstance(frame, CloseFrame):
            self.close_frame = frame
            return
        if isinstance(frame, TelemetryFrame):
            self.telemetry_frame = frame
            return
        if isinstance(frame, ControlFrame):
            # Membership handshake, synchronous like everything in-process:
            # a join's ModelFrame reply becomes the pending recv.
            reply = self.service.control(frame)
            if reply is not None:
                if self.wire_fidelity:
                    reply = decode_frame(encode_frame(reply))
                self._pending = reply
            return
        if not isinstance(frame, GradientFrame):
            raise TypeError(f"worker endpoints send gradient/close frames, not {type(frame).__name__}")
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(
                obs_names.COMM_SEND,
                cat="comm",
                worker=self.worker_id,
                bytes=frame.nbytes(),
                dense_bytes=frame.dense_nbytes(),
            ):
                reply = self._exchange(frame)
        else:
            reply = self._exchange(frame)
        if self.wire_fidelity:
            reply = decode_frame(encode_frame(reply))
        self._pending = reply

    def _exchange(self, frame: GradientFrame):
        if self.stats is not None:
            self.stats.record_upload(frame.nbytes(), frame.dense_nbytes())
        reply = self.service(frame)
        if self.stats is not None:
            self.stats.record_download(reply.nbytes(), reply.dense_nbytes())
        return reply

    def recv(self) -> Frame:
        if self._pending is None:
            raise ChannelClosed(f"no reply pending for worker {self.worker_id}")
        frame, self._pending = self._pending, None
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(
                obs_names.COMM_RECV,
                cat="comm",
                worker=self.worker_id,
                bytes=frame.nbytes(),
                dense_bytes=frame.dense_nbytes(),
            ):
                pass
        return frame

    def close(self) -> None:
        self._closed = True
