PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench-smoke

## Static analysis: AST lint + lock discipline + sanitizer self-check.
lint:
	$(PYTHON) -m repro.analysis

## Tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Quarter-scale pass over every paper table/figure (~2 min).
bench-smoke:
	REPRO_SCALE=fast $(PYTHON) -m pytest benchmarks/ --benchmark-only -q
