"""Public API integrity: every __all__ name resolves; key surfaces import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.nn",
    "repro.data",
    "repro.optim",
    "repro.compression",
    "repro.core",
    "repro.exec",
    "repro.comm",
    "repro.ps",
    "repro.sim",
    "repro.metrics",
    "repro.harness",
    "repro.harness.experiments",
    "repro.obs",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_names_resolve(pkg):
    mod = importlib.import_module(pkg)
    missing = [name for name in getattr(mod, "__all__", []) if not hasattr(mod, name)]
    assert not missing, f"{pkg}.__all__ has unresolvable names: {missing}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_star_import_surface():
    namespace = {}
    exec("from repro.core import *", namespace)
    assert "ModelDifferenceTracker" in namespace
    assert "SAMomentumStrategy" in namespace


def test_experiment_modules_have_run():
    from repro.harness import experiments

    for name in experiments.__all__:
        mod = getattr(experiments, name)
        assert callable(getattr(mod, "run", None)), f"{name} lacks run()"


def test_cli_registry_matches_experiments():
    from repro.__main__ import EXPERIMENTS
    from repro.harness import experiments

    registered = {id(mod) for mod, _ in EXPERIMENTS.values()}
    available = {id(getattr(experiments, n)) for n in experiments.__all__}
    assert registered == available, "CLI registry out of sync with experiments package"
