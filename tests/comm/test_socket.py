"""SocketChannel / SocketListener mechanics: connect retry, timeouts, EOF.

The frame traffic itself is property-tested in
``tests/properties/test_prop_socket_frames.py``; these tests pin the
failure semantics the serve loop relies on — crash (EOF), wedge
(ChannelTimeout), closed-channel errors — and the connect backoff that
lets workers start before the server.
"""

from __future__ import annotations

import socket as raw_socket
import threading
import time

import pytest

from repro.comm import ChannelClosed, CloseFrame
from repro.comm.socket import (
    ChannelTimeout,
    SocketChannel,
    SocketListener,
)


def _pair(**channel_kwargs):
    listener = SocketListener()
    host, port = listener.address
    client = SocketChannel.connect(host, port, **channel_kwargs)
    server = listener.accept()
    return listener, client, server


class TestConnectRetry:
    def test_connect_succeeds_when_listener_appears_late(self):
        """The two-terminal race: the worker dials before the server binds."""
        probe = raw_socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # port is now free — first connects will be refused

        result = {}

        def dial():
            result["channel"] = SocketChannel.connect(host, port, retry_for_s=5.0)

        t = threading.Thread(target=dial)
        t.start()
        time.sleep(0.15)  # let at least one attempt fail
        listener = SocketListener(host, port)
        try:
            server = listener.accept()
            t.join(timeout=5)
            assert "channel" in result
            result["channel"].send(CloseFrame(worker_id=4))
            assert server.recv() == CloseFrame(worker_id=4)
            result["channel"].close()
            server.close()
        finally:
            listener.close()

    def test_connect_budget_exhaustion_raises_connection_error(self):
        probe = raw_socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        t0 = time.monotonic()
        with pytest.raises(ConnectionError, match="attempt"):
            SocketChannel.connect(host, port, retry_for_s=0.3, backoff_base_s=0.02)
        # the budget bounds the total wait — no unbounded retry loop
        assert time.monotonic() - t0 < 5.0


class TestFailureSemantics:
    def test_peer_vanishing_raises_eoferror(self):
        """Crash semantics: a dropped connection is EOF, not a close frame."""
        listener, client, server = _pair()
        try:
            client.close()
            with pytest.raises(EOFError, match="no close frame"):
                server.recv()
        finally:
            server.close()
            listener.close()

    def test_read_timeout_raises_channel_timeout(self):
        listener = SocketListener(read_timeout_s=0.2)
        host, port = listener.address
        client = SocketChannel.connect(host, port)
        server = listener.accept()
        try:
            assert server.read_timeout_s == 0.2  # listener propagates deadline
            t0 = time.monotonic()
            with pytest.raises(ChannelTimeout):
                server.recv()
            assert time.monotonic() - t0 < 5.0
        finally:
            client.close()
            server.close()
            listener.close()

    def test_channel_timeout_is_an_oserror(self):
        # the serve loop's crash handling catches OSError; a wedged peer
        # must resolve through the same path as a dead one
        assert issubclass(ChannelTimeout, OSError)

    def test_send_and_recv_after_close_raise_channel_closed(self):
        listener, client, server = _pair()
        listener.close()
        server.close()
        client.close()
        with pytest.raises(ChannelClosed):
            client.send(CloseFrame(worker_id=0))
        with pytest.raises(ChannelClosed):
            client.recv()

    def test_close_is_idempotent(self):
        listener, client, server = _pair()
        for _ in range(2):
            client.close()
            server.close()
            listener.close()


class TestListener:
    def test_ephemeral_bind_reports_real_port(self):
        listener = SocketListener()
        try:
            host, port = listener.address
            assert host == "127.0.0.1"
            assert port > 0
        finally:
            listener.close()

    def test_waitable_is_wait_compatible(self):
        """multiprocessing.connection.wait accepts both ends + the listener."""
        from multiprocessing.connection import wait

        listener, client, server = _pair()
        try:
            assert wait([listener.waitable, server.waitable], timeout=0) == []
            client.send(CloseFrame(worker_id=1))
            ready = wait([listener.waitable, server.waitable], timeout=2)
            assert server.waitable in ready
        finally:
            client.close()
            server.close()
            listener.close()
