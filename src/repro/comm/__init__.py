"""repro.comm — one typed channel layer under all four backends.

Every worker↔server exchange in the repo crosses a :class:`Channel`
speaking the typed frame vocabulary of :mod:`repro.comm.frames`:

* **threaded** — :class:`InProcChannel` (synchronous dispatch; optional
  wire-fidelity mode round-trips bytes through the real codec);
* **process** — :class:`PipeChannel` + :func:`serve_pipe_channels`
  (real bytes over OS pipes, crash-tolerant serving loop);
* **simulated / sync** — :class:`SimChannel` / :class:`SimTransport`
  (frames cost virtual link time on the paper's modelled testbed).

The channel layer owns byte accounting and ``comm.send`` / ``comm.recv``
obs spans, so ``TrainResult`` byte fields and traces mean the same thing
on every substrate.  See ``docs/comm.md`` for the frame schema and the
channel contract.
"""

from . import channel, frames, pipe, protocol, sim
from .channel import Channel, ChannelClosed, InProcChannel, ServerService
from .frames import (
    FRAME_MAGIC,
    CloseFrame,
    DiffFrame,
    Frame,
    GradientFrame,
    ModelFrame,
    TelemetryFrame,
    decode_frame,
    encode_frame,
    peek_shard,
    reply_frame,
)
from .pipe import PipeChannel, ServeReport, serve_pipe_channels
from .protocol import run_worker_loop
from .sim import SimChannel, SimTransfer, SimTransport

__all__ = [
    "channel",
    "frames",
    "pipe",
    "protocol",
    "sim",
    "FRAME_MAGIC",
    "Frame",
    "GradientFrame",
    "DiffFrame",
    "ModelFrame",
    "CloseFrame",
    "TelemetryFrame",
    "encode_frame",
    "decode_frame",
    "peek_shard",
    "reply_frame",
    "Channel",
    "ChannelClosed",
    "ServerService",
    "InProcChannel",
    "PipeChannel",
    "ServeReport",
    "serve_pipe_channels",
    "SimChannel",
    "SimTransfer",
    "SimTransport",
    "run_worker_loop",
]
