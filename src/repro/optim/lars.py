"""LARS — Layer-wise Adaptive Rate Scaling (You et al., the paper's [32]).

§2 positions LARS as the large-batch alternative to communication
compression: "changes the learning rate independently for each layer based
on the norm of their weights and the norm of their gradient", enabling 8k–
32k batches.  Included so the large-batch axis of the related-work
comparison is runnable.

Per layer: ``local_lr = η_trust · ‖w‖ / (‖∇‖ + wd·‖w‖)``;
``v ← m·v + lr·local_lr·(∇ + wd·w)``; ``w ← w − v``.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["LARS"]


class LARS:
    """SGD with layer-wise adaptive rate scaling and momentum."""

    def __init__(
        self,
        params: "list[Parameter]",
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        trust_coefficient: float = 0.001,
        eps: float = 1e-9,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if trust_coefficient <= 0:
            raise ValueError("trust_coefficient must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.trust_coefficient = trust_coefficient
        self.eps = eps
        self._velocity: "list[np.ndarray | None]" = [None] * len(self.params)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def local_lr(self, p: Parameter) -> float:
        """The layer's adaptive rate multiplier (1.0 for zero-norm layers)."""
        if p.grad is None:
            return 1.0
        w_norm = float(np.linalg.norm(p.data))
        g_norm = float(np.linalg.norm(p.grad))
        if w_norm == 0.0 or g_norm == 0.0:
            return 1.0
        return self.trust_coefficient * w_norm / (
            g_norm + self.weight_decay * w_norm + self.eps
        )

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            scaled = self.lr * self.local_lr(p) * g
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += scaled
                p.data -= v
            else:
                p.data -= scaled
