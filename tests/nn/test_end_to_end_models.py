"""Every zoo model trains end-to-end on its natural input shape."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MLP, MicroResNet, SimpleCNN, SmallVGG, cross_entropy
from repro.optim import SGD

MODELS = [
    pytest.param(lambda: MLP(48, (32,), 4, seed=0), (8, 48), id="mlp"),
    pytest.param(lambda: SimpleCNN(3, 4, width=4, seed=0), (8, 3, 8, 8), id="cnn"),
    pytest.param(
        lambda: MicroResNet(3, 4, widths=(4, 8), blocks_per_stage=1, seed=0),
        (8, 3, 8, 8),
        id="resnet",
    ),
    pytest.param(lambda: SmallVGG(3, 4, widths=(4, 8), seed=0), (8, 3, 8, 8), id="vgg"),
]


@pytest.mark.parametrize("factory,shape", MODELS)
class TestModelTrainability:
    def test_loss_decreases_on_fixed_batch(self, factory, shape, rng):
        model = factory()
        x = Tensor(rng.normal(size=shape))
        y = np.arange(shape[0]) % 4
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        first = None
        for _ in range(40):
            loss = cross_entropy(model(x), y)
            if first is None:
                first = float(loss.data)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < first * 0.7

    def test_eval_mode_deterministic(self, factory, shape, rng):
        model = factory()
        model.eval()
        x = Tensor(rng.normal(size=shape))
        np.testing.assert_array_equal(model(x).data, model(x).data)

    def test_state_dict_roundtrip_preserves_output(self, factory, shape, rng):
        a, b = factory(), factory()
        x = Tensor(rng.normal(size=shape))
        a(x)  # populate BN stats where present
        b.load_state_dict(a.state_dict())
        a.eval()
        b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data, atol=1e-12)
