"""Deliberately bad module for OBS001: inline telemetry names outside obs/.

Never imported — parsed only.  Each construct spells a span/metric name
as an inline string instead of referencing the registered constant in
``repro.obs.names``; the tests assert exact finding counts against this
file.
"""

from repro.obs import names as obs_names

__all__ = ["instrumented_step"]


def instrumented_step(tracer, registry, worker_id):
    with tracer.span("worker.step", cat="worker", worker=worker_id):  # OBS001: registered, inline
        registry.counter("comm.upload_bytes", worker=worker_id).inc(128)  # OBS001
        registry.histogram("server.latency_s", worker=worker_id).observe(0.1)  # OBS001: unregistered
        registry.gauge("QueueDepth", worker=worker_id).set(3)  # OBS001: bad format
    tracer.add_span("worker.compute", 0.0, 1.0, cat="worker")  # OBS001
    # Referencing the constant is the clean spelling — no finding:
    with tracer.span(obs_names.WORKER_APPLY, cat="worker", worker=worker_id):
        pass
