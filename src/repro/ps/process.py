"""Multi-process parameter-server trainer (the "process" execution backend).

The closest offline stand-in for the paper's multi-machine deployment:
workers are separate OS processes (true parallel gradient computation, no
GIL sharing), and every exchange travels as *actual bytes* through an OS
pipe speaking the typed frame format of :mod:`repro.comm.frames` — the
same ``encode()``/``decode()`` path the paper's gloo transport performs.

Workers end their stream with an explicit close frame carrying their final
local accounting (and an error description if the worker loop raised); a
pipe that dies *without* one is a crash, which the serving loop
(:func:`repro.comm.pipe.serve_pipe_channels`) reports as a partial result
instead of hanging.  ``fail_at`` hard-kills chosen workers mid-run to
exercise exactly that path.

Notes
-----
* Requires the ``fork`` start method (Linux default): workers inherit the
  model factory and dataset by address-space copy, so no pickling of
  closures is needed.
* Values cross the wire as float32 (as on the paper's testbed), so worker
  replicas drift from the server model at float32 resolution — real
  deployments hold float32 end-to-end, making this exact in practice.
* BatchNorm running statistics stay local to each worker process; the
  final evaluation uses a fresh replica's statistics (prefer BN-free
  models for exact numbers here, e.g. MLP).

Prefer the unified front-end (``repro.exec.Trainer`` with
``backend="process"``); this class remains the underlying engine and a
thin public adapter.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Callable, Mapping

from ..core.layerops import parameters_of
from ..core.methods import Hyper, MethodSpec
from ..core.partition import PartitionMap
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..exec.common import (
    build_server,
    build_worker,
    resolve_hyper,
    resolve_method,
    resolve_schedule,
)
from ..exec.result import TrainResult
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_params
from ..nn.module import Module
from ..obs.span import relabel_records
from ..obs.tracer import Tracer, current_tracer, use_tracer
from ..optim.schedules import Schedule

__all__ = ["ProcessTrainer", "ProcessResult"]

#: deprecated alias — the process engine now returns the unified schema
ProcessResult = TrainResult

#: exit code of a hard-crashed (fail_at) worker — never a normal exit
_CRASH_EXIT_CODE = 17


def _worker_main(
    conn,
    worker_id: int,
    num_workers: int,
    model_factory: Callable[[], Module],
    dataset: Dataset,
    theta0,
    batch_size: int,
    iterations: int,
    method: MethodSpec,
    hyper: Hyper,
    schedule: Schedule,
    seed: int,
    fail_at: "int | None",
    arena: bool = False,
    arena_dtype: "object | None" = None,
    trace: bool = False,
    fanout_shards: int = 0,
) -> None:
    from ..comm.pipe import PipeChannel  # lazy: comm imports ps
    from ..comm.protocol import run_worker_loop

    loader = DataLoader(dataset, batch_size, seed=seed)
    node = build_worker(
        worker_id,
        num_workers,
        model_factory(),
        loader,
        method,
        hyper,
        schedule,
        theta0=theta0,
        arena=arena,
        arena_dtype=arena_dtype,
    )

    def crash_hook(i: int) -> None:
        if fail_at is not None and i >= fail_at:
            # Hard crash: no close frame, no cleanup — the parent must
            # survive on the EOF it sees when the pipe drops.
            os._exit(_CRASH_EXIT_CODE)

    fanout = None
    if fanout_shards:
        # Shard-parallel parent: split each step into shard-addressed
        # sub-frames over this one pipe.  The map mirrors the server's
        # (same shapes, same itemsize → same deterministic packing).
        fanout = PartitionMap(
            {k: v.shape for k, v in theta0.items()},
            fanout_shards,
            itemsize=next(iter(theta0.values())).itemsize,
        )

    if trace:
        # The parent's tracer object is unreachable across the fork (its
        # buffers land in this process's copy), so the child records into
        # its own tracer and ships the spans back as a TelemetryFrame.
        child_tracer = Tracer()
        with use_tracer(child_tracer):
            run_worker_loop(
                node,
                PipeChannel(conn),
                iterations,
                on_iteration=crash_hook,
                ship_telemetry=True,
                shard_fanout=fanout,
            )
    else:
        run_worker_loop(
            node,
            PipeChannel(conn),
            iterations,
            on_iteration=crash_hook,
            shard_fanout=fanout,
        )


class ProcessTrainer:
    """PS training with one OS process per worker, bytes on real pipes."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        iterations_per_worker: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        staleness_damping: bool = False,
        num_shards: int = 1,
        seed: int = 0,
        fail_at: "Mapping[int, int] | None" = None,
        tracer: "object | None" = None,
        arena: bool = False,
        arena_dtype: "object | None" = None,
        shard_parallel: bool = False,
    ) -> None:
        if shard_parallel and num_shards < 2:
            raise ValueError("shard_parallel requires num_shards >= 2")
        #: per-shard executor lanes in the serve loop + worker-side fan-out
        self.shard_parallel = shard_parallel
        self.method = resolve_method(method)
        #: explicit tracer; None ⇒ the ambient repro.obs tracer at run time
        self.tracer = tracer
        self.hyper = resolve_hyper(hyper)
        self.schedule = resolve_schedule(schedule, self.hyper)
        self.model_factory = model_factory
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.iterations_per_worker = iterations_per_worker
        self.seed = seed
        self.arena = arena
        self.arena_dtype = arena_dtype
        #: worker id → local iteration at which that worker hard-crashes
        self.fail_at = dict(fail_at) if fail_at else {}

        self.eval_model = model_factory()
        self.theta0 = parameters_of(self.eval_model)
        self.server = build_server(
            self.method,
            self.theta0,
            num_workers,
            self.hyper,
            secondary_compression=secondary_compression,
            staleness_damping=staleness_damping,
            arena=arena,
            arena_dtype=arena_dtype,
            num_shards=num_shards,
        )

    def run(self) -> TrainResult:
        from ..comm.channel import ServerService  # lazy: comm imports ps
        from ..comm.pipe import PipeChannel, serve_pipe_channels

        tracer = self.tracer if self.tracer is not None else current_tracer()
        trace = bool(getattr(tracer, "enabled", False))
        t_start = time.perf_counter()
        ctx = mp.get_context("fork")
        channels: "list[PipeChannel]" = []
        procs: "list[mp.Process]" = []
        for w in range(self.num_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child,
                    w,
                    self.num_workers,
                    self.model_factory,
                    self.dataset,
                    self.theta0,
                    self.batch_size,
                    self.iterations_per_worker,
                    self.method,
                    self.hyper,
                    self.schedule,
                    self.seed,
                    self.fail_at.get(w),
                    self.arena,
                    self.arena_dtype,
                    trace,
                    self.server.num_shards if self.shard_parallel else 0,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            channels.append(PipeChannel(parent, tracer=tracer))
            procs.append(proc)

        loss_curve = Curve("loss_vs_server_step")
        try:
            report = serve_pipe_channels(
                channels,
                ServerService(self.server),
                stats=self.server.stats,
                on_loss=lambda loss: loss_curve.add(len(loss_curve) + 1, loss),
                shard_lanes=self.server.num_shards if self.shard_parallel else None,
            )
        finally:
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
        elapsed = time.perf_counter() - t_start

        # Merge each worker's shipped telemetry into the parent tracer:
        # spans get a per-process lane (proc="worker-N"), metric snapshots
        # join the result's metrics list alongside the server's series.
        shipped_metrics: "list[dict]" = []
        for wid, frame in sorted(report.telemetry.items()):
            shipped_metrics.extend(dict(m) for m in frame.metrics)
            if trace:
                tracer.absorb(relabel_records(frame.spans, f"worker-{wid}"))

        global_params = self.server.global_model()
        acc, loss = evaluate_params(
            self.eval_model, global_params, self.dataset.x_val, self.dataset.y_val
        )
        stats = self.server.stats
        staleness = self.server.staleness_summary()
        return TrainResult(
            method=self.method.name,
            backend="process",
            num_workers=self.num_workers,
            num_shards=getattr(self.server, "num_shards", 1),
            final_accuracy=acc,
            final_loss=loss,
            loss_vs_step=loss_curve,
            total_iterations=self.server.timestamp,
            samples_processed=report.samples_processed,
            mean_staleness=self.server.staleness_meter.avg,
            staleness_p50=staleness["p50"],
            staleness_p99=staleness["p99"],
            worker_staleness=staleness["per_worker"],
            metrics=self.server.metrics.snapshot() + shipped_metrics,
            upload_bytes=stats.upload_bytes,
            download_bytes=stats.download_bytes,
            upload_dense_bytes=stats.upload_dense_bytes,
            download_dense_bytes=stats.download_dense_bytes,
            wire_bytes_up=sum(ch.wire_bytes_received for ch in channels),
            wire_bytes_down=sum(ch.wire_bytes_sent for ch in channels),
            makespan_s=elapsed,
            clock="wall",
            server_state_bytes=self.server.server_state_bytes(),
            worker_state_bytes=report.worker_state_bytes,
            errors=list(report.errors),
        )
