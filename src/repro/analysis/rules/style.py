"""MUT001 / EXC001 — defensive-coding rules.

* **MUT001**: mutable default arguments (``def f(x=[])``) alias one object
  across every call — with strategies and trainers instantiated per worker,
  a shared default silently couples replicas.
* **EXC001**: bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``
  and hides worker crashes that the threaded trainer must surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["BareExceptRule", "MutableDefaultRule"]

#: constructor names whose call as a default produces a shared mutable
_MUTABLE_CALLS = {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else fn.attr if isinstance(fn, ast.Attribute) else None
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    id = "MUT001"
    summary = "no mutable default arguments; default to None and build inside"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            # positional (incl. pos-only) defaults align with the tail of the params
            pos_params = args.posonlyargs + args.args
            for param, default in zip(pos_params[len(pos_params) - len(args.defaults) :], args.defaults):
                if _is_mutable_literal(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default for parameter {param.arg!r} in "
                        f"{node.name}(); use None and construct inside",
                    )
            for param, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None and _is_mutable_literal(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default for parameter {param.arg!r} in "
                        f"{node.name}(); use None and construct inside",
                    )


class BareExceptRule(Rule):
    id = "EXC001"
    summary = "no bare except:; name the exception type"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit; "
                    "catch a specific exception (at least Exception)",
                )
