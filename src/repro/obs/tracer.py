"""Thread-safe span tracer with a no-op fast path.

Design:

* **Per-thread buffers.**  Each OS thread appends finished spans to its own
  private list (``threading.local``), so the hot emit path takes no lock and
  threads never contend.  Buffers are registered once per thread under
  ``_merge_lock`` and merged (sorted by domain and start time) when
  :meth:`Tracer.records` is called — for the threaded trainer that happens
  after ``join()``, so the merge sees complete buffers.  ``_merge_lock`` is
  deliberately *not* named ``_lock``: it guards only the buffer registry,
  and per-thread buffers are lock-free by construction (the narrow-lock
  convention of ``repro.analysis.locks``).

* **Two clocks.**  ``span()`` stamps wall time (``time.perf_counter`` by
  default; injectable for tests).  ``add_span()`` takes explicit start/end
  times — that is how ``repro.sim`` stamps spans with its *virtual* clock.

* **No-op fast path.**  When tracing is off, the ambient tracer is a
  :class:`NullTracer` whose ``span()`` returns a shared do-nothing context
  manager and whose ``add_span()`` returns immediately; instrumented call
  sites additionally guard bulk emission behind ``tracer.enabled``.  This
  is what keeps disabled-tracing overhead within the ≤3% budget on the
  micro-kernel benches.

Usage::

    from repro.obs import Tracer, use_tracer, current_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        with current_tracer().span("worker.step", cat="worker", worker=0):
            ...
    tracer.dump_jsonl("run.jsonl", meta={"method": "dgs"})
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import threading
import time
from typing import Any, Callable, Iterator, Mapping

from .span import span_record

__all__ = [
    "NullTracer",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]


class _SpanHandle:
    """Context manager for one in-flight span; ``set()`` attaches args."""

    __slots__ = ("_tracer", "_name", "_cat", "_domain", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, domain: str, args: "dict[str, Any]") -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._domain = domain
        self._args = args
        self._t0 = 0.0

    def set(self, **args: Any) -> "_SpanHandle":
        """Attach/override span args (e.g. byte counts known only at exit)."""
        self._args.update(args)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        t1 = self._tracer.clock()
        self._tracer._emit(
            span_record(
                self._name,
                self._t0,
                t1 - self._t0,
                threading.current_thread().name,
                cat=self._cat,
                domain=self._domain,
                args=self._args,
            )
        )


class _NullSpan:
    """Shared do-nothing span handle (the disabled-tracing fast path)."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer that records nothing; the default ambient tracer."""

    enabled = False

    def span(self, name: str, cat: str = "default", domain: str = "wall", **args: Any):
        return _NULL_SPAN

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        tid: str = "",
        cat: str = "default",
        domain: str = "virtual",
        args: "Mapping[str, Any] | None" = None,
    ) -> None:
        return None

    def records(self) -> "list[dict[str, Any]]":
        return []

    def absorb(self, records: "Iterable[Mapping[str, Any]]") -> int:
        return 0


class Tracer:
    """Collects spans from any number of threads and two clock domains."""

    enabled = True

    def __init__(self, clock: "Callable[[], float] | None" = None, meta: "Mapping[str, Any] | None" = None) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else time.perf_counter
        self.meta: dict[str, Any] = dict(meta) if meta else {}
        self._merge_lock = threading.Lock()
        self._buffers: list[list[dict[str, Any]]] = []
        self._tls = threading.local()

    # ------------------------------------------------------------------
    def _buffer(self) -> "list[dict[str, Any]]":
        buf = getattr(self._tls, "buffer", None)
        if buf is None:
            buf = []
            self._tls.buffer = buf
            with self._merge_lock:
                self._buffers.append(buf)
        return buf

    def _emit(self, record: "dict[str, Any]") -> None:
        self._buffer().append(record)

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "default", domain: str = "wall", **args: Any) -> _SpanHandle:
        """Context manager timing a block on this tracer's clock."""
        return _SpanHandle(self, name, cat, domain, args)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        tid: str = "",
        cat: str = "default",
        domain: str = "virtual",
        args: "Mapping[str, Any] | None" = None,
    ) -> None:
        """Record a span with explicit timestamps (the simulator's path)."""
        self._emit(
            span_record(
                name,
                start,
                end - start,
                tid or threading.current_thread().name,
                cat=cat,
                domain=domain,
                args=args,
            )
        )

    def absorb(self, records: "Iterable[Mapping[str, Any]]") -> int:
        """Merge records produced by another tracer (e.g. a worker process).

        The caller is expected to have stamped them with
        :func:`repro.obs.span.relabel_records` so lanes stay distinct.
        Returns the number of records absorbed.
        """
        batch = [dict(rec) for rec in records]
        if not batch:
            return 0
        with self._merge_lock:
            self._buffers.append(batch)
        return len(batch)

    # ------------------------------------------------------------------
    def records(self) -> "list[dict[str, Any]]":
        """All spans merged across thread buffers, in (domain, start) order."""
        with self._merge_lock:
            merged = [rec for buf in self._buffers for rec in buf]
        merged.sort(key=lambda r: (r.get("domain", "wall"), r.get("ts", 0.0)))
        return merged

    def clear(self) -> None:
        with self._merge_lock:
            for buf in self._buffers:
                buf.clear()

    def dump_jsonl(
        self,
        path: "str | pathlib.Path",
        meta: "Mapping[str, Any] | None" = None,
        metrics: "list[dict[str, Any]] | None" = None,
    ) -> int:
        """Write a meta record, every span, and optional metric snapshots.

        Returns the number of records written.  ``metrics`` is a snapshot
        from :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.
        """
        header: dict[str, Any] = {"type": "meta", **self.meta, **(dict(meta) if meta else {})}
        records = [header, *self.records(), *(metrics or [])]
        with open(path, "w") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")
        return len(records)


_AMBIENT = threading.Lock()
_current: "Tracer | NullTracer" = NullTracer()


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer instrumented call sites emit to."""
    return _current


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` as ambient (None ⇒ NullTracer); returns the old one."""
    global _current
    with _AMBIENT:
        previous = _current
        _current = tracer if tracer is not None else NullTracer()
    return previous


@contextlib.contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> "Iterator[Tracer | NullTracer]":
    """Scoped :func:`set_tracer` — restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
