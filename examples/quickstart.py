#!/usr/bin/env python
"""Quickstart: train with DGS on 4 simulated workers and compare to ASGD.

Runs the paper's headline configuration — dual-way Top-k sparsification with
SAMomentum — against vanilla ASGD on the synthetic CIFAR-10 workload, then
prints final accuracy, communication volume, and the loss curves.

Usage:  python examples/quickstart.py [--fast]
"""

import argparse

from repro.harness import get_workload, run_distributed
from repro.metrics import ascii_plot


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="small data for a ~10s run")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    workload = get_workload("cifar10")
    print(f"workload: {workload.name}, {args.workers} workers, "
          f"R={100 * workload.hyper.ratio:g}% sparsification\n")

    results = {}
    for method in ("asgd", "dgs"):
        print(f"training {method} ...")
        results[method] = run_distributed(
            method, workload, args.workers, gbps=10.0, fast=args.fast, seed=0
        )

    print()
    for method, r in results.items():
        print(
            f"{method:5s}  top-1 accuracy {100 * r.final_accuracy:5.2f}%   "
            f"bytes on wire {r.upload_bytes + r.download_bytes:>12,}   "
            f"compression {r.compression_ratio:5.1f}x   "
            f"mean staleness {r.mean_staleness:.1f}"
        )

    print()
    print(ascii_plot(
        {m.upper(): r.loss_vs_step for m, r in results.items()},
        title="training loss (EMA) vs server iteration",
        xlabel="iteration", ylabel="loss",
    ))


if __name__ == "__main__":
    main()
