"""Model checkpointing to ``.npz`` (no pickle — portable and safe)."""

from __future__ import annotations

import pathlib

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__repro_checkpoint__"


def save_checkpoint(model: Module, path: "str | pathlib.Path") -> None:
    """Write all parameters and buffers of ``model`` to an .npz file."""
    state = model.state_dict()
    payload = {_sanitize(k): v for k, v in state.items()}
    payload[_META_KEY] = np.array(list(state.keys()))
    np.savez(path, **payload)


def load_checkpoint(model: Module, path: "str | pathlib.Path") -> None:
    """Load an .npz checkpoint into ``model`` (shapes must match)."""
    with np.load(path, allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ValueError(f"{path} is not a repro checkpoint")
        keys = [str(k) for k in data[_META_KEY]]
        state = {k: data[_sanitize(k)] for k in keys}
    model.load_state_dict(state)


def _sanitize(key: str) -> str:
    # np.savez forbids keys that collide with its positional-arg scheme;
    # dots and colons are fine, but be defensive about the reserved name.
    if key == _META_KEY:
        raise ValueError(f"state key collides with reserved name {_META_KEY!r}")
    return key
