"""serve_channels semantics over real socket channels.

The trainers exercise the happy path end-to-end; these tests drive the
loop directly from a fake worker thread so each branch is pinned in
isolation: elastic accept through the listener, the join/leave control
handshake, crash-on-EOF, straggler eviction, and close accounting.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.comm import (
    CONTROL_JOIN,
    CONTROL_LEAVE,
    CloseFrame,
    ControlFrame,
    GradientFrame,
    ModelFrame,
    TelemetryFrame,
    serve_channels,
)
from repro.comm.service import ServerService
from repro.comm.socket import SocketChannel, SocketListener
from repro.core.methods import Hyper, get_method
from repro.exec.common import build_server
from repro.nn import MLP
from repro.ps.membership import WorkerDirectory
from repro.ps.messages import GradientMessage


def _make_service(num_workers: int = 2, with_membership: bool = True):
    from repro.core.layerops import parameters_of

    model = MLP(6, (8,), 3, seed=2)
    server = build_server(
        get_method("asgd"),
        parameters_of(model),
        num_workers,
        Hyper(lr=0.1, momentum=0.0),
    )
    membership = WorkerDirectory(server) if with_membership else None
    return ServerService(server, membership=membership), server, membership


def _grad_for(server, worker_id: int, scale: float = 0.01):
    payload = {
        name: np.full_like(buf, scale, dtype=np.float64)
        for name, buf in server.global_model().items()
    }
    return GradientFrame(GradientMessage(worker_id, payload, 0), loss=0.5)


def _serve(service, server, listener, n_workers, **kwargs):
    return serve_channels(
        [],
        service,
        stats=server.stats,
        listener=listener,
        expected_closes=n_workers,
        **kwargs,
    )


class TestElasticServe:
    def test_join_train_leave_close_accounting(self):
        service, server, membership = _make_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address

        def worker():
            ch = SocketChannel.connect(host, port)
            ch.send(ControlFrame(0, CONTROL_JOIN))
            reply = ch.recv()
            assert isinstance(reply, ModelFrame)
            ch.send(_grad_for(server, 0))
            assert ch.recv() is not None
            ch.send(ControlFrame(0, CONTROL_LEAVE))
            ch.send(CloseFrame(worker_id=0, samples_processed=16, worker_state_bytes=64))
            ch.close()

        t = threading.Thread(target=worker)
        t.start()
        try:
            report = _serve(service, server, listener, 1)
        finally:
            listener.close()
            t.join(timeout=10)
        assert (report.joins, report.leaves) == (1, 1)
        assert report.clean_closes == 1 and report.crashes == 0
        assert report.updates == 1
        assert report.samples_processed == 16
        assert report.worker_state_bytes == 64
        assert membership.members == {0: "left"}

    def test_join_bootstraps_vk_to_current_model(self):
        """Eq. 5's elastic extension: a joiner starts with v_k == M_t."""
        service, server, _ = _make_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address
        done = threading.Event()

        def worker():
            ch = SocketChannel.connect(host, port)
            ch.send(ControlFrame(0, CONTROL_JOIN))
            ch.recv()
            for _ in range(3):
                ch.send(_grad_for(server, 0))
                ch.recv()
            # second worker joins mid-run, against a moved M_t
            late = SocketChannel.connect(host, port)
            late.send(ControlFrame(1, CONTROL_JOIN))
            reply = late.recv()
            assert isinstance(reply, ModelFrame)
            done.set()
            late.send(CloseFrame(worker_id=1))
            ch.send(CloseFrame(worker_id=0))
            late.close()
            ch.close()

        t = threading.Thread(target=worker)
        t.start()
        try:
            report = _serve(service, server, listener, 2)
        finally:
            listener.close()
            t.join(timeout=10)
        assert done.is_set() and report.joins == 2
        # after bootstrap, the joiner's reference model equals θ_t exactly
        joined = server.worker_model(1)
        current = server.global_model()
        for name in current:
            np.testing.assert_array_equal(joined[name], current[name])

    def test_crash_without_close_frame_is_reported(self):
        service, server, membership = _make_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address

        def worker():
            ch = SocketChannel.connect(host, port)
            ch.send(ControlFrame(0, CONTROL_JOIN))
            ch.recv()
            ch.close()  # vanish: no leave, no close frame

        t = threading.Thread(target=worker)
        t.start()
        try:
            report = _serve(service, server, listener, 1)
        finally:
            listener.close()
            t.join(timeout=10)
        assert report.crashes == 1 and report.clean_closes == 0
        assert any("without a close frame" in e for e in report.errors)
        assert membership.members == {0: "crash"}

    def test_straggler_eviction(self):
        service, server, membership = _make_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address
        release = threading.Event()

        def worker():
            ch = SocketChannel.connect(host, port)
            ch.send(ControlFrame(0, CONTROL_JOIN))
            ch.recv()
            release.wait(timeout=30)  # go silent until the server evicts us
            ch.close()

        t = threading.Thread(target=worker)
        t.start()
        try:
            report = _serve(
                service, server, listener, 1, straggler_timeout_s=0.4
            )
        finally:
            release.set()
            listener.close()
            t.join(timeout=10)
        assert report.evictions == 1
        assert any("straggler" in e for e in report.errors)
        assert membership.members == {0: "evicted"}
        assert membership.snapshot()["evictions"] == 1

    def test_telemetry_absorbed_without_reply(self):
        service, server, _ = _make_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address
        spans = ({"type": "span", "name": "worker.step", "ts": 0.0, "dur": 1.0},)

        def worker():
            ch = SocketChannel.connect(host, port)
            ch.send(TelemetryFrame(worker_id=0, spans=spans))
            ch.send(CloseFrame(worker_id=0))
            ch.close()

        t = threading.Thread(target=worker)
        t.start()
        try:
            report = _serve(service, server, listener, 1)
        finally:
            listener.close()
            t.join(timeout=10)
        assert 0 in report.telemetry
        assert list(report.telemetry[0].spans) == list(spans)

    def test_join_without_membership_still_bootstraps(self):
        """membership=None: the control plane works, minus the bookkeeping."""
        service, server, membership = _make_service(num_workers=1, with_membership=False)
        assert membership is None
        listener = SocketListener()
        host, port = listener.address

        def worker():
            ch = SocketChannel.connect(host, port)
            ch.send(ControlFrame(0, CONTROL_JOIN))
            assert isinstance(ch.recv(), ModelFrame)
            ch.send(CloseFrame(worker_id=0))
            ch.close()

        t = threading.Thread(target=worker)
        t.start()
        try:
            report = _serve(service, server, listener, 1)
        finally:
            listener.close()
            t.join(timeout=10)
        assert report.joins == 1


class TestWorkerDirectory:
    def test_snapshot_counts_every_event_kind(self):
        service, server, membership = _make_service(num_workers=4)
        membership.register(0)
        membership.register(1)
        membership.register(2)
        membership.deregister(0)  # default reason: left
        membership.deregister(1, reason="crash")
        membership.deregister(2, reason="evicted")
        snap = membership.snapshot()
        assert snap["joins"] == 3
        assert snap["leaves"] == 1
        assert snap["crashes"] == 1
        assert snap["evictions"] == 1
        assert membership.active() == []

    def test_register_is_visible_as_active(self):
        _, _, membership = _make_service(num_workers=2)
        membership.register(1)
        assert membership.active() == [1]

    def test_join_events_carry_server_timestamp(self):
        _, server, membership = _make_service(num_workers=2)
        membership.register(0)
        [(worker, kind, ts)] = membership.events
        assert (worker, kind) == (0, "join")
        assert ts == server.timestamp
