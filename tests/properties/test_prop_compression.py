"""Property-based tests for sparsifiers and wire coding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.compression import (
    TopKSparsifier,
    encode_mask,
    encode_sparse,
    sparsify,
    topk_mask,
    topk_threshold,
    unsparsify,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)
vectors = arrays(np.float64, st.integers(1, 400), elements=finite_floats)
ratios = st.floats(min_value=0.001, max_value=1.0)


class TestTopKProperties:
    @given(arr=vectors, ratio=ratios)
    @settings(max_examples=120, deadline=None)
    def test_exact_count(self, arr, ratio):
        mask = topk_mask(arr, ratio)
        expected = max(1, min(arr.size, int(np.ceil(arr.size * ratio))))
        assert mask.sum() == expected

    @given(arr=vectors, ratio=ratios)
    @settings(max_examples=120, deadline=None)
    def test_kept_dominate_dropped(self, arr, ratio):
        mask = topk_mask(arr, ratio)
        if mask.all():
            return
        assert np.abs(arr[mask]).min() >= np.abs(arr[~mask]).max()

    @given(arr=vectors, ratio=ratios)
    @settings(max_examples=80, deadline=None)
    def test_threshold_consistent_with_mask(self, arr, ratio):
        thr = topk_threshold(arr, ratio)
        strictly_above = (np.abs(arr) > thr).sum()
        mask_count = topk_mask(arr, ratio).sum()
        # Ties at the threshold may inflate the mask, never the reverse.
        assert strictly_above <= mask_count

    @given(arr=vectors, ratio=ratios)
    @settings(max_examples=80, deadline=None)
    def test_split_partition(self, arr, ratio):
        sp = TopKSparsifier(ratio, min_sparse_size=0)
        mask, sent, kept = sp.split(arr)
        np.testing.assert_allclose(sent + kept, arr)
        assert not np.logical_and(sent != 0, kept != 0).any()


class TestCodingProperties:
    @given(arr=arrays(np.float64, array_shapes(max_dims=3, max_side=12), elements=finite_floats))
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_roundtrip(self, arr):
        # Wire values are float32 (VALUE_BYTES); roundtrip is exact at f32.
        np.testing.assert_array_equal(encode_sparse(arr).to_dense(), arr.astype(np.float32))

    @given(arr=vectors, ratio=ratios)
    @settings(max_examples=80, deadline=None)
    def test_encode_mask_roundtrip_equals_sparsify(self, arr, ratio):
        mask = topk_mask(arr, ratio)
        np.testing.assert_array_equal(
            encode_mask(arr, mask).to_dense(), sparsify(arr, mask).astype(np.float32)
        )

    @given(arr=vectors)
    @settings(max_examples=80, deadline=None)
    def test_nbytes_monotone_in_nnz(self, arr):
        st_full = encode_sparse(arr)
        half = arr.copy()
        half[: len(half) // 2] = 0.0
        st_half = encode_sparse(half)
        assert st_half.nbytes() <= st_full.nbytes()

    @given(arr=vectors, ratio=ratios)
    @settings(max_examples=80, deadline=None)
    def test_sparsify_unsparsify_partition(self, arr, ratio):
        mask = topk_mask(arr, ratio)
        np.testing.assert_allclose(sparsify(arr, mask) + unsparsify(arr, mask), arr)
