"""Sparsifier interface: select which entries of a layer's update to send."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Sparsifier", "sparsify", "unsparsify"]


class Sparsifier(ABC):
    """Chooses a boolean send-mask per layer tensor.

    The paper's notation (Algorithms 1–3): ``sparsify(x)`` zeroes entries
    below the threshold; ``unsparsify(x)`` zeroes entries above it; the two
    partition ``x``.
    """

    @abstractmethod
    def mask(self, arr: np.ndarray) -> np.ndarray:
        """Return a boolean array marking the entries to transmit."""

    def select(self, arr: np.ndarray, workspace=None):
        """Fused mask+encode: the selected entries as a ``SparseTensor``.

        Optional fast path for the allocation-free kernels: sparsifiers
        that can produce the wire tensor directly (without materialising
        the boolean mask) override this.  The default returns ``None``,
        telling callers to fall back to ``encode_mask(arr, self.mask(arr))``
        — both routes must select the identical entry set.
        """
        return None

    def split(self, arr: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(mask, sent, kept)`` with ``sent + kept == arr``."""
        m = self.mask(arr)
        sent = np.where(m, arr, 0.0)
        kept = np.where(m, 0.0, arr)
        return m, sent, kept


def sparsify(arr: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Keep entries above threshold (paper's ``sparsify``): ``arr ⊙ mask``."""
    return np.where(mask, arr, 0.0)


def unsparsify(arr: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Keep entries below threshold (paper's ``unsparsify``): ``arr ⊙ ¬mask``."""
    return np.where(mask, 0.0, arr)
