"""PERF rules — hot-path shapes that silently serialise or slow the server.

PERF001 — no per-layer Python loops over whole-model state on the hot
path.  The arena layer (``repro.core.arena.LayerArena``) exists so
whole-state operations — apply an update, decay momentum, compute
M − v_k — are one fused vectorised op over a flat buffer.  A ``for`` loop
over ``parameters_of(...)`` / ``gradients_of(...)`` in ``core/``, ``ps/``
or ``exec/`` re-introduces the per-layer interpreter overhead the arena
was built to remove (and stretches the server's lock hold).  The dict-of-
float64 reference path in ``core/layerops.py`` is exempt: it exists
precisely to stay naive so the parity tests have something exact to
compare against.

PERF002 — no payload decode inside a lock-held region.  Decoding a frame
or message (``decode_frame`` / ``decode_message``) is O(payload) numpy
work; doing it under a server or channel lock stretches the hold time and
serialises every other shard lane behind a pure-compute step.  The
parallel serve loop's whole design is decode-*outside*-lock (lanes decode
before dispatching under their shard lock); this rule keeps ``ps/`` and
``comm/`` from regressing that.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["DecodeUnderLockRule", "PerLayerLoopRule"]

#: whole-model collectors whose results must not be iterated layer-by-layer
_COLLECTORS = {"parameters_of", "gradients_of"}

#: Mapping iteration views — looping `collector(...).items()` is still a loop
_VIEWS = {"items", "keys", "values"}


def _collector_call(node: ast.AST) -> "str | None":
    """The collector name if ``node`` is ``parameters_of(...)`` /
    ``gradients_of(...)`` or an ``.items()``-style view of one."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _VIEWS and not node.args:
        return _collector_call(func.value)
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in _COLLECTORS else None


class PerLayerLoopRule(Rule):
    id = "PERF001"
    summary = "per-layer Python loop over parameters_of()/gradients_of() on the hot path"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if not module.in_perf_loop_scope(config):
            return
        for node in ast.walk(module.tree):
            iters: "list[ast.AST]" = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                name = _collector_call(it)
                if name is not None:
                    yield self.finding(
                        module,
                        it,
                        f"per-layer loop over '{name}(...)' on the hot path; "
                        "use a LayerArena and one fused op over .flat "
                        "(repro.core.arena), or move the loop to the "
                        "layerops reference path",
                    )


#: payload decoders whose cost must stay outside lock-held regions
_DECODERS = {"decode_frame", "decode_message"}


def _lock_like(expr: ast.AST) -> bool:
    """True iff ``expr`` reads as a mutex by naming convention: ``_lock``,
    ``*_lock``, ``_mu``/``*_mu``, or a bare ``lock``/``mu`` — the spellings
    this repo's lock registry and LCK rules already key on."""
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Subscript):  # e.g. self._locks[shard]
        return _lock_like(expr.value)
    else:
        return False
    stripped = name.lstrip("_")
    return (
        stripped in ("lock", "mu", "locks")
        or stripped.endswith("_lock")
        or stripped.endswith("_locks")
        or stripped.endswith("_mu")
    )


def _decoder_call(node: ast.AST) -> "str | None":
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in _DECODERS else None


class DecodeUnderLockRule(Rule):
    id = "PERF002"
    summary = "frame/message payload decode inside a lock-held region"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if not module.in_decode_lock_scope(config):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(_lock_like(item.context_expr) for item in node.items):
                continue
            for inner in node.body:
                for call in ast.walk(inner):
                    name = _decoder_call(call)
                    if name is not None:
                        yield self.finding(
                            module,
                            call,
                            f"payload decode '{name}(...)' inside a "
                            "lock-held region; decode before acquiring "
                            "the lock (the parallel serve lanes decode "
                            "outside every lock — see docs/comm.md) and "
                            "hand the decoded message in",
                        )
