"""The transport-agnostic server side of every channel.

Before this module the accept/route/reply loop lived twice: once inside
:class:`InProcChannel` (synchronous dispatch) and once inside
``serve_pipe_channels`` (pipe multiplexing).  Adding a third transport
(TCP sockets) would have made it three.  This module owns it once:

* :class:`ServerService` — apply one frame, build the reply.  Shared by
  every transport; also the home of the optional membership layer (join /
  leave control frames), so elastic workers behave identically whether
  they arrive over a thread, a pipe, or a socket.
* :func:`serve_channels` — the multiplexing serve loop, written against
  the :class:`~repro.comm.channel.Channel` contract plus one transport
  hook (``waitable`` — the object ``multiprocessing.connection.wait``
  blocks on, which accepts both pipe connections and sockets).  It
  handles gradient dispatch, telemetry absorption, membership control
  frames, close accounting, crash detection (EOF without a close frame),
  straggler eviction, and elastic accept from a listener.

Routing: byte transports expose ``recv_raw()`` and the loop reads the
target shard off the fixed 4-byte header with
:func:`~repro.comm.frames.peek_shard` *before* decoding the payload —
the peeked id, not the decoded frame attribute, is the routing authority,
exactly what the frame header exists for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait
from typing import TYPE_CHECKING, Callable

from ..compression.stats import CompressionStats
from .frames import (
    CloseFrame,
    ControlFrame,
    Frame,
    GradientFrame,
    TelemetryFrame,
    decode_frame,
    peek_shard,
    reply_frame,
)

if TYPE_CHECKING:
    from ..ps.server import ParameterServer

__all__ = ["ServerService", "ServeReport", "serve_channels"]


class ServerService:
    """The server side of every channel: apply one frame, build the reply.

    One instance per run, shared by all of that run's channels; thread
    safety is the :class:`~repro.ps.server.ParameterServer` lock's job, so
    concurrent callers (the threaded backend) contend exactly as before.

    ``membership`` is the optional elastic-worker directory (e.g.
    :class:`~repro.ps.membership.WorkerDirectory`): when present,
    :meth:`control` routes join/leave frames through it; when absent,
    joins bootstrap directly against the server (same state transition,
    no bookkeeping).
    """

    def __init__(self, server: "ParameterServer", membership: "object | None" = None) -> None:
        self.server = server
        self.membership = membership

    def __call__(self, frame: GradientFrame, shard: "int | None" = None):
        """Dispatch one gradient frame; ``shard`` overrides the frame's own
        shard slot when a byte transport already peeked it off the header."""
        shard = getattr(frame, "shard", -1) if shard is None else shard
        if shard >= 0:
            # Shard-addressed frame (routed off the header by the
            # transport): dispatch straight to that shard and stamp the
            # reply with the same shard id so the worker can reassemble.
            return reply_frame(
                self.server.handle_shard(shard, frame.message), shard=shard
            )
        return reply_frame(self.server.handle(frame.message))

    def control(self, frame: ControlFrame):
        """Apply one membership control frame.

        ``join`` bootstraps the worker's ``v_k`` from ``M_t`` under the
        (per-shard) server lock and returns the :class:`ModelFrame` reply
        carrying θ_t; ``leave`` deregisters and returns ``None`` (one-way).
        """
        if frame.op == "join":
            if self.membership is not None:
                msg = self.membership.register(frame.worker_id)
            else:
                msg = self.server.bootstrap_worker(frame.worker_id)
            return reply_frame(msg)
        if self.membership is not None:
            self.membership.deregister(frame.worker_id)
        return None

    def register_locks(self, registry) -> None:
        """Enroll every lock this service can acquire in a lock-order
        :class:`~repro.analysis.concurrency.LockRegistry` (the single
        server lock, or — via
        :meth:`~repro.ps.sharded.ShardedParameterServer.register_lock` —
        one entry per shard, plus the membership directory's lock)."""
        self.server.register_lock(registry)
        if self.membership is not None and hasattr(self.membership, "register_lock"):
            self.membership.register_lock(registry)


@dataclass
class ServeReport:
    """What the serving loop observed across all worker channels."""

    #: summed final accounting from clean close frames
    samples_processed: int = 0
    worker_state_bytes: int = 0
    #: human-readable crash/error descriptions, one per failed worker
    errors: "list[str]" = field(default_factory=list)
    clean_closes: int = 0
    crashes: int = 0
    #: worker_id → TelemetryFrame shipped before that worker's close
    telemetry: "dict[int, TelemetryFrame]" = field(default_factory=dict)
    #: membership traffic observed by the loop
    joins: int = 0
    leaves: int = 0
    evictions: int = 0
    #: gradient frames applied (drives checkpoint cadence)
    updates: int = 0


def _recv_frame(channel) -> "tuple[Frame, int]":
    """One frame off ``channel`` plus its routing shard.

    Byte transports expose ``recv_raw()``: the shard id is peeked off the
    fixed header *before* the payload is decoded (the header's whole
    purpose); object transports fall back to ``recv()`` and the frame's
    own shard slot.
    """
    recv_raw = getattr(channel, "recv_raw", None)
    if recv_raw is not None:
        raw = recv_raw()
        return decode_frame(raw), peek_shard(raw)
    frame = channel.recv()
    return frame, getattr(frame, "shard", -1)


def serve_channels(
    channels: "list",
    service: ServerService,
    stats: "CompressionStats | None" = None,
    on_loss: "Callable[[float], None] | None" = None,
    on_update: "Callable[[int], None] | None" = None,
    listener: "object | None" = None,
    expected_closes: "int | None" = None,
    straggler_timeout_s: "float | None" = None,
) -> ServeReport:
    """Serve every channel until ``expected_closes`` workers terminate.

    The one accept/route/reply loop under the process and socket backends
    (and, via the synchronous :class:`~repro.comm.channel.InProcChannel`
    dispatch, semantically under the threaded one too):

    * **gradient** frames are routed by the shard id peeked off the raw
      header, dispatched through ``service``, and answered on the same
      channel; ``stats`` records the analytic byte accounting and
      ``on_loss`` sees each frame's training loss after the reply ships.
    * **close** frames settle a worker's final accounting; a channel that
      dies *without* one (EOF / EPIPE) is a crash and becomes an error on
      the report — a graceful partial result, never a hang.
    * **telemetry** frames are absorbed onto the report (no reply).
    * **control** frames run the membership handshake via
      :meth:`ServerService.control`; a join's ModelFrame reply ships back
      on the worker's channel.
    * ``listener`` (optional) is polled alongside the channels; accepted
      connections join the serve set — elastic workers connect mid-run.
    * ``straggler_timeout_s`` (optional) evicts a channel that has been
      silent for that long: the channel is closed, the eviction recorded
      as an error (partial-result semantics, same as a crash), and the
      membership layer notified.

    ``expected_closes`` defaults to ``len(channels)``; pass the total
    worker count when a listener will deliver some of them later.
    """
    report = ServeReport()
    # Duck-typed service: plain callables (tests, adapters) lack the
    # membership/control surface and take no shard keyword.
    membership = getattr(service, "membership", None)
    full_service = isinstance(service, ServerService)
    open_channels = {ch.waitable: ch for ch in channels}
    worker_ids: "dict[object, int]" = {}  # waitable → last known worker id
    last_seen = {w: time.monotonic() for w in open_channels}
    expected = len(channels) if expected_closes is None else expected_closes
    terminated = 0
    poll = None if straggler_timeout_s is None else max(straggler_timeout_s / 4.0, 0.01)

    def _drop(waitable, channel) -> None:
        open_channels.pop(waitable, None)
        last_seen.pop(waitable, None)
        try:
            channel.close()
        except OSError:
            pass

    while terminated < expected:
        waitables = list(open_channels)
        if listener is not None:
            waitables.append(listener.waitable)
        if not waitables:
            break  # nothing left to wait on; remaining workers never arrived
        ready = wait(waitables, timeout=poll)
        now = time.monotonic()
        for obj in ready:
            if listener is not None and obj is listener.waitable:
                accepted = listener.accept()
                open_channels[accepted.waitable] = accepted
                last_seen[accepted.waitable] = now
                continue
            channel = open_channels[obj]
            last_seen[obj] = now
            try:
                frame, shard = _recv_frame(channel)
            except (EOFError, OSError):
                report.crashes += 1
                who = worker_ids.get(obj)
                label = f"worker {who}" if who is not None else "worker"
                report.errors.append(f"{label} channel closed without a close frame (crash)")
                if who is not None and membership is not None:
                    membership.deregister(who, reason="crash")
                _drop(obj, channel)
                terminated += 1
                continue
            if isinstance(frame, CloseFrame):
                worker_ids[obj] = frame.worker_id
                if frame.samples_processed is not None:
                    report.samples_processed += frame.samples_processed
                if frame.worker_state_bytes is not None:
                    report.worker_state_bytes += frame.worker_state_bytes
                if frame.error is not None:
                    report.crashes += 1
                    report.errors.append(f"worker {frame.worker_id}: {frame.error}")
                else:
                    report.clean_closes += 1
                _drop(obj, channel)
                terminated += 1
                continue
            if isinstance(frame, TelemetryFrame):
                report.telemetry[frame.worker_id] = frame
                continue  # diagnostic side channel: no reply, channel stays open
            if isinstance(frame, ControlFrame):
                worker_ids[obj] = frame.worker_id
                reply = service.control(frame)
                if frame.op == "join":
                    report.joins += 1
                    try:
                        channel.send(reply)
                    except (BrokenPipeError, OSError):
                        report.crashes += 1
                        report.errors.append(
                            f"worker {frame.worker_id}: channel broke during join (crash)"
                        )
                        _drop(obj, channel)
                        terminated += 1
                else:
                    report.leaves += 1
                continue
            if not isinstance(frame, GradientFrame):
                report.errors.append(f"unexpected {type(frame).__name__} from worker channel")
                _drop(obj, channel)
                terminated += 1
                continue
            worker_ids[obj] = frame.worker_id
            if stats is not None:
                stats.record_upload(frame.nbytes(), frame.dense_nbytes())
            reply = service(frame, shard=shard) if full_service else service(frame)
            if stats is not None:
                stats.record_download(reply.nbytes(), reply.dense_nbytes())
            try:
                channel.send(reply)
            except (BrokenPipeError, OSError):
                report.crashes += 1
                report.errors.append(
                    f"worker {frame.worker_id}: channel broke while sending the reply (crash)"
                )
                _drop(obj, channel)
                terminated += 1
                continue
            report.updates += 1
            if on_loss is not None:
                on_loss(frame.loss)
            if on_update is not None:
                on_update(report.updates)
        if straggler_timeout_s is not None:
            cutoff = time.monotonic() - straggler_timeout_s
            for obj in [w for w, seen in last_seen.items() if seen < cutoff]:
                channel = open_channels[obj]
                who = worker_ids.get(obj)
                label = f"worker {who}" if who is not None else "worker"
                report.evictions += 1
                report.crashes += 1
                report.errors.append(
                    f"{label} evicted as straggler (silent > {straggler_timeout_s:g}s)"
                )
                if who is not None and membership is not None:
                    membership.deregister(who, reason="evicted")
                _drop(obj, channel)
                terminated += 1
    return report
