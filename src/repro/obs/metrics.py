"""Labeled metrics (counters / gauges / histograms) and the JSONL sink.

The registry is the numbers-side companion of the span tracer: spans say
*when* and *how long*, metrics say *how much* (bytes shipped, messages
handled, staleness observed).  Every metric is a labeled series —
``registry.counter("upload_bytes", method="dgs")`` — and ``snapshot()``
produces plain dicts that serialise straight into the same JSONL stream
as spans (``type: "metric"`` records, see ``repro.obs.span``).

:class:`ObsLogger` is the run-level JSONL sink.  It subsumes
:class:`repro.metrics.runlog.RunLogger`'s step records (same
``log_step`` signature, so trainers accept either), adds span/metric
records, flushes on write, and closes deterministically.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import IO, Any, Mapping

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsLogger",
    "quantile_from_counts",
]

#: histogram bucket upper bounds in seconds (+Inf is implicit)
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


def _label_key(labels: "Mapping[str, Any]") -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def quantile_from_counts(
    buckets: "tuple[float, ...] | list[float]",
    counts: "list[int]",
    q: float,
) -> float:
    """Estimate quantile ``q`` from per-bucket counts (last slot = +Inf).

    Linear interpolation within the winning bucket, the standard
    Prometheus ``histogram_quantile`` estimator.  Values landing in the
    +Inf bucket clamp to the highest finite bound; an empty histogram
    returns ``nan``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(buckets):  # +Inf bucket: clamp to last finite bound
                return float(buckets[-1]) if buckets else float("nan")
            lower = float(buckets[i - 1]) if i > 0 else 0.0
            upper = float(buckets[i])
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * fraction
        cumulative += count
    return float(buckets[-1]) if buckets else float("nan")


class Counter:
    """Monotonically increasing scalar series."""

    kind = "counter"

    def __init__(self, name: str, labels: "Mapping[str, str] | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> "dict[str, Any]":
        with self._lock:
            value = self._value
        return {"type": "metric", "kind": self.kind, "name": self.name, "labels": dict(self.labels), "value": value}


class Gauge:
    """Last-written scalar series (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, labels: "Mapping[str, str] | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> "dict[str, Any]":
        with self._lock:
            value = self._value
        return {"type": "metric", "kind": self.kind, "name": self.name, "labels": dict(self.labels), "value": value}


class Histogram:
    """Bucketed distribution (cumulative counts, Prometheus-style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: "Mapping[str, str] | None" = None,
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for i, upper in enumerate(self.buckets):
                if value <= upper:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``nan`` when empty)."""
        with self._lock:
            counts = list(self._counts)
        return quantile_from_counts(self.buckets, counts, q)

    def snapshot(self) -> "dict[str, Any]":
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        return {
            "type": "metric",
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": counts,
            "sum": total,
            "count": n,
        }


class MetricsRegistry:
    """Get-or-create registry of labeled metric series (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "dict[tuple[str, str, tuple[tuple[str, str], ...]], Counter | Gauge | Histogram]" = {}

    def _get_or_create(self, kind: str, name: str, labels: "Mapping[str, Any]", factory) -> Any:
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels, lambda: Counter(name, {k: str(v) for k, v in labels.items()}))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels, lambda: Gauge(name, {k: str(v) for k, v in labels.items()}))

    def histogram(self, name: str, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS, **labels: Any) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels, lambda: Histogram(name, {k: str(v) for k, v in labels.items()}, buckets)
        )

    def snapshot(self) -> "list[dict[str, Any]]":
        """One ``type: "metric"`` record per registered series."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [m.snapshot() for m in metrics]


class ObsLogger:
    """Run-level JSONL sink: steps, spans, and metric snapshots in one file.

    Drop-in for :class:`repro.metrics.runlog.RunLogger` where trainers
    accept a ``logger`` (same ``log_step`` signature), with flush-on-write
    so a crashed run still leaves a readable file.
    """

    def __init__(
        self,
        path: "str | pathlib.Path | None" = None,
        meta: "Mapping[str, Any] | None" = None,
    ) -> None:
        self.records: list[dict[str, Any]] = []
        self.path = pathlib.Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._fh: IO[str] | None = open(self.path, "w") if self.path is not None else None
        if meta:
            self.log(record_type="meta", **dict(meta))

    # ------------------------------------------------------------------
    def log(self, record_type: str = "step", **fields: Any) -> None:
        self.log_record({"type": record_type, **fields})

    def log_record(self, record: "dict[str, Any]") -> None:
        with self._lock:
            self.records.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record) + "\n")
                self._fh.flush()

    def log_step(
        self,
        step: int,
        loss: float,
        time_s: float | None = None,
        worker: int | None = None,
        staleness: int | None = None,
        **extra: Any,
    ) -> None:
        fields: dict[str, Any] = {"step": step, "loss": float(loss)}
        if time_s is not None:
            fields["time_s"] = float(time_s)
        if worker is not None:
            fields["worker"] = int(worker)
        if staleness is not None:
            fields["staleness"] = int(staleness)
        fields.update(extra)
        self.log(record_type="step", **fields)

    def log_spans(self, records: "list[dict[str, Any]]") -> None:
        for rec in records:
            self.log_record(rec)

    def log_metrics(self, registry: MetricsRegistry) -> None:
        for rec in registry.snapshot():
            self.log_record(rec)

    # ------------------------------------------------------------------
    def steps(self) -> "list[dict[str, Any]]":
        with self._lock:
            return [r for r in self.records if r.get("type") == "step"]

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "ObsLogger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
