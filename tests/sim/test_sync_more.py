"""Additional synchronous-trainer checks: Eq. (7) semantics and wire costs."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core import Hyper
from repro.sim import ClusterConfig, ComputeModel, LinkModel, SynchronousTrainer


def cluster(n=2, gbps=10, mean=0.05, het=0.0):
    return ClusterConfig(
        num_workers=n,
        compute=ComputeModel(mean_s=mean, jitter=0.0, heterogeneity=het),
        uplink=LinkModel.gbps(gbps),
        downlink=LinkModel.gbps(gbps),
        seed=0,
    )


class TestEq7Semantics:
    def test_one_round_applies_sum_of_updates(self, tiny_dataset, tiny_model_factory):
        """θ₁ = θ₀ − Σ_k η∇_k exactly (dense ASGD strategy, Eq. 7)."""
        from repro.core.layerops import parameters_of

        trainer = SynchronousTrainer(
            "asgd", tiny_model_factory, tiny_dataset, cluster(n=2),
            batch_size=16, rounds=1, hyper=Hyper(lr=0.1), seed=0,
        )
        theta0 = parameters_of(trainer.model)

        # Capture what each worker would send by replaying their loaders.
        from repro.data import DataLoader
        from repro.autograd import Tensor
        from repro.nn import cross_entropy
        from repro.core.layerops import gradients_of

        ref_model = tiny_model_factory()
        for name, p in ref_model.named_parameters():
            np.copyto(p.data, theta0[name])
        loader = DataLoader(tiny_dataset, 16, seed=0)
        expected_delta = {n: np.zeros_like(a) for n, a in theta0.items()}
        for w in range(2):
            it = loader.worker_iterator(w, 2)
            x, y = it.next_batch()
            loss = cross_entropy(ref_model(Tensor(x)), y)
            ref_model.zero_grad()
            loss.backward()
            for n, g in gradients_of(ref_model).items():
                expected_delta[n] += 0.1 * g

        trainer.run()
        theta1 = parameters_of(trainer.model)
        for n in theta0:
            np.testing.assert_allclose(theta1[n], theta0[n] - expected_delta[n], atol=1e-10)


class TestSyncWire:
    def test_upload_download_accounting(self, tiny_dataset, tiny_model_factory):
        trainer = SynchronousTrainer(
            "asgd", tiny_model_factory, tiny_dataset, cluster(n=3),
            batch_size=16, rounds=5, hyper=Hyper(lr=0.1), seed=0,
        )
        r = trainer.run()
        assert r.upload_bytes > 0
        # broadcast: one dense aggregate per worker per round
        assert r.download_bytes >= r.upload_bytes

    def test_low_bandwidth_slows_rounds(self, tiny_dataset, tiny_model_factory):
        fast = SynchronousTrainer(
            "asgd", tiny_model_factory, tiny_dataset, cluster(gbps=10, mean=0.01),
            batch_size=16, rounds=5, hyper=Hyper(lr=0.1), seed=0,
        ).run()
        slow = SynchronousTrainer(
            "asgd", tiny_model_factory, tiny_dataset, cluster(gbps=0.0001, mean=0.01),
            batch_size=16, rounds=5, hyper=Hyper(lr=0.1), seed=0,
        ).run()
        assert slow.makespan_s > fast.makespan_s

    def test_sparse_strategy_cheaper_upload(self, tiny_dataset, tiny_model_factory):
        h = Hyper(lr=0.1, momentum=0.7, ratio=0.02, min_sparse_size=0)
        dense = SynchronousTrainer(
            "asgd", tiny_model_factory, tiny_dataset, cluster(),
            batch_size=16, rounds=5, hyper=h, seed=0,
        ).run()
        sparse = SynchronousTrainer(
            "gd_async", tiny_model_factory, tiny_dataset, cluster(),
            batch_size=16, rounds=5, hyper=h, seed=0,
        ).run()
        assert sparse.upload_bytes < dense.upload_bytes / 5
