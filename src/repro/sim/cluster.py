"""Cluster configuration for the event-driven simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .network import LinkModel

__all__ = ["ClusterConfig", "ComputeModel"]


@dataclass
class ComputeModel:
    """Per-iteration compute time: lognormal jitter around a mean, with
    optional per-worker heterogeneity (stragglers)."""

    mean_s: float = 0.1
    jitter: float = 0.05  # std of the lognormal in log-space
    heterogeneity: float = 0.0  # per-worker speed spread (0 = homogeneous)

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ValueError("mean_s must be positive")
        if self.jitter < 0 or self.heterogeneity < 0:
            raise ValueError("jitter/heterogeneity must be non-negative")

    def worker_speed_factors(self, num_workers: int, rng: np.random.Generator) -> np.ndarray:
        """Per-worker multiplicative speed factors (1.0 ± heterogeneity)."""
        if self.heterogeneity == 0:
            return np.ones(num_workers)
        return np.exp(rng.normal(0.0, self.heterogeneity, size=num_workers))

    def sample(self, rng: np.random.Generator, speed_factor: float = 1.0) -> float:
        base = self.mean_s * speed_factor
        if self.jitter == 0:
            return base
        return float(base * np.exp(rng.normal(0.0, self.jitter)))


@dataclass
class ClusterConfig:
    """Everything the simulator needs to know about the 'hardware'."""

    num_workers: int = 4
    compute: ComputeModel = field(default_factory=ComputeModel)
    uplink: LinkModel = field(default_factory=lambda: LinkModel.gbps(10))
    downlink: LinkModel = field(default_factory=lambda: LinkModel.gbps(10))
    server_overhead_s: float = 1e-4  # per-message server processing time
    #: multiply every wire byte count by this factor.  Used to emulate the
    #: paper's ResNet-18 (≈46 MB dense) while computing with a micro model:
    #: compression *ratios* are unchanged, absolute transfer times match the
    #: deployment being modelled (DESIGN.md §2).
    wire_scale: float = 1.0
    #: 'full' — uplink and downlink are independent (full-duplex NIC);
    #: 'half' — both directions share one FIFO resource, which is how the
    #: paper's saturated server behaves (TCP incast + single NIC + server
    #: CPU all serialise).  The Fig. 5/6 presets use 'half'.
    duplex: str = "full"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.server_overhead_s < 0:
            raise ValueError("server_overhead_s must be non-negative")
        if self.wire_scale <= 0:
            raise ValueError("wire_scale must be positive")
        if self.duplex not in ("full", "half"):
            raise ValueError(f"duplex must be 'full' or 'half', got {self.duplex!r}")

    @staticmethod
    def with_bandwidth(
        num_workers: int,
        gbps: float,
        compute_mean_s: float = 0.1,
        seed: int = 0,
        **kwargs,
    ) -> "ClusterConfig":
        """Convenience: symmetric server link at ``gbps`` Gb/s."""
        return ClusterConfig(
            num_workers=num_workers,
            compute=ComputeModel(mean_s=compute_mean_s),
            uplink=LinkModel.gbps(gbps),
            downlink=LinkModel.gbps(gbps),
            seed=seed,
            **kwargs,
        )
