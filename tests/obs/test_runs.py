"""Run manifests, health gating, and cross-backend telemetry equivalence."""

import json
import math

import pytest

from repro.core.methods import Hyper
from repro.data.synthetic import make_blobs
from repro.exec import RunConfig, train
from repro.nn.models.mlp import MLP
from repro.obs import (
    HealthSpec,
    HealthViolation,
    Tracer,
    evaluate_health,
    git_sha,
    load_manifest,
    new_run_id,
    quantile_from_counts,
    render_compare,
    render_report,
    use_tracer,
    validate_chrome_trace,
    worker_skew_s,
    write_run_dir,
)
from repro.obs import names as obs_names


# ----------------------------------------------------------------------
# quantile_from_counts — the health checker's histogram fallback
# ----------------------------------------------------------------------
class TestQuantileFromCounts:
    def test_empty_is_nan(self):
        assert math.isnan(quantile_from_counts((1.0, 2.0), (0, 0, 0), 0.5))

    def test_single_bucket_interpolates(self):
        # all 10 observations in [0, 1): p50 lands mid-bucket
        q = quantile_from_counts((1.0, 2.0), (10, 0, 0), 0.5)
        assert 0.0 <= q <= 1.0

    def test_monotone_in_q(self):
        buckets, counts = (1.0, 2.0, 4.0), (5, 3, 2, 1)
        qs = [quantile_from_counts(buckets, counts, q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        assert quantile_from_counts((1.0, 2.0), (0, 0, 5), 0.99) == 2.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile_from_counts((1.0,), (1, 0), 1.5)


# ----------------------------------------------------------------------
# Manifest plumbing
# ----------------------------------------------------------------------
def test_new_run_id_is_unique_and_sortable():
    a, b = new_run_id(0.0), new_run_id(0.0)
    assert a != b
    assert a.startswith("19700101-000000-")


def test_git_sha_in_this_repo():
    sha = git_sha()
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


def _span(worker, ts, dur, proc=None):
    rec = {
        "type": "span",
        "name": obs_names.WORKER_STEP,
        "cat": "worker",
        "ts": ts,
        "dur": dur,
        "pid": 0,
        "tid": f"w{worker}",
        "domain": "wall",
        "args": {"worker": worker},
    }
    if proc is not None:
        rec["proc"] = proc
    return rec


class TestWorkerSkew:
    def test_spread_of_last_span_ends(self):
        records = [_span(0, 0.0, 1.0), _span(0, 5.0, 1.0), _span(1, 0.0, 2.5)]
        assert worker_skew_s(records) == pytest.approx(6.0 - 2.5)

    def test_single_worker_is_none(self):
        assert worker_skew_s([_span(0, 0.0, 1.0)]) is None

    def test_ignores_non_wall_and_non_span(self):
        virt = dict(_span(1, 100.0, 1.0), domain="virtual")
        assert worker_skew_s([_span(0, 0.0, 1.0), virt, {"type": "metric"}]) is None


RESULT = {
    "backend": "threaded",
    "method": "dgs",
    "num_workers": 2,
    "final_loss": 0.5,
    "samples_processed": 1000,
    "makespan_s": 2.0,
    "staleness_p99": 3.0,
    "metrics": [
        {
            "type": "metric",
            "name": obs_names.METRIC_SERVER_STALENESS,
            "kind": "histogram",
            "buckets": [1.0, 2.0, 4.0],
            "counts": [3, 2, 1, 0],
            "labels": {"worker": 0},
        }
    ],
}


class TestWriteAndLoad:
    def test_untraced_round_trip(self, tmp_path):
        run_dir = write_run_dir(tmp_path, dict(RESULT), run_id="r1", config={"seed": 0})
        manifest = load_manifest(run_dir)
        assert manifest["run_id"] == "r1"
        assert manifest["backend"] == "threaded"
        assert manifest["config"] == {"seed": 0}
        assert manifest["result"]["final_loss"] == 0.5
        assert manifest["worker_skew_s"] is None
        assert manifest["files"]["trace"] is None
        metrics = [json.loads(line) for line in (run_dir / "metrics.jsonl").read_text().splitlines()]
        assert metrics == RESULT["metrics"]

    def test_traced_run_writes_valid_chrome_trace(self, tmp_path):
        records = [_span(0, 0.0, 1.0, proc="worker-0"), _span(1, 0.0, 1.5, proc="worker-1")]
        run_dir = write_run_dir(tmp_path, dict(RESULT), run_id="r2", records=records)
        manifest = load_manifest(run_dir)
        assert manifest["worker_skew_s"] == pytest.approx(0.5)
        trace = json.loads((run_dir / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []

    def test_duck_typed_result_object(self, tmp_path):
        class R:
            def to_dict(self):
                return dict(RESULT)

        manifest = load_manifest(write_run_dir(tmp_path, R(), run_id="r3"))
        assert manifest["method"] == "dgs"

    def test_rejects_unresultlike_object(self, tmp_path):
        with pytest.raises(TypeError):
            write_run_dir(tmp_path, object())

    def test_extra_meta_lands_in_manifest(self, tmp_path):
        run_dir = write_run_dir(tmp_path, dict(RESULT), run_id="r4", extra_meta={"bench": "x"})
        assert load_manifest(run_dir)["bench"] == "x"


# ----------------------------------------------------------------------
# Health gating
# ----------------------------------------------------------------------
def _manifest(tmp_path, result=None, **kwargs):
    return load_manifest(write_run_dir(tmp_path, result or dict(RESULT), **kwargs))


class TestHealthSpec:
    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown HealthSpec"):
            HealthSpec.from_dict({"max_staleness_p99": 1, "max_latency": 2})

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text('{"max_staleness_p99": 4.5}')
        assert HealthSpec.from_file(path) == HealthSpec(max_staleness_p99=4.5)

    def test_healthy_run_has_no_violations(self, tmp_path):
        spec = HealthSpec(max_staleness_p99=8.0, min_samples_per_sec=10.0)
        assert evaluate_health(_manifest(tmp_path), spec) == []

    def test_staleness_violation(self, tmp_path):
        violations = evaluate_health(_manifest(tmp_path), HealthSpec(max_staleness_p99=0.5))
        assert [v.check for v in violations] == ["max_staleness_p99"]
        assert violations[0].observed == 3.0
        assert "0.5" in str(violations[0])

    def test_staleness_falls_back_to_histogram_estimate(self, tmp_path):
        result = dict(RESULT, staleness_p99=float("nan"))
        violations = evaluate_health(
            _manifest(tmp_path, result), HealthSpec(max_staleness_p99=0.5)
        )
        assert len(violations) == 1
        # interpolated from the bucketed series, not the (NaN) exact value
        assert 0.5 < violations[0].observed <= 4.0

    def test_missing_staleness_is_a_violation(self, tmp_path):
        result = dict(RESULT, staleness_p99=float("nan"), metrics=[])
        violations = evaluate_health(
            _manifest(tmp_path, result), HealthSpec(max_staleness_p99=8.0)
        )
        assert len(violations) == 1 and math.isnan(violations[0].observed)

    def test_throughput_violation(self, tmp_path):
        violations = evaluate_health(
            _manifest(tmp_path), HealthSpec(min_samples_per_sec=1e9)
        )
        assert [v.check for v in violations] == ["min_samples_per_sec"]
        assert violations[0].observed == pytest.approx(500.0)

    def test_skew_skipped_when_untraced(self, tmp_path):
        # no trace ⇒ skew unknowable ⇒ the check is skipped, not failed
        spec = HealthSpec(max_worker_skew_s=0.0)
        assert evaluate_health(_manifest(tmp_path), spec) == []

    def test_skew_violation_when_traced(self, tmp_path):
        records = [_span(0, 0.0, 1.0), _span(1, 0.0, 9.0)]
        manifest = _manifest(tmp_path, records=records)
        violations = evaluate_health(manifest, HealthSpec(max_worker_skew_s=1.0))
        assert [v.check for v in violations] == ["max_worker_skew_s"]

    def test_violation_str_is_readable(self):
        v = HealthViolation("max_staleness_p99", 2.0, 5.0, "detail here")
        assert "observed 5" in str(v) and "limit 2" in str(v) and "detail here" in str(v)


class TestReports:
    def test_report_names_run_and_staleness(self, tmp_path):
        result = dict(RESULT, worker_staleness={"0": {"count": 3, "mean": 1.0, "p50": 1, "p99": 2}})
        text = render_report(_manifest(tmp_path, result, run_id="rep"))
        assert "rep" in text and "dgs" in text and "staleness_p99" in text
        assert "per-worker staleness" in text

    def test_compare_shows_delta(self, tmp_path):
        a = _manifest(tmp_path, run_id="a")
        b = _manifest(tmp_path, dict(RESULT, final_loss=0.25), run_id="b")
        text = render_compare(a, b)
        assert "final_loss" in text and "-50.0%" in text


# ----------------------------------------------------------------------
# Cross-backend lane equivalence (dense ASGD)
# ----------------------------------------------------------------------
WORKER_SPAN_NAMES = {
    obs_names.WORKER_STEP,
    obs_names.WORKER_COMPUTE,
    obs_names.WORKER_APPLY,
}


def _traced_run(backend):
    tracer = Tracer()
    config = RunConfig(
        "asgd",
        lambda: MLP(8, (16,), 3, seed=5),
        make_blobs(n_samples=128, num_classes=3, dim=8, seed=2),
        num_workers=2,
        batch_size=16,
        total_iterations=8,
        hyper=Hyper(ratio=1.0),
        seed=0,
        tracer=tracer,
    )
    with use_tracer(tracer):
        train(config, backend=backend)
    return tracer.records()


def _worker_lanes(records):
    """worker id → span-name set, keyed off the ``worker`` span arg."""
    lanes: "dict[int, set[str]]" = {}
    for r in records:
        if r.get("type") != "span" or r.get("cat") != "worker":
            continue
        worker = r.get("args", {}).get("worker")
        if isinstance(worker, int):
            lanes.setdefault(worker, set()).add(r["name"])
    return lanes


@pytest.mark.slow
def test_backends_produce_lane_equivalent_traces():
    """The same dense ASGD job traced on threaded (one process), process
    (spans shipped back as TelemetryFrames, one lane per worker process),
    and simulated (virtual clock) must cover the same workers and agree on
    the worker span vocabulary — shipping must not drop or invent kinds."""
    traces = {b: _traced_run(b) for b in ("threaded", "process", "simulated")}
    lanes = {b: _worker_lanes(records) for b, records in traces.items()}

    # Every backend traced both workers.
    for backend, worker_lanes in lanes.items():
        assert set(worker_lanes) == {0, 1}, f"{backend}: {sorted(worker_lanes)}"

    # Wall-clock backends emit the identical per-worker vocabulary; the
    # simulator's virtual lanes contain its compute spans for each worker.
    for worker in (0, 1):
        assert lanes["threaded"][worker] & WORKER_SPAN_NAMES == (
            lanes["process"][worker] & WORKER_SPAN_NAMES
        )
        assert WORKER_SPAN_NAMES <= lanes["threaded"][worker]
        assert obs_names.WORKER_COMPUTE in lanes["simulated"][worker]

    # The process workers' spans arrived via TelemetryFrame with one proc
    # lane per worker process in the merged trace.
    procs = {r.get("proc") for r in traces["process"] if r.get("type") == "span" and r.get("proc")}
    assert procs == {"worker-0", "worker-1"}
