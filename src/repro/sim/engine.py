"""Event-driven simulator for asynchronous PS training.

Runs *real* training (actual forward/backward passes, actual compression)
under a *virtual* clock: compute times are drawn from the cluster's compute
model and message transfer times follow byte-accurate wire sizes through
the shared server link (``repro.sim.network``).  Gradient staleness arises
naturally from the event ordering, exactly as on the paper's testbed.

Correctness of the chronology: worker lifecycles are strictly sequential
(compute → upload → server → download), the uplink is FIFO, and the event
heap pops upload-ready events in time order — so server updates are applied
in the order they would arrive on the wire.

Prefer the unified front-end (``repro.exec.Trainer`` with
``backend="simulated"``, the default backend); this class remains the
underlying engine and a thin public adapter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.layerops import parameters_of
from ..core.methods import Hyper, MethodSpec
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..exec.common import (
    build_server,
    build_workers,
    evaluate_global,
    resolve_hyper,
    resolve_method,
    resolve_schedule,
)
from ..exec.result import TrainResult
from ..metrics.curves import Curve
from ..metrics.meters import EMAMeter
from ..nn.module import Module
from ..obs import names as obs_names
from ..obs.tracer import NullTracer, Tracer, current_tracer
from ..optim.schedules import Schedule
from ..ps.worker import WorkerNode
from .cluster import ClusterConfig
from .network import SharedLink

__all__ = ["SimulatedTrainer", "SimResult", "TraceEvent"]

#: deprecated alias — the simulator now returns the unified schema
SimResult = TrainResult


@dataclass(frozen=True)
class TraceEvent:
    """One worker↔server exchange in the virtual timeline (record_trace)."""

    worker: int
    local_iteration: int
    ready_t: float  # gradient finished computing
    up_start: float  # upload began transmitting
    up_end: float  # upload fully received
    server_t: float  # server applied the update
    down_end: float  # download fully received at the worker
    staleness: int
    up_bytes: int  # unscaled message bytes
    down_bytes: int


class SimulatedTrainer:
    """Simulate one asynchronous training run of ``method`` on ``dataset``."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        cluster: ClusterConfig,
        batch_size: int,
        total_iterations: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        eval_every: int | None = None,
        staleness_damping: bool = False,
        num_shards: int = 1,
        fail_at: "dict[int, int] | None" = None,
        record_trace: bool = False,
        logger: "object | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        seed: int = 0,
        arena: bool = False,
        arena_dtype: "object | None" = None,
    ) -> None:
        self.method = resolve_method(method)
        if total_iterations < 1:
            raise ValueError("total_iterations must be >= 1")
        self.hyper = resolve_hyper(hyper)
        self.schedule = resolve_schedule(schedule, self.hyper)
        self.dataset = dataset
        self.cluster = cluster
        self.batch_size = batch_size
        self.total_iterations = total_iterations
        self.eval_every = eval_every
        #: failure injection: worker id -> local iteration at which it
        #: crashes (stops producing updates; its server-side v_k persists).
        self.fail_at = fail_at or {}
        self.record_trace = record_trace
        #: optional repro.metrics.runlog.RunLogger for per-step telemetry
        self.logger = logger
        #: explicit repro.obs tracer; None ⇒ the ambient tracer at run time.
        #: Spans are stamped with the *virtual* clock (same schema as the
        #: threaded trainer's wall-clock spans; TraceEvent is the legacy
        #: tuple view of the same timeline).
        self.tracer = tracer
        self._rng = np.random.default_rng(cluster.seed * 7919 + seed)

        num_workers = cluster.num_workers
        loader = DataLoader(dataset, batch_size, seed=seed)
        ref_model = model_factory()
        theta0 = parameters_of(ref_model)
        self.server = build_server(
            self.method,
            theta0,
            num_workers,
            self.hyper,
            secondary_compression=secondary_compression,
            staleness_damping=staleness_damping,
            arena=arena,
            arena_dtype=arena_dtype,
            num_shards=num_shards,
        )
        # Worker 0 reuses the reference model (its BatchNorm statistics
        # then reflect actual training data for _evaluate_global).
        self.workers: list[WorkerNode] = build_workers(
            num_workers,
            model_factory,
            loader,
            self.method,
            self.hyper,
            self.schedule,
            theta0,
            first_model=ref_model,
            arena=arena,
            arena_dtype=arena_dtype,
        )

        self.uplink = SharedLink(cluster.uplink)
        # Half-duplex: both directions contend for the same FIFO resource.
        self.downlink = self.uplink if cluster.duplex == "half" else SharedLink(cluster.downlink)
        self._speed = cluster.compute.worker_speed_factors(num_workers, self._rng)

    # ------------------------------------------------------------------
    def run(self) -> TrainResult:
        cluster = self.cluster
        compute = cluster.compute
        loss_vs_step = Curve("loss_vs_step")
        loss_vs_time = Curve("loss_vs_time")
        acc_vs_step = Curve("acc_vs_step")
        loss_ema = EMAMeter(beta=0.9)

        # Event heap: (upload_ready_time, tiebreak, worker_id).
        heap: list[tuple[float, int, int]] = []
        seq = 0
        for node in self.workers:
            t0 = compute.sample(self._rng, self._speed[node.worker_id])
            heapq.heappush(heap, (t0, seq, node.worker_id))
            seq += 1

        makespan = 0.0
        applied = 0
        trace: "list[TraceEvent] | None" = [] if self.record_trace else None
        tracer = self.tracer if self.tracer is not None else current_tracer()
        emit_spans = tracer.enabled
        # All exchanges route through the comm layer: the transport owns the
        # shared link pair, the wire scaling, the byte accounting and the
        # comm.send / server.handle / comm.recv virtual spans.
        from ..comm.channel import ServerService  # lazy: comm imports ps
        from ..comm.frames import GradientFrame
        from ..comm.sim import SimChannel, SimTransport

        transport = SimTransport(
            self.uplink,
            self.downlink,
            wire_scale=cluster.wire_scale,
            server_overhead_s=cluster.server_overhead_s,
            stats=self.server.stats,
            tracer=tracer,
        )
        service = ServerService(self.server)
        channels = {
            node.worker_id: SimChannel(transport, service, node.worker_id)
            for node in self.workers
        }
        compute_start = {node.worker_id: 0.0 for node in self.workers}
        while heap and applied < self.total_iterations:
            ready_t, _, wid = heapq.heappop(heap)
            node = self.workers[wid]
            if node.iteration >= self.fail_at.get(wid, np.inf):
                continue  # injected crash: the in-flight update is lost

            msg = node.compute_step()
            reply_frame, transfer = channels[wid].exchange(
                ready_t, GradientFrame(msg, node.last_loss)
            )
            reply = reply_frame.message
            node.apply_reply(reply)
            if trace is not None:
                trace.append(
                    TraceEvent(
                        worker=wid,
                        local_iteration=node.iteration - 1,
                        ready_t=ready_t,
                        up_start=transfer.up_start,
                        up_end=transfer.up_end,
                        server_t=transfer.server_end,
                        down_end=transfer.down_end,
                        staleness=reply.staleness,
                        up_bytes=transfer.up_bytes,
                        down_bytes=transfer.down_bytes,
                    )
                )
            if emit_spans:
                tracer.add_span(
                    obs_names.WORKER_COMPUTE,
                    compute_start[wid],
                    ready_t,
                    tid=f"worker-{wid}",
                    cat="worker",
                    domain="virtual",
                    args={"worker": wid, "iteration": node.iteration - 1},
                )
            compute_start[wid] = transfer.down_end

            applied += 1
            makespan = transfer.server_end
            smoothed = loss_ema.update(node.last_loss)
            loss_vs_step.add(applied, smoothed)
            loss_vs_time.add(transfer.server_end, smoothed)
            if self.logger is not None:
                self.logger.log_step(
                    applied,
                    node.last_loss,
                    time_s=transfer.server_end,
                    worker=wid,
                    staleness=reply.staleness,
                    up_bytes=transfer.up_bytes,
                    down_bytes=transfer.down_bytes,
                )
            if self.eval_every is not None and applied % self.eval_every == 0:
                acc, _ = self._evaluate_global()
                acc_vs_step.add(applied, acc)

            if applied + len(heap) < self.total_iterations:
                next_ready = transfer.down_end + compute.sample(self._rng, self._speed[wid])
                heapq.heappush(heap, (next_ready, seq, wid))
                seq += 1

        final_acc, final_loss = self._evaluate_global()
        if self.eval_every is not None and (not len(acc_vs_step) or acc_vs_step.xs[-1] < applied):
            acc_vs_step.add(applied, final_acc)

        staleness_summary = self.server.staleness_summary()
        return TrainResult(
            method=self.method.name,
            backend="simulated",
            num_workers=cluster.num_workers,
            num_shards=getattr(self.server, "num_shards", 1),
            final_accuracy=final_acc,
            final_loss=final_loss,
            loss_vs_step=loss_vs_step,
            loss_vs_time=loss_vs_time,
            acc_vs_step=acc_vs_step,
            makespan_s=makespan,
            clock="virtual",
            total_iterations=applied,
            samples_processed=sum(n.samples_processed for n in self.workers),
            mean_staleness=self.server.staleness_meter.avg,
            staleness_p50=staleness_summary["p50"],
            staleness_p99=staleness_summary["p99"],
            worker_staleness=staleness_summary["per_worker"],
            metrics=self.server.metrics.snapshot(),
            upload_bytes=self.server.stats.upload_bytes,
            download_bytes=self.server.stats.download_bytes,
            upload_dense_bytes=self.server.stats.upload_dense_bytes,
            download_dense_bytes=self.server.stats.download_dense_bytes,
            uplink_utilisation=self.uplink.utilisation(makespan),
            downlink_utilisation=self.downlink.utilisation(makespan),
            server_state_bytes=self.server.server_state_bytes(),
            worker_state_bytes=sum(n.worker_state_bytes() for n in self.workers),
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _evaluate_global(self) -> tuple[float, float]:
        """Accuracy/loss of θ_0 + M on the validation split.

        Worker 0's replica supplies BatchNorm running statistics (they are
        trained locally and are not part of the PS exchange)."""
        return evaluate_global(self.workers[0].model, self.server, self.dataset)
