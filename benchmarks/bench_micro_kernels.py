"""Micro-benchmarks of the hot kernels (classic pytest-benchmark usage).

These are the per-iteration costs every experiment pays: top-k selection
(exact vs the sampled adaptive variant), COO encoding, SAMomentum's
prepare step, conv2d forward+backward, and one simulator exchange.  Each
selection/encode/strategy kernel appears twice — the dict-of-float64
reference path and the arena/workspace path — mirroring the pairs that
``check_regression.py`` gates against ``BENCH_kernels.json``.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.compression import (
    AdaptiveThresholdSparsifier,
    KernelWorkspace,
    TopKSparsifier,
    encode_indices,
    encode_mask,
    topk_mask,
    topk_select,
)
from repro.core import Hyper
from repro.core.arena import LayerArena
from repro.core.strategies import SAMomentumStrategy

N = 1_000_000  # ~ one large conv layer of ResNet-18


@pytest.fixture(scope="module")
def big_layer():
    return np.random.default_rng(0).normal(size=N)


class TestSelectionKernels:
    def test_exact_topk_1pct(self, benchmark, big_layer):
        mask = benchmark(topk_mask, big_layer, 0.01)
        assert mask.sum() == N // 100

    def test_adaptive_threshold_1pct(self, benchmark, big_layer):
        sp = AdaptiveThresholdSparsifier(0.01, min_sparse_size=0)
        sp.mask(big_layer)  # warm the tracked threshold
        mask = benchmark(sp.mask, big_layer)
        assert 0 < mask.sum() < N // 10

    def test_exact_topk_1pct_workspace(self, benchmark, big_layer):
        ws = KernelWorkspace()
        mask = benchmark(topk_mask, big_layer, 0.01, ws)
        assert mask.sum() == N // 100

    def test_topk_select_fused(self, benchmark, big_layer):
        """Fused select-and-extract: argpartition straight to SparseTensor."""
        ws = KernelWorkspace()
        st = benchmark(topk_select, big_layer, 0.01, ws)
        assert st.nnz == N // 100

    def test_coo_encode(self, benchmark, big_layer):
        mask = topk_mask(big_layer, 0.01)
        st = benchmark(encode_mask, big_layer, mask)
        assert st.nnz == N // 100

    def test_coo_encode_from_indices(self, benchmark, big_layer):
        """O(k) gather from known sorted indices vs O(n) mask scan above."""
        ws = KernelWorkspace()
        idx = np.flatnonzero(topk_mask(big_layer, 0.01))
        st = benchmark(encode_indices, big_layer, idx, ws, assume_sorted=True)
        assert st.nnz == N // 100


class TestStrategyKernels:
    def test_samomentum_prepare(self, benchmark, big_layer):
        shapes = OrderedDict([("w", (N,))])
        strat = SAMomentumStrategy(shapes, TopKSparsifier(0.01, min_sparse_size=0), 0.7)
        grads = OrderedDict([("w", big_layer)])
        out = benchmark(strat.prepare, grads, 0.1)
        assert out["w"].nnz == N // 100

    def test_samomentum_prepare_arena(self, benchmark, big_layer):
        shapes = OrderedDict([("w", (N,))])
        strat = SAMomentumStrategy(
            shapes, TopKSparsifier(0.01, min_sparse_size=0), 0.7, arena=True
        )
        grads = OrderedDict([("w", big_layer)])
        out = benchmark(strat.prepare, grads, 0.1)
        assert out["w"].nnz == N // 100


class TestArenaKernels:
    """Server-side payload application: dict loop vs one fused flat op."""

    LAYERS = 48

    def _shapes(self):
        per = N // (2 * self.LAYERS)
        shapes = OrderedDict(
            (f"layer{i:02d}", (per if i % 2 == 0 else per // 2,))
            for i in range(self.LAYERS - 1)
        )
        used = sum(s[0] for s in shapes.values())
        shapes["layer_final"] = (N - used,)
        return shapes

    def test_payload_apply_dict(self, benchmark):
        rng = np.random.default_rng(0)
        shapes = self._shapes()
        m = OrderedDict((name, np.zeros(s)) for name, s in shapes.items())
        upd = OrderedDict((name, rng.normal(size=s)) for name, s in shapes.items())

        def apply_dict():
            for name, g in upd.items():
                m[name] -= g

        benchmark(apply_dict)

    def test_payload_apply_arena(self, benchmark):
        rng = np.random.default_rng(0)
        shapes = self._shapes()
        m = LayerArena(shapes, dtype=np.float32)
        upd = LayerArena.from_layers(
            OrderedDict((name, rng.normal(size=s)) for name, s in shapes.items()),
            dtype=np.float32,
        )
        benchmark(m.add_payload, upd, -1.0)


class TestSubstrateKernels:
    def test_conv2d_forward_backward(self, benchmark):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(32, 16, 8, 8)), requires_grad=True)
        w = Tensor(rng.normal(size=(32, 16, 3, 3)), requires_grad=True)

        def step():
            x.zero_grad()
            w.zero_grad()
            out = conv2d(x, w, None, stride=1, pad=1)
            out.backward(np.ones_like(out.data))
            return out

        out = benchmark(step)
        assert out.shape == (32, 32, 8, 8)

    def test_simulator_exchange(self, benchmark, tiny_setup):
        """One full worker↔server exchange (compute+compress+apply)."""
        trainer = tiny_setup

        def exchange():
            node = trainer.workers[0]
            msg = node.compute_step()
            reply = trainer.server.handle(msg)
            node.apply_reply(reply)
            return reply

        reply = benchmark(exchange)
        assert reply is not None


@pytest.fixture(scope="module")
def tiny_setup():
    from repro.data import make_blobs
    from repro.nn import MLP
    from repro.sim import ClusterConfig, SimulatedTrainer

    ds = make_blobs(n_samples=400, num_classes=4, dim=12, seed=1)
    return SimulatedTrainer(
        "dgs",
        lambda: MLP(12, (24,), 4, seed=7),
        ds,
        ClusterConfig.with_bandwidth(2, 10, compute_mean_s=0.01),
        batch_size=16,
        total_iterations=10,
        hyper=Hyper(ratio=0.1, min_sparse_size=0),
        seed=0,
    )
