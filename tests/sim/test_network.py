"""Network model: transfer times, FIFO link sharing."""

import pytest

from repro.sim import GBPS, LinkModel, SharedLink


class TestLinkModel:
    def test_transfer_time(self):
        link = LinkModel(bandwidth_bytes_per_s=1000, latency_s=0.01)
        assert link.transfer_time(500) == pytest.approx(0.01 + 0.5)

    def test_gbps_constructor(self):
        link = LinkModel.gbps(1)
        assert link.bandwidth_bytes_per_s == pytest.approx(1e9 / 8)

    def test_ten_gbps_is_ten_times_faster(self):
        b1 = LinkModel.gbps(1, latency_s=0).transfer_time(10**6)
        b10 = LinkModel.gbps(10, latency_s=0).transfer_time(10**6)
        assert b1 == pytest.approx(10 * b10)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(0)
        with pytest.raises(ValueError):
            LinkModel(1, latency_s=-1)


class TestSharedLink:
    def test_idle_link_starts_immediately(self):
        link = SharedLink(LinkModel(1000, latency_s=0))
        start, end = link.reserve(5.0, 1000)
        assert start == 5.0 and end == pytest.approx(6.0)

    def test_fifo_queuing(self):
        link = SharedLink(LinkModel(1000, latency_s=0))
        _, end1 = link.reserve(0.0, 2000)  # busy until t=2
        start2, end2 = link.reserve(0.5, 1000)
        assert start2 == pytest.approx(2.0)
        assert end2 == pytest.approx(3.0)

    def test_gap_leaves_link_idle(self):
        link = SharedLink(LinkModel(1000, latency_s=0))
        link.reserve(0.0, 1000)  # ends at 1
        start, _ = link.reserve(10.0, 1000)
        assert start == 10.0

    def test_busy_time_and_utilisation(self):
        link = SharedLink(LinkModel(1000, latency_s=0))
        link.reserve(0.0, 500)
        link.reserve(0.0, 500)
        assert link.busy_time == pytest.approx(1.0)
        assert link.utilisation(2.0) == pytest.approx(0.5)
        assert link.transfers == 2

    def test_negative_ready_time_rejected(self):
        link = SharedLink(LinkModel(1000))
        with pytest.raises(ValueError):
            link.reserve(-1.0, 10)

    def test_utilisation_zero_horizon(self):
        assert SharedLink(LinkModel(1000)).utilisation(0.0) == 0.0
