"""§1/§6 ablation — synchronous vs asynchronous training on one simulator.

Two claims framed by the paper's introduction and conclusion:

* §1: SSGD "may suffer from worker lags" — with heterogeneous workers the
  barrier wastes straggler time, so async throughput wins;
* §6: "SAMomentum is a general design and can be used to design new
  synchronization training approaches" — running the DGS worker strategy
  under the synchronous barrier must still train well.
"""

from __future__ import annotations

from ...exec import RunConfig, train
from ...sim.cluster import ClusterConfig, ComputeModel
from ...sim.network import LinkModel
from ..config import get_workload
from ..report import ExperimentReport
from .common import resolve_fast

__all__ = ["run"]


def _cluster(num_workers: int, heterogeneity: float, model, seed: int = 0) -> ClusterConfig:
    from ..config import RESNET18_WIRE_BYTES

    return ClusterConfig(
        num_workers=num_workers,
        compute=ComputeModel(mean_s=0.2, jitter=0.1, heterogeneity=heterogeneity),
        uplink=LinkModel.gbps(10),
        downlink=LinkModel.gbps(10),
        wire_scale=RESNET18_WIRE_BYTES / (4 * model.num_parameters()),
        duplex="half",
        seed=seed,
    )


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    wl = get_workload("cifar10")
    seed = seeds[0]
    num_workers = 4 if fast else 8
    dataset = wl.dataset(fast)
    epochs = wl.epochs
    total_iters = max(1, epochs * dataset.n_train // wl.batch_size)
    factory = wl.model_factory(seed)

    report = ExperimentReport(
        experiment_id="Sec 1/6 (sync vs async)",
        title=f"SSGD barrier vs asynchronous training, {num_workers} workers",
        headers=("Cluster", "Method", "Top-1 Accuracy", "Throughput (samples/s)", "Barrier loss (s/worker)"),
    )
    for label, het in (("homogeneous", 0.0), ("stragglers (×2 spread)", 0.6)):
        cluster = _cluster(num_workers, het, factory(), seed)
        # Same RunConfig on two backends: the barrier's rounds() slices the
        # identical global budget into num_workers-gradient rounds (Eq. 7).
        for mode, method, backend in (
            ("SSGD", "asgd", "sync"),
            ("sync-SAM (§6)", "dgs", "sync"),
            ("ASGD", "asgd", "simulated"),
            ("DGS", "dgs", "simulated"),
        ):
            config = RunConfig(
                method,
                factory,
                dataset,
                num_workers=num_workers,
                batch_size=wl.batch_size,
                total_iterations=total_iters,
                hyper=wl.hyper,
                schedule=wl.schedule(epochs),
                seed=seed,
                cluster=cluster,
            )
            r = train(config, backend=backend)
            barrier = f"{r.straggler_time_s:.1f}" if backend == "sync" else "-"
            report.add_row(label, mode, f"{100 * r.final_accuracy:.2f}%", f"{r.throughput:.0f}", barrier)
    report.add_note(
        "Expected shape: with stragglers, asynchronous throughput beats the barrier "
        "(§1); the synchronous SAMomentum variant trains to comparable accuracy (§6)."
    )
    return report
