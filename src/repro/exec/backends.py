"""The five built-in execution backends.

Each adapter maps the backend-independent :class:`RunConfig` onto one
engine's native constructor and declares which optional ``TrainResult``
fields it guarantees to populate.  The engines themselves live where they
always did (``repro.ps.threaded``, ``repro.ps.process``,
``repro.ps.socket``, ``repro.sim.engine``, ``repro.sim.sync``); the
adapters are the only place that knows their constructor signatures.
"""

from __future__ import annotations

from .backend import apply_config_overrides, notify_result, register_backend
from .config import RunConfig
from .result import TrainResult

__all__ = [
    "ThreadedBackend",
    "ProcessBackend",
    "SocketBackend",
    "SimulatedBackend",
    "SyncBackend",
]

#: optional fields every parameter-server backend measures
_PS_MEASURES = frozenset(
    {
        "makespan_s",
        "clock",
        "upload_dense_bytes",
        "download_dense_bytes",
        "server_state_bytes",
        "worker_state_bytes",
        "worker_staleness",
        "metrics",
    }
)


class _BackendBase:
    """run() = create() + run(); subclasses implement create()."""

    name = ""
    clock = ""
    measures: "frozenset[str]" = frozenset()

    def create(self, config: RunConfig):
        raise NotImplementedError

    def run(self, config: RunConfig) -> TrainResult:
        config = apply_config_overrides(config)  # CLI-level field overlays
        result = self.create(config).run()
        notify_result(config, result)
        return result


class ThreadedBackend(_BackendBase):
    """Real OS threads against a lock-protected parameter server."""

    name = "threaded"
    clock = "wall"
    measures = _PS_MEASURES

    def create(self, config: RunConfig):
        from ..ps.threaded import ThreadedTrainer

        return ThreadedTrainer(
            config.method,
            config.model_factory,
            config.dataset,
            num_workers=config.num_workers,
            batch_size=config.batch_size,
            iterations_per_worker=config.iterations_per_worker(),
            hyper=config.hyper,
            schedule=config.schedule,
            secondary_compression=config.secondary_compression,
            staleness_damping=config.staleness_damping,
            num_shards=config.num_shards,
            seed=config.seed,
            tracer=config.tracer,
            wire_fidelity=config.wire_fidelity,
            arena=config.arena,
            arena_dtype=config.arena_dtype,
            register=config.register,
            checkpoint_every=config.checkpoint_every,
            checkpoint_path=config.checkpoint_path,
            restore_from=config.restore_from,
        )


class ProcessBackend(_BackendBase):
    """Real OS processes exchanging actual bytes over pipes."""

    name = "process"
    clock = "wall"
    measures = _PS_MEASURES | {"wire_bytes_up", "wire_bytes_down"}

    def create(self, config: RunConfig):
        from ..ps.process import ProcessTrainer

        return ProcessTrainer(
            config.method,
            config.model_factory,
            config.dataset,
            num_workers=config.num_workers,
            batch_size=config.batch_size,
            iterations_per_worker=config.iterations_per_worker(),
            hyper=config.hyper,
            schedule=config.schedule,
            secondary_compression=config.secondary_compression,
            staleness_damping=config.staleness_damping,
            num_shards=config.num_shards,
            seed=config.seed,
            fail_at=config.fail_at,
            tracer=config.tracer,
            arena=config.arena,
            arena_dtype=config.arena_dtype,
            shard_parallel=config.shard_parallel,
        )


class SocketBackend(_BackendBase):
    """Real TCP connections with elastic workers and checkpoint/restore.

    The deployment-shaped backend: the server binds a listener (loopback-
    ephemeral unless ``config.bind`` says otherwise), forked workers
    *connect* and register through the membership handshake, stragglers
    can be evicted (``evict_after_s``), and the server state checkpoints
    to one contiguous file (``checkpoint_every``/``restore_from``).
    """

    name = "socket"
    clock = "wall"
    measures = _PS_MEASURES | {"wire_bytes_up", "wire_bytes_down"}

    def create(self, config: RunConfig):
        from ..ps.socket import SocketTrainer

        return SocketTrainer(
            config.method,
            config.model_factory,
            config.dataset,
            num_workers=config.num_workers,
            batch_size=config.batch_size,
            iterations_per_worker=config.iterations_per_worker(),
            hyper=config.hyper,
            schedule=config.schedule,
            secondary_compression=config.secondary_compression,
            staleness_damping=config.staleness_damping,
            num_shards=config.num_shards,
            seed=config.seed,
            fail_at=config.fail_at,
            join_delay_s=config.join_delay_s,
            evict_after_s=config.evict_after_s,
            checkpoint_every=config.checkpoint_every,
            checkpoint_path=config.checkpoint_path,
            restore_from=config.restore_from,
            bind=config.bind,
            tracer=config.tracer,
            arena=config.arena,
            arena_dtype=config.arena_dtype,
            shard_parallel=config.shard_parallel,
        )


class SimulatedBackend(_BackendBase):
    """Event-driven virtual-clock simulation with a modelled network."""

    name = "simulated"
    clock = "virtual"
    measures = _PS_MEASURES | {
        "loss_vs_time",
        "uplink_utilisation",
        "downlink_utilisation",
    }

    def create(self, config: RunConfig):
        from ..sim.engine import SimulatedTrainer

        return SimulatedTrainer(
            config.method,
            config.model_factory,
            config.dataset,
            _checked_cluster(config),
            batch_size=config.batch_size,
            total_iterations=config.total_iterations,
            hyper=config.hyper,
            schedule=config.schedule,
            secondary_compression=config.secondary_compression,
            eval_every=config.eval_every,
            staleness_damping=config.staleness_damping,
            num_shards=config.num_shards,
            fail_at=config.fail_at,
            record_trace=config.record_trace,
            logger=config.logger,
            tracer=config.tracer,
            seed=config.seed,
            arena=config.arena,
            arena_dtype=config.arena_dtype,
        )


class SyncBackend(_BackendBase):
    """Barrier-synchronised SSGD reference on the virtual cluster."""

    name = "sync"
    clock = "virtual"
    measures = frozenset(
        {
            "makespan_s",
            "clock",
            "loss_vs_time",
            "upload_dense_bytes",
            "download_dense_bytes",
            "uplink_utilisation",
            "downlink_utilisation",
            "worker_state_bytes",
            "rounds",
            "straggler_time_s",
        }
    )

    def create(self, config: RunConfig):
        from ..sim.sync import SynchronousTrainer

        return SynchronousTrainer(
            config.method,
            config.model_factory,
            config.dataset,
            _checked_cluster(config),
            batch_size=config.batch_size,
            rounds=config.rounds(),
            hyper=config.hyper,
            schedule=config.schedule,
            seed=config.seed,
            arena=config.arena,
            arena_dtype=config.arena_dtype,
        )


def _checked_cluster(config: RunConfig):
    """The resolved virtual cluster; its worker count must match the config.

    The simulated/sync engines size themselves from the cluster, so a
    disagreement would silently drop (or invent) workers."""
    cluster = config.resolved_cluster()
    if cluster.num_workers != config.num_workers:
        raise ValueError(
            f"RunConfig.num_workers={config.num_workers} disagrees with "
            f"cluster.num_workers={cluster.num_workers}"
        )
    return cluster


register_backend(ThreadedBackend())
register_backend(ProcessBackend())
register_backend(SocketBackend())
register_backend(SimulatedBackend())
register_backend(SyncBackend())
