"""SGD optimizer semantics."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD


def make_param(values):
    p = Parameter(np.asarray(values, dtype=float))
    return p


class TestVanillaSGD:
    def test_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_skips_none_grads(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, momentum=1.0)


class TestMomentum:
    def test_velocity_recurrence(self):
        """u_t = m u_{t-1} + lr g; w -= u — Eq. (7) with N=1."""
        p = make_param([0.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        u = 0.0
        w = 0.0
        for step in range(5):
            g = float(step + 1)
            p.grad = np.array([g])
            opt.step()
            u = 0.9 * u + 0.1 * g
            w -= u
            np.testing.assert_allclose(p.data, [w], rtol=1e-12)

    def test_momentum_accelerates_constant_gradient(self):
        plain, mom = make_param([0.0]), make_param([0.0])
        opt_p = SGD([plain], lr=0.1)
        opt_m = SGD([mom], lr=0.1, momentum=0.9)
        for _ in range(20):
            plain.grad = np.array([1.0])
            mom.grad = np.array([1.0])
            opt_p.step()
            opt_m.step()
        assert abs(mom.data[0]) > abs(plain.data[0])

    def test_nesterov_differs(self):
        a, b = make_param([0.0]), make_param([0.0])
        oa = SGD([a], lr=0.1, momentum=0.9)
        ob = SGD([b], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(3):
            a.grad = np.array([1.0])
            b.grad = np.array([1.0])
            oa.step()
            ob.step()
        assert a.data[0] != b.data[0]

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([0.0])], lr=0.1, nesterov=True)

    def test_velocity_bytes(self):
        p = make_param(np.zeros(100))
        opt = SGD([p], lr=0.1, momentum=0.9)
        assert opt.velocity_bytes() == 0
        p.grad = np.zeros(100)
        opt.step()
        assert opt.velocity_bytes() == 800


class TestWeightDecay:
    def test_decay_applied(self):
        p = make_param([1.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])
