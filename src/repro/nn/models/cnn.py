"""Small convolutional classifier for image-shaped synthetic data."""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ..conv import Conv2d, GlobalAvgPool2d, MaxPool2d
from ..layers import Linear, ReLU
from ..module import Module
from ..norm import BatchNorm2d

__all__ = ["SimpleCNN"]


class SimpleCNN(Module):
    """conv-BN-ReLU ×2 with pooling, then a linear head.

    Input: (N, in_channels, H, W) with H, W divisible by 4.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        width: int = 8,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(width)
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(width, width * 2, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(width * 2)
        self.pool2 = MaxPool2d(2)
        self.gap = GlobalAvgPool2d()
        self.fc = Linear(width * 2, num_classes, rng=rng)
        self.relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.relu(self.bn1(self.conv1(x))))
        x = self.pool2(self.relu(self.bn2(self.conv2(x))))
        return self.fc(self.gap(x))
