"""Top-k magnitude sparsification — the paper's primary selection rule.

"worker k calculates the threshold for sparsification, which we chose here
as Top 1%" (§4.1): per layer, keep the R% entries of largest absolute
value.  Implemented with ``np.argpartition`` (O(n), not a full sort).
"""

from __future__ import annotations

import math

import numpy as np

from .base import Sparsifier

__all__ = ["TopKSparsifier", "topk_mask", "topk_threshold"]


def _k_for_ratio(n: int, ratio: float) -> int:
    """Number of entries kept for a send ratio in (0, 1]; at least 1."""
    return max(1, min(n, math.ceil(n * ratio)))


def topk_mask(arr: np.ndarray, ratio: float) -> np.ndarray:
    """Boolean mask of the ⌈ratio·n⌉ largest-|value| entries of ``arr``."""
    flat = np.abs(arr.reshape(-1))
    n = flat.size
    k = _k_for_ratio(n, ratio)
    if k >= n:
        return np.ones(arr.shape, dtype=bool)
    idx = np.argpartition(flat, n - k)[n - k :]
    mask = np.zeros(n, dtype=bool)
    mask[idx] = True
    return mask.reshape(arr.shape)


def topk_threshold(arr: np.ndarray, ratio: float) -> float:
    """The magnitude threshold ``thr`` such that |arr| > thr keeps ≈ top R%.

    This is the ``thr ← R% of |u[j]|`` of Algorithms 1–3.  Exposed for tests
    and for threshold-based variants; :func:`topk_mask` is what the
    production path uses (exact k, robust to ties).
    """
    flat = np.abs(arr.reshape(-1))
    k = _k_for_ratio(flat.size, ratio)
    if k >= flat.size:
        return -np.inf
    return float(np.partition(flat, flat.size - k)[flat.size - k])


class TopKSparsifier(Sparsifier):
    """Keep the top ``ratio`` fraction of entries by magnitude, per layer.

    ``ratio = R / 100`` in the paper's notation; the paper's headline setting
    is R = 1 (99% sparsity).

    ``min_sparse_size``: layers smaller than this are sent dense.  Production
    top-k systems (DGC's reference implementation among them) exempt tiny
    tensors — BatchNorm scales/biases — because a per-layer top-k over a
    handful of elements starves most of them and destabilises training while
    saving almost no bandwidth.
    """

    def __init__(self, ratio: float, min_sparse_size: int = 256) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if min_sparse_size < 0:
            raise ValueError("min_sparse_size must be non-negative")
        self.ratio = ratio
        self.min_sparse_size = min_sparse_size

    def mask(self, arr: np.ndarray) -> np.ndarray:
        if arr.size < self.min_sparse_size:
            return np.ones(arr.shape, dtype=bool)
        return topk_mask(arr, self.ratio)

    def __repr__(self) -> str:
        return f"TopKSparsifier(ratio={self.ratio}, min_sparse_size={self.min_sparse_size})"
