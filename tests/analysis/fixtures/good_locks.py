"""Compliant lock discipline — zero findings expected.

``_put_locked`` shows the private-called-under-lock pattern: it touches
guarded state without acquiring the lock itself, which is legal because its
only in-class caller holds it.
"""

import threading


class GoodServer:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = {}
        self._hits = 0

    def put(self, key, value):
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key, value):
        self.state[key] = value
        self._hits += 1

    def snapshot(self):
        with self._lock:
            return dict(self.state)

    @property
    def hits(self):
        with self._lock:
            return self._hits
