"""Exec-level arena parity: RunConfig(arena=...) flips the hot path only.

With ``arena_dtype="float64"`` the arena path must reproduce the dict
reference run *bitwise* — identical loss curves, not just close — on a
deterministic backend.  With the float32 default it must still train to
an equivalent result (wire values were already float32 on both paths).
"""

import numpy as np
import pytest

from repro.data import make_blobs
from repro.exec import RunConfig, Trainer
from repro.nn import MLP


@pytest.fixture(scope="module")
def ds():
    return make_blobs(n_samples=240, num_classes=3, dim=10, seed=3)


def factory():
    return MLP(10, (14,), 3, seed=5)


def _run(ds, backend="simulated", **kwargs):
    config = RunConfig(
        kwargs.pop("method", "asgd"),
        factory,
        ds,
        num_workers=kwargs.pop("num_workers", 1),
        batch_size=16,
        total_iterations=kwargs.pop("total_iterations", 40),
        seed=0,
        **kwargs,
    )
    return Trainer(config, backend=backend).run()


class TestFloat64Parity:
    def test_dense_asgd_identical_loss_curve(self, ds):
        """The headline gate: arena f64 == reference, bit for bit."""
        opt = _run(ds, arena=True, arena_dtype="float64")
        ref = _run(ds, arena=False)
        assert opt.final_loss == ref.final_loss
        assert list(opt.loss_vs_step.ys) == list(ref.loss_vs_step.ys)

    def test_dgs_identical_loss_curve(self, ds):
        """Sparsified path (top-k + tracker) through the same gate."""
        opt = _run(ds, method="dgs", arena=True, arena_dtype="float64")
        ref = _run(ds, method="dgs", arena=False)
        assert opt.final_loss == ref.final_loss
        assert list(opt.loss_vs_step.ys) == list(ref.loss_vs_step.ys)

    def test_sync_backend_identical(self, ds):
        opt = _run(ds, backend="sync", num_workers=2, arena=True, arena_dtype="float64")
        ref = _run(ds, backend="sync", num_workers=2, arena=False)
        assert opt.final_loss == ref.final_loss


class TestFloat32Default:
    def test_default_arena_trains_equivalently(self, ds):
        """float32 arenas: same training outcome within f32 rounding."""
        opt = _run(ds, total_iterations=60)  # arena=True is the default
        ref = _run(ds, total_iterations=60, arena=False)
        assert np.isfinite(opt.final_loss)
        assert opt.final_loss == pytest.approx(ref.final_loss, rel=1e-3, abs=1e-6)

    def test_multi_worker_multi_method(self, ds):
        for method in ("dgs", "dgc_async", "gd_async"):
            r = _run(ds, method=method, num_workers=3, total_iterations=45)
            assert np.isfinite(r.final_loss), method
