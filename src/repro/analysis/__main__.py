"""CLI for the analysis suite: ``python -m repro.analysis``.

Runs all four pillars (lint, lock discipline + lock graph, layering,
sanitizer self-check) over ``src/repro/**`` and exits non-zero when
anything is found.  Usage::

    python -m repro.analysis                  # full suite over the package
    python -m repro.analysis path/to/dir      # pillars over another tree
    python -m repro.analysis --no-sanitize    # skip the runtime self-check
    python -m repro.analysis --select DTY001,LCK004
    python -m repro.analysis --list-rules
    python -m repro.analysis --format json    # one JSON finding per line

Subcommands::

    python -m repro.analysis graph [root]     # dump the lock-acquisition graph
    python -m repro.analysis arch [root]      # layering report; --update-baseline
    python -m repro.analysis abba-smoke PATH  # static+dynamic deadlock detection
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

from . import run_analysis
from .findings import Finding
from .rules import known_rule_ids, rule_index

#: one-line semantics for rules reported by the non-lint pillars
_PILLAR_RULES = (
    ("LCK001", "guarded state touched without holding the class lock"),
    ("LCK002", "private method touching guarded state has no in-class caller"),
    ("LCK003", "lock re-acquired while held (non-reentrant deadlock)"),
    ("LCK004", "cycle in the whole-program lock-acquisition graph (ABBA)"),
    ("LCK005", "channel send/recv reachable while a lock is held"),
    ("LCK006", "bare .acquire()/.release() without a finally"),
    ("ARC001", "import edge outside the layering matrix and baseline"),
    ("ARC002", "module-level import cycle"),
    ("SAN001", "sanitizer self-check failure"),
    ("PAR001", "file does not parse"),
)


def _default_root() -> str:
    return str(Path(__file__).resolve().parent.parent)


def _emit(findings: "list[Finding]", fmt: str, pillars: "list[str]") -> None:
    if fmt == "json":
        for f in findings:
            print(
                json.dumps(
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                    }
                )
            )
    else:
        for f in findings:
            print(f.format())
        status = "FAILED" if findings else "OK"
        print(f"repro.analysis [{', '.join(pillars)}]: {len(findings)} finding(s) — {status}")


def _cmd_graph(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis graph")
    parser.add_argument("root", nargs="?", default=_default_root())
    args = parser.parse_args(argv)
    from .concurrency import build_lock_graph

    graph = build_lock_graph(args.root)
    print(f"lock-owning classes ({len(graph.nodes)}):")
    for node in sorted(graph.nodes):
        print(f"  {node}")
    print(f"acquisition edges ({len(graph.edges)}):")
    for e in graph.edges:
        print(f"  {e.src} -> {e.dst}  [{e.via}]  ({e.path}:{e.line})")
    cycles = graph.cycles()
    for cycle in cycles:
        print(f"CYCLE: {' -> '.join(cycle + [cycle[0]])}")
    print(f"{len(cycles)} cycle(s), {len(graph.blocking)} blocking call(s) under lock")
    return 1 if cycles or graph.blocking else 0


def _cmd_arch(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis arch")
    parser.add_argument("root", nargs="?", default=_default_root())
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite ARCH_baseline.json from the current import graph",
    )
    args = parser.parse_args(argv)
    from .concurrency import (
        ALLOWED_DEPS,
        build_import_graph,
        check_architecture,
        load_baseline,
        package_edges,
        write_baseline,
    )

    edges, _ = build_import_graph(args.root)
    pkg = package_edges(edges)
    if args.update_baseline:
        path = write_baseline(pkg)
        print(f"baseline updated: {path} ({len(pkg)} package edge(s))")
        return 0
    baseline = load_baseline()
    print(f"package import edges ({len(pkg)}):")
    for (src, dst), witnesses in sorted(pkg.items()):
        if dst in ALLOWED_DEPS.get(src, frozenset()):
            status = "matrix"
        elif (src, dst) in baseline:
            status = "GRANDFATHERED"
        else:
            status = "VIOLATION"
        print(f"  {src:12s} -> {dst:12s} {len(witnesses):3d} import(s)  [{status}]")
    findings = check_architecture(args.root)
    for f in findings:
        print(f.format())
    print(f"{len(findings)} layering finding(s)")
    return 1 if findings else 0


def _cmd_abba_smoke(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis abba-smoke",
        description="Prove the suite catches a committed ABBA deadlock fixture "
        "both statically (LCK004) and dynamically (lock-order inversion).",
    )
    parser.add_argument("path", help="fixture module with lock classes and a drive(registry) fn")
    args = parser.parse_args(argv)
    from .concurrency import LockRegistry, check_lock_graph

    fixture = Path(args.path)
    static = [f for f in check_lock_graph(fixture.parent, paths=[fixture]) if f.rule == "LCK004"]
    print(f"static: {len(static)} LCK004 finding(s)")
    for f in static:
        print(f"  {f.format()}")

    spec = importlib.util.spec_from_file_location(fixture.stem, fixture)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    registry = LockRegistry()
    module.drive(registry)
    inversions = registry.inversions()
    print(f"dynamic: {len(inversions)} lock-order inversion(s)")
    for inv in inversions:
        print(f"  {inv.format()}")

    ok = bool(static) and bool(inversions)
    print(f"abba-smoke: {'OK — deadlock potential detected both ways' if ok else 'FAILED'}")
    return 0 if ok else 1


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    subcommands = {"graph": _cmd_graph, "arch": _cmd_arch, "abba-smoke": _cmd_abba_smoke}
    if argv and argv[0] in subcommands:
        return subcommands[argv[0]](argv[1:])

    parser = argparse.ArgumentParser(prog="python -m repro.analysis", description=__doc__)
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze (default: the repro package)"
    )
    parser.add_argument("--no-lint", action="store_true", help="skip the AST lint pillar")
    parser.add_argument(
        "--no-locks",
        action="store_true",
        help="skip the lock-discipline and lock-graph pillar",
    )
    parser.add_argument(
        "--no-arch", action="store_true", help="skip the architecture layering pillar"
    )
    parser.add_argument(
        "--no-sanitize", action="store_true", help="skip the runtime sanitizer self-check"
    )
    parser.add_argument(
        "--select", help="comma-separated rule ids to report (default: all)", default=None
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="json emits one finding object per line (JSONL)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(rule_index().items()):
            print(f"{rule_id}  {cls.summary}")
        for rule_id, summary in _PILLAR_RULES:
            print(f"{rule_id}  {summary}")
        return 0

    roots = args.paths or [_default_root()]
    for root in roots:
        if not Path(root).exists():
            parser.error(f"path does not exist: {root}")

    if args.select:
        selected = {r.strip() for r in args.select.split(",")}
        unknown = selected - known_rule_ids()
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    findings: list[Finding] = []
    for i, root in enumerate(roots):
        findings.extend(
            run_analysis(
                root=root,
                lint=not args.no_lint,
                locks=not args.no_locks,
                arch=not args.no_arch,
                # the runtime self-check is tree-independent: run it once
                sanitizer=not args.no_sanitize and i == 0,
            )
        )

    if args.select:
        findings = [f for f in findings if f.rule in selected]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    pillars = [
        name
        for flag, name in (
            (not args.no_lint, "lint"),
            (not args.no_locks, "lock-discipline"),
            (not args.no_arch, "layering"),
            (not args.no_sanitize, "sanitizer"),
        )
        if flag
    ]
    _emit(findings, args.format, pillars)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
