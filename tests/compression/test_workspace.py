"""KernelWorkspace: buffer reuse, growth, and kernel-result invariance."""

import numpy as np

from repro.compression import (
    KernelWorkspace,
    encode_indices,
    encode_mask,
    encode_sparse,
    topk_mask,
    topk_select,
    topk_threshold,
)


class TestScratch:
    def test_reuses_backing_buffer(self):
        ws = KernelWorkspace()
        a = ws.scratch("t", 100, np.float64)
        b = ws.scratch("t", 80, np.float64)
        assert b.base is a.base or b.base is a  # same allocation, shorter view

    def test_grows_geometrically(self):
        ws = KernelWorkspace()
        ws.scratch("t", 100, np.float64)
        ws.scratch("t", 101, np.float64)  # forces growth: 2*100 > 101
        assert ws.scratch("t", 180, np.float64).base.size == 200

    def test_keyed_by_tag_and_dtype(self):
        ws = KernelWorkspace()
        f = ws.scratch("t", 10, np.float64)
        b = ws.scratch("t", 10, np.bool_)
        assert f.dtype == np.float64 and b.dtype == np.bool_
        assert ws.nbytes() == 10 * 8 + 10 * 1

    def test_clear(self):
        ws = KernelWorkspace()
        ws.scratch("t", 10, np.float64)
        ws.clear()
        assert ws.nbytes() == 0


class TestKernelInvariance:
    """workspace= must never change a kernel's result, only its allocations."""

    def test_topk_mask(self, rng):
        arr = rng.normal(size=1000)
        ws = KernelWorkspace()
        for ratio in (0.01, 0.1, 0.5, 1.0):
            np.testing.assert_array_equal(topk_mask(arr, ratio, ws), topk_mask(arr, ratio))

    def test_topk_threshold(self, rng):
        arr = rng.normal(size=1000)
        ws = KernelWorkspace()
        for ratio in (0.01, 0.1, 0.5):
            assert topk_threshold(arr, ratio, ws) == topk_threshold(arr, ratio)

    def test_topk_select_equals_mask_then_encode(self, rng):
        ws = KernelWorkspace()
        for n in (1, 7, 100, 1000):
            arr = rng.normal(size=n)
            for ratio in (0.05, 0.3, 1.0):
                fused = topk_select(arr, ratio, ws)
                ref = encode_mask(arr, topk_mask(arr, ratio))
                np.testing.assert_array_equal(fused.indices, ref.indices)
                np.testing.assert_array_equal(fused.values, ref.values)

    def test_encode_kernels(self, rng):
        arr = rng.normal(size=500)
        arr[np.abs(arr) < 1.0] = 0.0
        ws = KernelWorkspace()
        a, b = encode_sparse(arr, ws), encode_sparse(arr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
        idx = np.flatnonzero(arr)
        c = encode_indices(arr, idx, ws, assume_sorted=True)
        np.testing.assert_array_equal(c.values, b.values)

    def test_outputs_do_not_alias_workspace(self, rng):
        """SparseTensor values/indices must survive the next kernel call."""
        ws = KernelWorkspace()
        arr = rng.normal(size=200)
        st = topk_select(arr, 0.1, ws)
        vals, idx = st.values.copy(), st.indices.copy()
        topk_select(rng.normal(size=200), 0.5, ws)  # stomp the scratch
        np.testing.assert_array_equal(st.values, vals)
        np.testing.assert_array_equal(st.indices, idx)

    def test_varying_sizes_through_one_workspace(self, rng):
        """Per-layer usage: different layer sizes share one workspace."""
        ws = KernelWorkspace()
        for n in (1000, 10, 500, 3, 999):
            arr = rng.normal(size=n)
            fused = topk_select(arr, 0.3, ws)
            ref = encode_mask(arr, topk_mask(arr, 0.3))
            np.testing.assert_array_equal(fused.indices, ref.indices)
            np.testing.assert_array_equal(fused.values, ref.values)
