"""Ablation — bandwidth crossover of DGS vs ASGD throughput."""

from repro.harness.experiments import ablation_bandwidth
from repro.harness.config import is_fast_mode


def test_ablation_bandwidth(run_experiment):
    report = run_experiment(ablation_bandwidth, "ablation_bandwidth")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    advantages = [float(r[3].rstrip("x")) for r in report.rows]
    # Advantage decays (weakly) with bandwidth and is large at the low end.
    assert advantages[0] > 3.0
    assert advantages[-1] < advantages[0] / 2
