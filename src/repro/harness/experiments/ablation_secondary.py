"""Ablation — secondary compression on/off (Algorithm 2 lines 5–11).

The paper argues secondary compression matters only when downstream volume
is the bottleneck (many workers or low bandwidth) and costs little accuracy.
This bench measures both sides: accuracy and downstream bytes/makespan at
1 Gbps.
"""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast

__all__ = ["run"]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    num_workers = 4 if fast else 8
    wl = get_workload("cifar10")
    seed = seeds[0]

    report = ExperimentReport(
        experiment_id="Ablation (secondary compression)",
        title=f"DGS with/without secondary compression, {num_workers} workers, 1 Gbps",
        headers=(
            "Secondary compression",
            "Top-1 Accuracy",
            "Download bytes (model units)",
            "Makespan (min)",
        ),
    )
    model_bytes = None
    for enabled in (False, True):
        r = run_distributed(
            "dgs", wl, num_workers, gbps=1.0, secondary_compression=enabled, fast=fast, seed=seed
        )
        if model_bytes is None:
            model_bytes = r.download_dense_bytes / max(r.total_iterations, 1)
        down_units = r.download_bytes / max(r.download_dense_bytes, 1) * r.total_iterations
        report.add_row(
            "on (99%)" if enabled else "off",
            f"{100 * r.final_accuracy:.2f}%",
            f"{down_units:.0f}",
            f"{r.makespan_s / 60:.1f}",
        )
    report.add_note(
        "Expected shape: secondary compression cuts downstream volume by an order of "
        "magnitude (bounding it regardless of worker count) at little accuracy cost."
    )
    return report
