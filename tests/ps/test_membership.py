"""Elastic membership: the join state transition ``v_k ← M_t``.

Eq. 5's invariant (without secondary compression ``v_k == M`` after every
exchange) extends to elastic joins: a worker admitted at server time t
downloads θ_t = θ_0 + M_t, so everything applied so far has by definition
been shipped to it — its ``v_k`` must equal ``M_t`` *bitwise*, in every
server mode (dict / arena, single / sharded), or the next difference
``G = M − v_k`` it receives double-counts history.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layerops import parameters_of
from repro.core.methods import Hyper, get_method
from repro.exec.common import build_server
from repro.nn import MLP
from repro.ps.membership import WorkerDirectory
from repro.ps.messages import GradientMessage


def _server(num_workers=2, arena=False, num_shards=1, method="dgs"):
    model = MLP(8, (12,), 3, seed=4)
    return build_server(
        get_method(method),
        parameters_of(model),
        num_workers,
        Hyper(lr=0.1, momentum=0.7, ratio=0.25, min_sparse_size=0),
        arena=arena,
        num_shards=num_shards,
    )


def _advance(server, steps=3, rng_seed=9):
    """Apply a few dense gradient updates so M moves away from zero."""
    rng = np.random.default_rng(rng_seed)
    for i in range(steps):
        payload = {
            name: rng.normal(size=np.shape(buf)).astype(np.float64)
            for name, buf in server.global_model().items()
        }
        server.handle(GradientMessage(0, payload, i))


def _tracker_v(server, worker):
    vk = server.tracker.v[worker]
    M = server.tracker.M
    if hasattr(M, "flat"):  # arena buffers
        return np.array(vk.flat), np.array(M.flat)
    flat = lambda buffers: np.concatenate([np.ravel(b) for b in buffers.values()])
    return flat(vk), flat(M)


@pytest.mark.parametrize("arena", [False, True], ids=["dict", "arena"])
class TestBootstrapInvariant:
    def test_new_worker_vk_equals_Mt_bitwise(self, arena):
        server = _server(num_workers=1, arena=arena)
        _advance(server)
        msg = server.bootstrap_worker(1)  # grows the worker set
        v, M = _tracker_v(server, 1)
        np.testing.assert_array_equal(v, M)
        assert msg.worker_id == 1
        assert msg.server_timestamp == server.timestamp

    def test_rebootstrap_refreshes_stale_vk(self, arena):
        """Reconnect semantics: re-joining refreshes v_k to the live M."""
        server = _server(num_workers=2, arena=arena)
        server.bootstrap_worker(1)
        _advance(server)  # moves M; worker 1's v_k is now stale
        server.bootstrap_worker(1)
        v, M = _tracker_v(server, 1)
        np.testing.assert_array_equal(v, M)

    def test_bootstrap_reply_model_is_theta_t(self, arena):
        server = _server(num_workers=1, arena=arena)
        _advance(server)
        msg = server.bootstrap_worker(1)
        current = server.global_model()
        assert msg.payload.keys() == current.keys()
        for name in current:
            np.testing.assert_array_equal(
                np.asarray(msg.payload[name]), np.asarray(current[name])
            )

    def test_worker_model_after_join_equals_global(self, arena):
        server = _server(num_workers=1, arena=arena)
        _advance(server)
        server.bootstrap_worker(1)
        joined, current = server.worker_model(1), server.global_model()
        for name in current:
            np.testing.assert_array_equal(joined[name], current[name])


class TestShardedBootstrap:
    @pytest.mark.parametrize("arena", [False, True], ids=["dict", "arena"])
    def test_every_shard_vk_equals_its_Mt(self, arena):
        server = _server(num_workers=1, arena=arena, num_shards=2)
        _advance(server)
        server.bootstrap_worker(1)
        for shard in server.shards:
            v, M = _tracker_v(shard, 1)
            np.testing.assert_array_equal(v, M)

    def test_merged_bootstrap_model_is_global(self):
        server = _server(num_workers=1, num_shards=2)
        _advance(server)
        msg = server.bootstrap_worker(1)
        current = server.global_model()
        assert msg.payload.keys() == current.keys()
        for name in current:
            np.testing.assert_array_equal(
                np.asarray(msg.payload[name]), np.asarray(current[name])
            )


class TestModelModeBootstrap:
    def test_asgd_has_no_vk_but_grows_worker_set(self):
        """Model-downstream methods track no v_k; join still admits."""
        server = _server(num_workers=1, method="asgd")
        _advance(server)
        msg = server.bootstrap_worker(3)
        assert server.tracker.num_workers == 4
        current = server.global_model()
        for name in current:
            np.testing.assert_array_equal(
                np.asarray(msg.payload[name]), np.asarray(current[name])
            )


class TestDirectoryLocking:
    def test_directory_never_nests_with_server_lock(self):
        """register() takes the server lock first, then its own — enrolled
        in a LockRegistry, the order must come out acyclic."""
        from repro.analysis.concurrency import LockRegistry

        server = _server(num_workers=1)
        directory = WorkerDirectory(server)
        registry = LockRegistry()
        server.register_lock(registry)
        directory.register_lock(registry)
        directory.register(1)
        directory.deregister(1)
        assert registry.inversions() == []
        assert registry.cycles() == []

    def test_update_counts_come_from_staleness_log(self):
        server = _server(num_workers=2)
        _advance(server, steps=4)  # all four updates from worker 0
        counts = server.worker_update_counts()
        assert counts.get(0) == 4
        assert counts.get(1, 0) == 0
