#!/usr/bin/env python
"""Future-work combination (§6): DGS + TernGrad and other compressors.

The paper's conclusion proposes combining DGS with TernGrad or random
coordinate dropping.  ``repro.core.extensions`` implements those methods;
this example compares them against plain DGS and ASGD on accuracy and bytes
on the wire.

Usage:  python examples/combined_compression.py [--fast]
"""

import argparse

from repro.harness import get_workload, run_distributed
from repro.metrics import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    workload = get_workload("cifar10")
    methods = ("asgd", "dgs", "dgs_terngrad", "terngrad", "qsgd", "random_dropping")

    rows = []
    for method in methods:
        r = run_distributed(method, workload, 4, gbps=10.0, fast=args.fast, seed=0)
        rows.append((
            method,
            f"{100 * r.final_accuracy:.2f}%",
            f"{r.upload_bytes / 1e6:.2f} MB",
            f"{r.upload_dense_bytes / max(r.upload_bytes, 1):.0f}x",
        ))

    print(format_table(
        ("method", "top-1 acc", "upload volume", "upload compression"),
        rows,
        title="DGS combined with other compressors (4 workers, synthetic CIFAR-10)",
    ))
    print(
        "\ndgs_terngrad keeps DGS's Top-k selection but ships 2-bit values —\n"
        "~13x smaller values per coordinate at a small accuracy cost."
    )


if __name__ == "__main__":
    main()
