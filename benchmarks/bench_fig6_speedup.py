"""Figure 6 — speedup vs workers, DGS vs ASGD at 10 and 1 Gbps."""

from repro.harness.experiments import fig6_speedup
from repro.harness.config import is_fast_mode


def test_fig6_speedup(run_experiment):
    report = run_experiment(fig6_speedup, "fig6_speedup")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {(r[0], r[1]): [float(c.rstrip("x")) for c in r[2:]] for r in report.rows}
    max_col = -1
    # Shapes from the paper: at 1 Gbps ASGD saturates near 1× while DGS
    # keeps scaling; at 10 Gbps DGS is near-linear.
    asgd_1g = rows[("1 Gbps", "ASGD")][max_col]
    dgs_1g = rows[("1 Gbps", "DGS")][max_col]
    assert asgd_1g < 2.5  # collapsed
    assert dgs_1g > 3 * asgd_1g
    # near-linear at 10 Gbps: ≥60% efficiency at the largest worker count
    n_points = len(rows[("10 Gbps", "DGS")])
    largest = (1, 2, 4, 8, 16)[:n_points][-1]
    assert rows[("10 Gbps", "DGS")][max_col] >= 0.6 * largest
