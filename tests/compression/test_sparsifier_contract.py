"""Contract tests: every Sparsifier implementation honours the interface."""

import numpy as np
import pytest

from repro.compression import (
    AdaptiveThresholdSparsifier,
    RandomKSparsifier,
    ThresholdSparsifier,
    TopKSparsifier,
)

SPARSIFIERS = [
    pytest.param(lambda: TopKSparsifier(0.1, min_sparse_size=0), id="topk"),
    pytest.param(lambda: ThresholdSparsifier(0.5), id="threshold"),
    pytest.param(lambda: RandomKSparsifier(0.1, seed=0), id="randomk"),
    pytest.param(
        lambda: AdaptiveThresholdSparsifier(0.1, min_sparse_size=0), id="adaptive"
    ),
]


@pytest.mark.parametrize("make", SPARSIFIERS)
class TestSparsifierContract:
    def test_mask_is_boolean_same_shape(self, make, rng):
        sp = make()
        arr = rng.normal(size=(6, 8))
        mask = sp.mask(arr)
        assert mask.dtype == bool
        assert mask.shape == arr.shape

    def test_mask_does_not_mutate_input(self, make, rng):
        sp = make()
        arr = rng.normal(size=100)
        before = arr.copy()
        sp.mask(arr)
        np.testing.assert_array_equal(arr, before)

    def test_split_partition_identity(self, make, rng):
        sp = make()
        arr = rng.normal(size=100)
        mask, sent, kept = sp.split(arr)
        # disjoint support
        assert not np.logical_and(sent != 0, kept != 0).any()
        # kept entries exactly preserve original values
        np.testing.assert_array_equal(kept[~mask], arr[~mask])

    def test_works_on_multidimensional(self, make, rng):
        sp = make()
        arr = rng.normal(size=(4, 5, 6))
        mask, sent, kept = sp.split(arr)
        assert sent.shape == kept.shape == arr.shape
