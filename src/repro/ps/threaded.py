"""Real-thread asynchronous trainer (the "threaded" execution backend).

Each worker runs in its own OS thread against a lock-protected
:class:`ParameterServer` — the genuine HOGWILD-style asynchrony of the
paper's testbed (workers exchange at their own pace; interleavings are
non-deterministic).  Used by integration tests and the quickstart; the
wall-clock experiments use ``repro.sim`` where time is modelled instead.

Prefer the unified front-end (``repro.exec.Trainer`` with
``backend="threaded"``, or ``run_distributed(..., backend="threaded")``);
this class remains the underlying engine and a thin public adapter.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..core.layerops import parameters_of
from ..core.methods import Hyper, MethodSpec
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..exec.common import (
    build_server,
    build_workers,
    evaluate_global,
    resolve_hyper,
    resolve_method,
    resolve_schedule,
)
from ..exec.result import TrainResult
from ..metrics.curves import Curve
from ..nn.module import Module
from ..obs.tracer import NullTracer, Tracer, current_tracer
from ..optim.schedules import Schedule
from .worker import WorkerNode

__all__ = ["ThreadedTrainer", "ThreadedResult"]

#: deprecated alias — the threaded engine now returns the unified schema
ThreadedResult = TrainResult


class ThreadedTrainer:
    """Runs ``num_workers`` threads of asynchronous training to completion."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        iterations_per_worker: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        staleness_damping: bool = False,
        num_shards: int = 1,
        seed: int = 0,
        tracer: "Tracer | NullTracer | None" = None,
        wire_fidelity: bool = False,
        arena: bool = False,
        arena_dtype: "object | None" = None,
        register: bool = False,
        checkpoint_every: "int | None" = None,
        checkpoint_path: "str | None" = None,
        restore_from: "str | None" = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        self.method = resolve_method(method)
        self.hyper = resolve_hyper(hyper)
        self.schedule = resolve_schedule(schedule, self.hyper)
        self.dataset = dataset
        self.num_workers = num_workers
        self.iterations_per_worker = iterations_per_worker

        loader = DataLoader(dataset, batch_size, seed=seed)
        self.eval_model = model_factory()
        theta0 = parameters_of(self.eval_model)
        self.server = build_server(
            self.method,
            theta0,
            num_workers,
            self.hyper,
            secondary_compression=secondary_compression,
            staleness_damping=staleness_damping,
            arena=arena,
            arena_dtype=arena_dtype,
            num_shards=num_shards,
        )
        self.workers: list[WorkerNode] = build_workers(
            num_workers,
            model_factory,
            loader,
            self.method,
            self.hyper,
            self.schedule,
            theta0,
            arena=arena,
            arena_dtype=arena_dtype,
        )

        self._loss_lock = threading.Lock()
        self.loss_curve = Curve("loss_vs_server_step")
        self._errors: list[BaseException] = []
        #: explicit tracer; None ⇒ the ambient repro.obs tracer at run time
        self.tracer = tracer
        #: round-trip every frame through the byte codec (float32 wire)
        self.wire_fidelity = wire_fidelity
        #: run the elastic-membership join/leave handshake around each
        #: worker loop (what the socket backend always does — enable it
        #: here to compare the two backends under identical protocols)
        self.register = register
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.restore_from = restore_from
        self._updates_handled = 0

        if restore_from is not None:
            from ..core.layerops import assign_parameters
            from .checkpoint import load_checkpoint

            header = load_checkpoint(self.server, restore_from)
            counts = {
                int(w): int(c)
                for w, c in header["shards"][0]["updates"].items()
            }
            for node in self.workers:
                count = counts.get(node.worker_id, 0)
                # Install the model this worker held at checkpoint time
                # (θ_0 + v_k) and burn the batches it already consumed, so
                # the continued run picks up the stream exactly where the
                # original left off.
                assign_parameters(node.model, self.server.worker_model(node.worker_id))
                for _ in range(count):
                    node.batches.next_batch()
                node.iteration = count

    # ------------------------------------------------------------------
    def _record_loss(self, node: WorkerNode) -> None:
        checkpoint_due = False
        with self._loss_lock:
            # Server timestamps are unique but arrive out of order across
            # threads; record against a local monotone index.
            step = len(self.loss_curve) + 1
            self.loss_curve.add(step, node.last_loss)
            if self.checkpoint_every is not None:
                self._updates_handled += 1
                checkpoint_due = self._updates_handled % self.checkpoint_every == 0
        if checkpoint_due:
            # Outside the loss lock: the snapshot takes the server locks
            # and the write is pure file I/O.
            from .checkpoint import save_checkpoint

            save_checkpoint(self.server, self.checkpoint_path)

    def _worker_loop(self, node: WorkerNode, channel) -> None:
        # Each OS thread emits into its own Tracer buffer (lock-free);
        # buffers are merged after join() via Tracer.records().
        from ..comm.protocol import run_worker_loop  # lazy: comm imports ps

        tracer = self.tracer if self.tracer is not None else current_tracer()
        try:
            run_worker_loop(
                node,
                channel,
                self.iterations_per_worker,
                tracer=tracer,
                on_step=self._record_loss,
                register=self.register,
            )
        except BaseException as exc:  # surface worker crashes to the caller
            self._errors.append(exc)

    def run(self) -> TrainResult:
        from ..comm.channel import InProcChannel, ServerService  # lazy: comm imports ps

        service = ServerService(self.server)
        channels = [
            InProcChannel(
                service,
                node.worker_id,
                stats=self.server.stats,
                wire_fidelity=self.wire_fidelity,
                tracer=self.tracer,
            )
            for node in self.workers
        ]
        t_start = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._worker_loop, args=(node, ch), name=f"worker-{node.worker_id}"
            )
            for node, ch in zip(self.workers, channels)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t_start
        if self._errors:
            raise RuntimeError(f"{len(self._errors)} worker(s) failed") from self._errors[0]
        if self.checkpoint_every is not None:
            # Final checkpoint so a restore continues from the very end,
            # not the last cadence boundary.
            from .checkpoint import save_checkpoint

            save_checkpoint(self.server, self.checkpoint_path)

        # Borrow worker 0's replica for evaluation: its BatchNorm running
        # statistics reflect actual training data.
        acc, loss = evaluate_global(self.workers[0].model, self.server, self.dataset)
        stats = self.server.stats
        closes = [ch.close_frame for ch in channels if ch.close_frame is not None]
        staleness = self.server.staleness_summary()
        return TrainResult(
            method=self.method.name,
            backend="threaded",
            num_workers=self.num_workers,
            num_shards=getattr(self.server, "num_shards", 1),
            final_accuracy=acc,
            final_loss=loss,
            loss_vs_step=self.loss_curve,
            total_iterations=self.server.timestamp,
            # Final accounting travels on the workers' close frames, the
            # same way it reaches the server on every other backend.
            samples_processed=sum(c.samples_processed or 0 for c in closes),
            mean_staleness=self.server.staleness_meter.avg,
            staleness_p50=staleness["p50"],
            staleness_p99=staleness["p99"],
            worker_staleness=staleness["per_worker"],
            metrics=self.server.metrics.snapshot(),
            upload_bytes=stats.upload_bytes,
            download_bytes=stats.download_bytes,
            upload_dense_bytes=stats.upload_dense_bytes,
            download_dense_bytes=stats.download_dense_bytes,
            makespan_s=elapsed,
            clock="wall",
            server_state_bytes=self.server.server_state_bytes(),
            worker_state_bytes=sum(c.worker_state_bytes or 0 for c in closes),
        )
