"""OBS001 — telemetry names come from ``repro.obs.names``, not inline strings.

Span and metric series names are the join keys of the whole observability
pipeline: the Chrome exporter groups lanes by them, ``repro.obs report`` /
``compare`` align runs on them, and :class:`~repro.obs.runs.HealthSpec`
gates on specific series.  A call site outside ``repro/obs`` that spells a
name inline (``tracer.span("worker.step", ...)``) can drift from the
registered vocabulary without anything failing at the emit site — the
series just silently stops matching downstream tooling.  So outside
``repro/obs``, the first argument of every telemetry emission call
(``span`` / ``add_span`` / ``span_record`` / ``counter`` / ``gauge`` /
``histogram``) must be a registered constant from :mod:`repro.obs.names`;
an inline string literal is a finding, and a literal that is not even
``dot.separated`` lowercase is called out as such.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["TelemetryNameRule"]

#: emission entry points whose first argument is a telemetry name
_TELEMETRY_CALLS = {
    "span",
    "add_span",
    "span_record",
    "counter",
    "gauge",
    "histogram",
}


class TelemetryNameRule(Rule):
    id = "OBS001"
    summary = "inline span/metric name literal outside repro.obs"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if module.may_name_telemetry_inline(config):
            return
        # Imported lazily so the rule module stays importable standalone
        # (the linter runs over arbitrary trees in tests).
        from ...obs.names import is_valid_name, registered_names

        registered = registered_names()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _TELEMETRY_CALLS:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            literal = first.value
            if not is_valid_name(literal):
                yield self.finding(
                    module,
                    first,
                    f"telemetry name {literal!r} is not dot.separated lowercase; "
                    "register it in repro.obs.names and reference the constant",
                )
            elif literal not in registered:
                yield self.finding(
                    module,
                    first,
                    f"inline telemetry name {literal!r}; register it in "
                    "repro.obs.names and reference the constant so exporters "
                    "and health checks stay in sync",
                )
            else:
                yield self.finding(
                    module,
                    first,
                    f"telemetry name {literal!r} spelled inline; reference the "
                    "repro.obs.names constant instead of the string",
                )
