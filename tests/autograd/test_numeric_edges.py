"""Numeric edge cases the training loop can hit."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import cross_entropy


class TestCrossEntropyEdges:
    def test_single_sample(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([1]))
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_many_classes(self, rng):
        logits = Tensor(rng.normal(size=(4, 1000)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 500, 999, 42]))
        loss.backward()
        # gradient rows sum to ~0 (softmax minus one-hot property)
        np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-12)

    def test_extreme_negative_logits(self):
        logits = Tensor(np.array([[-1e300, 0.0]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([1]))
        assert np.isfinite(float(loss.data))


class TestTensorEdges:
    def test_empty_like_reductions(self):
        t = Tensor(np.zeros((0, 4)), requires_grad=True)
        assert t.sum().item() == 0.0

    def test_scalar_tensor_ops(self):
        a = Tensor(2.0, requires_grad=True)
        out = a * a + a
        out.backward()
        assert a.grad == pytest.approx(5.0)

    def test_large_values_relu(self):
        a = Tensor(np.array([1e308, -1e308]), requires_grad=True)
        out = a.relu()
        np.testing.assert_array_equal(out.data, [1e308, 0.0])

    def test_division_by_small(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a / 1e-300
        assert np.isfinite(out.data).all()

    def test_log_of_tiny(self):
        a = Tensor(np.array([1e-300]), requires_grad=True)
        out = a.log()
        out.backward(np.ones(1))
        assert np.isfinite(out.data).all()
        assert np.isfinite(a.grad).all()

    def test_softmax_one_hot_limit(self):
        a = Tensor(np.array([[100.0, 0.0, 0.0]]))
        s = a.softmax(axis=1).data
        assert s[0, 0] == pytest.approx(1.0)
        np.testing.assert_allclose(s.sum(), 1.0)
