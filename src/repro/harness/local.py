"""Single-node MSGD baseline trainer (the paper's reference line).

"as the baseline approach, vanilla MSGD is run with a single node" (§5.2).
No parameter server, no compression — plain momentum SGD over the full
training set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..autograd import Tensor
from ..data.loader import BatchIterator
from ..data.synthetic import Dataset
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_model
from ..metrics.meters import EMAMeter
from ..nn.loss import cross_entropy
from ..nn.module import Module
from ..optim.schedules import ConstantLR, Schedule
from ..optim.sgd import SGD

__all__ = ["LocalTrainer", "LocalResult"]


@dataclass
class LocalResult:
    final_accuracy: float
    final_loss: float
    loss_vs_step: Curve
    acc_vs_step: Curve
    total_iterations: int
    samples_processed: int


class LocalTrainer:
    """Plain momentum-SGD training on one node."""

    def __init__(
        self,
        model_factory: Callable[[], Module],
        dataset: Dataset,
        batch_size: int,
        total_iterations: int,
        lr: float = 0.1,
        momentum: float = 0.7,
        schedule: Schedule | None = None,
        eval_every: int | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model_factory()
        self.dataset = dataset
        self.batches = BatchIterator(
            dataset.x_train, dataset.y_train, batch_size, seed=seed
        )
        self.total_iterations = total_iterations
        self.schedule = schedule if schedule is not None else ConstantLR(lr)
        self.optimizer = SGD(self.model.parameters(), lr=lr, momentum=momentum)
        self.eval_every = eval_every

    def run(self) -> LocalResult:
        loss_vs_step = Curve("loss_vs_step")
        acc_vs_step = Curve("acc_vs_step")
        ema = EMAMeter(beta=0.9)
        samples = 0
        for it in range(1, self.total_iterations + 1):
            x, y = self.batches.next_batch()
            samples += len(x)
            epoch = self.batches.batches_served / max(self.batches.batches_per_epoch, 1)
            self.optimizer.lr = self.schedule(epoch)
            logits = self.model(Tensor(x))
            loss = cross_entropy(logits, y)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_vs_step.add(it, ema.update(float(loss.data)))
            if self.eval_every is not None and it % self.eval_every == 0:
                acc, _ = evaluate_model(self.model, self.dataset.x_val, self.dataset.y_val)
                acc_vs_step.add(it, acc)

        final_acc, final_loss = evaluate_model(
            self.model, self.dataset.x_val, self.dataset.y_val
        )
        if self.eval_every is not None and (
            not len(acc_vs_step) or acc_vs_step.xs[-1] < self.total_iterations
        ):
            acc_vs_step.add(self.total_iterations, final_acc)
        return LocalResult(
            final_accuracy=final_acc,
            final_loss=final_loss,
            loss_vs_step=loss_vs_step,
            acc_vs_step=acc_vs_step,
            total_iterations=self.total_iterations,
            samples_processed=samples,
        )
