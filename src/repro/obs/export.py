"""Exporters: Chrome trace JSON, flamegraph-style text, Prometheus text.

All exporters consume the JSONL record schema of ``repro.obs.span``:

* :func:`to_chrome_trace` — a ``chrome://tracing`` / Perfetto-loadable
  JSON object.  The two clock domains become two process lanes (pid 0 =
  wall clock, pid 1 = virtual clock) so real profiling time and modelled
  simulator time never interleave on one timeline.
* :func:`summarize` / :func:`render_summary` — per-phase (category)
  totals: span count, total time, share, and bytes (summed from any
  ``*bytes*`` span args — which is how the summary ties back to
  :class:`repro.compression.stats.CompressionStats`).
* :func:`self_times` / :func:`render_top` — flamegraph-style hot list:
  self time per span name with nesting subtracted per thread lane.
* :func:`to_prometheus` — text exposition of a metrics snapshot.
* :func:`spans_from_trace_events` — adapter unifying the simulator's
  legacy :class:`repro.sim.engine.TraceEvent` into the span schema.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Mapping, Sequence

from ..metrics.tables import format_table
from .span import DOMAINS, validate_records

__all__ = [
    "check_stream",
    "load_jsonl",
    "render_summary",
    "render_top",
    "self_times",
    "spans_from_trace_events",
    "summarize",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "write_chrome_trace",
]

_US = 1e6  # chrome trace timestamps are microseconds


def load_jsonl(path: "str | pathlib.Path") -> "list[dict[str, Any]]":
    """Read one JSONL record stream (blank lines ignored)."""
    records: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _spans(records: "Iterable[Mapping[str, Any]]") -> "list[Mapping[str, Any]]":
    return [r for r in records if r.get("type") == "span"]


def _span_bytes(record: "Mapping[str, Any]") -> int:
    """Sum of all byte-count args attached to a span."""
    return sum(
        int(v)
        for k, v in record.get("args", {}).items()
        if "bytes" in k and isinstance(v, (int, float))
    )


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def to_chrome_trace(
    records: "Sequence[Mapping[str, Any]]", meta: "Mapping[str, Any] | None" = None
) -> "dict[str, Any]":
    """Convert a record stream to the Chrome Trace Event JSON format.

    Process lanes: pid 0/1 are the wall/virtual clock domains of the
    coordinating process.  Spans shipped from worker processes carry a
    ``proc`` label (see :func:`repro.obs.span.relabel_records`); each
    distinct ``(domain, proc)`` pair gets its own pid from 2 upward, so a
    merged multi-process trace renders one lane per worker process
    without disturbing the single-process layout.
    """
    events: list[dict[str, Any]] = []
    base_pid_of = {domain: i for i, domain in enumerate(DOMAINS)}
    pid_of: dict[tuple[str, "str | None"], int] = {}
    tid_of: dict[tuple[int, str], int] = {}

    merged_meta: dict[str, Any] = {}
    for record in records:
        if record.get("type") == "meta":
            merged_meta.update({k: v for k, v in record.items() if k != "type"})
    if meta:
        merged_meta.update(meta)

    next_pid = len(DOMAINS)
    for record in _spans(records):
        domain = record.get("domain", "wall")
        proc = record.get("proc")
        lane = (domain, proc)
        if lane not in pid_of:
            if proc is None:
                pid_of[lane] = base_pid_of.get(domain, 0)
            else:
                pid_of[lane] = next_pid
                next_pid += 1
        pid = pid_of[lane]
        key = (pid, str(record["tid"]))
        tid = tid_of.setdefault(key, len(tid_of))
        event: dict[str, Any] = {
            "name": record["name"],
            "cat": record.get("cat", "default"),
            "ph": "X",
            "ts": round(record["ts"] * _US, 3),
            "dur": round(record["dur"] * _US, 3),
            "pid": pid,
            "tid": tid,
        }
        if record.get("args"):
            event["args"] = dict(record["args"])
        events.append(event)

    for (domain, proc), pid in sorted(pid_of.items(), key=lambda kv: kv[1]):
        lane_name = f"{domain}-clock" if proc is None else f"{domain}-clock · {proc}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": lane_name},
            }
        )
    for (pid, tname), tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": tname}}
        )

    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": merged_meta}


def write_chrome_trace(
    path: "str | pathlib.Path",
    records: "Sequence[Mapping[str, Any]]",
    meta: "Mapping[str, Any] | None" = None,
    indent: "int | None" = None,
) -> "dict[str, Any]":
    """Write :func:`to_chrome_trace` output to ``path``; returns the object."""
    trace = to_chrome_trace(records, meta=meta)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=indent)
        fh.write("\n")
    return trace


def validate_chrome_trace(trace: "Mapping[str, Any]") -> "list[str]":
    """Violations of the Chrome Trace Event format (empty ⇒ valid)."""
    errors: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' must be a list"]
    for i, event in enumerate(events):
        if not isinstance(event, Mapping):
            errors.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"event {i}: unsupported ph {ph!r}")
            continue
        if "name" not in event:
            errors.append(f"event {i}: missing 'name'")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(f"event {i}: 'X' event needs numeric {key!r}")
            if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
                errors.append(f"event {i}: negative dur")
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    errors.append(f"event {i}: 'X' event needs integer {key!r}")
    return errors


# ----------------------------------------------------------------------
# Per-phase summary
# ----------------------------------------------------------------------
def summarize(records: "Sequence[Mapping[str, Any]]") -> "list[dict[str, Any]]":
    """Aggregate spans per (domain, category): count, time, bytes."""
    agg: dict[tuple[str, str], dict[str, Any]] = {}
    for record in _spans(records):
        key = (record.get("domain", "wall"), record.get("cat", "default"))
        row = agg.setdefault(
            key, {"domain": key[0], "phase": key[1], "count": 0, "total_s": 0.0, "bytes": 0}
        )
        row["count"] += 1
        row["total_s"] += float(record["dur"])
        row["bytes"] += _span_bytes(record)
    rows = sorted(agg.values(), key=lambda r: (r["domain"], -r["total_s"]))
    for row in rows:
        domain_total = sum(r["total_s"] for r in rows if r["domain"] == row["domain"])
        row["share"] = row["total_s"] / domain_total if domain_total > 0 else 0.0
    return rows


def render_summary(records: "Sequence[Mapping[str, Any]]") -> str:
    """Plain-text per-phase table (the ``repro.obs summary`` output)."""
    rows = summarize(records)
    table = format_table(
        ["domain", "phase", "spans", "total_s", "share", "bytes"],
        [
            [r["domain"], r["phase"], r["count"], r["total_s"], f"{100 * r['share']:.1f}%", r["bytes"]]
            for r in rows
        ],
        title="per-phase span totals",
    )
    metrics = [r for r in records if r.get("type") == "metric"]
    if metrics:
        mtable = format_table(
            ["metric", "labels", "value"],
            [
                [
                    m["name"],
                    ",".join(f"{k}={v}" for k, v in sorted(m.get("labels", {}).items())) or "-",
                    m.get("value", m.get("count", 0)),
                ]
                for m in metrics
            ],
            title="metric snapshots",
        )
        return table + "\n\n" + mtable
    return table


# ----------------------------------------------------------------------
# Flamegraph-style self time
# ----------------------------------------------------------------------
def self_times(records: "Sequence[Mapping[str, Any]]") -> "list[dict[str, Any]]":
    """Per span name: total and *self* time (children subtracted).

    Spans are grouped per (domain, tid) lane, sorted by start time, and
    nested by interval containment — the same reconstruction a flamegraph
    does from a Chrome trace.
    """
    lanes: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for record in _spans(records):
        lanes.setdefault((record.get("domain", "wall"), str(record["tid"])), []).append(record)

    agg: dict[tuple[str, str], dict[str, Any]] = {}

    def account(domain: str, name: str, self_s: float, total_s: float) -> None:
        row = agg.setdefault(
            (domain, name),
            {"domain": domain, "name": name, "count": 0, "self_s": 0.0, "total_s": 0.0},
        )
        row["count"] += 1
        row["self_s"] += self_s
        row["total_s"] += total_s

    eps = 1e-12
    for (domain, _tid), spans in lanes.items():
        spans = sorted(spans, key=lambda r: (r["ts"], -r["dur"]))
        stack: list[dict[str, Any]] = []
        for record in spans:
            start, dur = float(record["ts"]), float(record["dur"])
            while stack and stack[-1]["end"] <= start + eps:
                done = stack.pop()
                account(domain, done["name"], done["self"], done["dur"])
            if stack:
                stack[-1]["self"] -= dur
            stack.append({"name": record["name"], "end": start + dur, "self": dur, "dur": dur})
        while stack:
            done = stack.pop()
            account(domain, done["name"], done["self"], done["dur"])

    return sorted(agg.values(), key=lambda r: -r["self_s"])


def render_top(records: "Sequence[Mapping[str, Any]]", n: int = 20) -> str:
    """Hot-list table of the ``n`` largest self-time span names."""
    rows = self_times(records)[:n]
    return format_table(
        ["domain", "name", "count", "self_s", "total_s"],
        [[r["domain"], r["name"], r["count"], r["self_s"], r["total_s"]] for r in rows],
        title=f"top {min(n, len(rows))} spans by self time",
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def _prom_labels(labels: "Mapping[str, Any]", extra: "Mapping[str, Any] | None" = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def to_prometheus(snapshot: "Sequence[Mapping[str, Any]]") -> str:
    """Render metric records in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_type: set[str] = set()
    for metric in snapshot:
        if metric.get("type") not in (None, "metric"):
            continue
        name = _prom_name(metric["name"])
        kind = metric.get("kind", "gauge")
        if name not in seen_type:
            lines.append(f"# TYPE {name} {kind}")
            seen_type.add(name)
        labels = metric.get("labels", {})
        if kind == "histogram":
            cumulative = 0
            for upper, count in zip(metric["buckets"], metric["counts"]):
                cumulative += count
                lines.append(f"{name}_bucket{_prom_labels(labels, {'le': upper})} {cumulative}")
            cumulative += metric["counts"][-1]
            lines.append(f'{name}_bucket{_prom_labels(labels, {"le": "+Inf"})} {cumulative}')
            lines.append(f"{name}_sum{_prom_labels(labels)} {metric['sum']}")
            lines.append(f"{name}_count{_prom_labels(labels)} {metric['count']}")
        else:
            lines.append(f"{name}{_prom_labels(labels)} {metric['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Legacy TraceEvent adapter
# ----------------------------------------------------------------------
def spans_from_trace_events(trace: "Sequence[Any]") -> "list[dict[str, Any]]":
    """Unify ``SimResult.trace`` (:class:`TraceEvent`) into span records.

    Emits the same names/categories the simulator's live tracer wiring
    uses, so converted legacy traces and traced runs render identically.
    The span between upload end and server apply includes server queueing
    (``TraceEvent`` does not record the queue/serve split).
    """
    from .span import span_record

    records: list[dict[str, Any]] = []
    prev_down: dict[int, float] = {}
    for event in trace:
        wid = event.worker
        lane = f"worker-{wid}"
        compute_start = prev_down.get(wid, 0.0)
        records.append(
            span_record(
                "worker.compute",
                compute_start,
                event.ready_t - compute_start,
                lane,
                cat="worker",
                domain="virtual",
                args={"worker": wid, "iteration": event.local_iteration},
            )
        )
        records.append(
            span_record(
                "comm.send",
                event.up_start,
                event.up_end - event.up_start,
                lane,
                cat="comm",
                domain="virtual",
                args={"worker": wid, "bytes": event.up_bytes},
            )
        )
        records.append(
            span_record(
                "server.handle",
                event.up_end,
                event.server_t - event.up_end,
                "server",
                cat="server",
                domain="virtual",
                args={"worker": wid, "staleness": event.staleness},
            )
        )
        records.append(
            span_record(
                "comm.recv",
                event.server_t,
                event.down_end - event.server_t,
                lane,
                cat="comm",
                domain="virtual",
                args={"worker": wid, "bytes": event.down_bytes},
            )
        )
        prev_down[wid] = event.down_end
    return records


def check_stream(records: "Sequence[Mapping[str, Any]]") -> "list[str]":
    """Validate a record stream *and* its Chrome conversion in one pass."""
    errors = validate_records(records)
    if not errors:
        errors = validate_chrome_trace(to_chrome_trace(records))
    return errors
