"""Cluster configuration and compute model."""

import numpy as np
import pytest

from repro.sim import ClusterConfig, ComputeModel, LinkModel


class TestComputeModel:
    def test_no_jitter_is_deterministic(self, rng):
        cm = ComputeModel(mean_s=0.5, jitter=0.0)
        assert cm.sample(rng) == 0.5

    def test_jitter_varies(self, rng):
        cm = ComputeModel(mean_s=0.5, jitter=0.2)
        samples = {cm.sample(rng) for _ in range(10)}
        assert len(samples) > 1
        assert all(s > 0 for s in samples)

    def test_speed_factor_scales(self, rng):
        cm = ComputeModel(mean_s=1.0, jitter=0.0)
        assert cm.sample(rng, speed_factor=2.0) == 2.0

    def test_homogeneous_factors(self, rng):
        cm = ComputeModel(heterogeneity=0.0)
        np.testing.assert_array_equal(cm.worker_speed_factors(5, rng), np.ones(5))

    def test_heterogeneous_factors(self, rng):
        cm = ComputeModel(heterogeneity=0.3)
        f = cm.worker_speed_factors(20, rng)
        assert f.std() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeModel(mean_s=0.0)
        with pytest.raises(ValueError):
            ComputeModel(jitter=-1)


class TestClusterConfig:
    def test_defaults(self):
        cfg = ClusterConfig()
        assert cfg.num_workers == 4
        assert cfg.duplex == "full"

    def test_with_bandwidth(self):
        cfg = ClusterConfig.with_bandwidth(8, 1.0, compute_mean_s=0.3)
        assert cfg.num_workers == 8
        assert cfg.uplink.bandwidth_bytes_per_s == pytest.approx(1e9 / 8)
        assert cfg.compute.mean_s == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(wire_scale=0)
        with pytest.raises(ValueError):
            ClusterConfig(duplex="simplex")
        with pytest.raises(ValueError):
            ClusterConfig(server_overhead_s=-1)
