"""Comm-layer smoke tests: ``python -m repro.comm [parallel-smoke]``.

Default (no subcommand): round-trips one frame of every kind — carrying
one payload of every codec type the repo produces — through a real OS
pipe via :class:`~repro.comm.pipe.PipeChannel`, then checks the decoded
frames reconstruct the same dense tensors (at float32 wire precision)
and that close-frame accounting survives intact.

``parallel-smoke``: runs the parallel serve loop (per-shard executor
lanes, ``shard_lanes=N``) end-to-end with every shard lock swapped for
an instrumented lock — the runtime lock-order recorder plus the dynamic
race monitor — while fan-out workers interleave control traffic with
shard-addressed gradients.  Any lock-order inversion, lock cycle, or
guarded-state access outside the owning lock fails the run.

Both exit non-zero on failure, so ``make comm-smoke`` /
``make parallel-smoke`` / CI can gate on them.
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import sys

import numpy as np

from ..compression.coding import BitmapTensor, DenseTensor, QuantizedSparseTensor, SparseTensor
from ..compression.qsgd import QSGDTensor
from ..compression.terngrad import TernaryTensor
from ..ps.messages import DiffMessage, GradientMessage, ModelMessage
from .frames import CloseFrame, DiffFrame, GradientFrame, ModelFrame
from .pipe import PipeChannel

# float32 wire precision: the codec downcasts every value to f32
_WIRE_TOL = 1e-6


def _payload_zoo() -> "dict[str, object]":
    """One payload of every type a strategy or the server can emit."""
    rng = np.random.default_rng(7)
    shape = (4, 6)
    dense = rng.standard_normal(shape)
    mask = np.abs(dense) > 0.8
    return {
        "topk": SparseTensor(
            np.array([0, 5, 17], dtype=np.int64), np.array([0.5, -1.25, 2.0]), shape
        ),
        "randomk": SparseTensor(
            np.sort(rng.choice(dense.size, size=4, replace=False)).astype(np.int64),
            rng.standard_normal(4),
            shape,
        ),
        "threshold-bitmap": BitmapTensor.from_mask(dense, mask),
        "quantised-sparse": QuantizedSparseTensor(
            np.array([1, 9], dtype=np.int64), np.array([1, -1], dtype=np.int8), 0.75, shape
        ),
        "terngrad": TernaryTensor(
            rng.integers(-1, 2, size=dense.size).astype(np.int8), 0.5, shape
        ),
        "qsgd": QSGDTensor(
            rng.integers(-4, 5, size=dense.size).astype(np.int32), 3.25, 4, shape
        ),
        "dense-fallback": DenseTensor(dense),
        "ndarray": dense,
        "zero-nnz": SparseTensor(
            np.array([], dtype=np.int64), np.array([], dtype=np.float64), shape
        ),
        "scalar-shape": SparseTensor(np.array([0], dtype=np.int64), np.array([3.5]), ()),
    }


def _to_dense(payload: object) -> np.ndarray:
    return payload if isinstance(payload, np.ndarray) else payload.to_dense()


def _check_payload(name: str, sent: object, received: object, failures: "list[str]") -> None:
    a, b = _to_dense(sent), _to_dense(received)
    if a.shape != b.shape:
        failures.append(f"{name}: shape {a.shape} != {b.shape}")
    elif not np.allclose(a, b.astype(np.float64), atol=_WIRE_TOL, rtol=_WIRE_TOL):
        failures.append(f"{name}: values drifted beyond float32 wire precision")


def main() -> int:
    left, right = mp.Pipe(duplex=True)
    sender, receiver = PipeChannel(left), PipeChannel(right)
    failures: "list[str]" = []
    zoo = _payload_zoo()

    for i, (name, payload) in enumerate(zoo.items()):
        sender.send(GradientFrame(GradientMessage(i, {"layer": payload}, i), loss=0.25 * i))
        frame = receiver.recv()
        if not isinstance(frame, GradientFrame):
            failures.append(f"{name}: gradient frame decoded as {type(frame).__name__}")
            continue
        if frame.worker_id != i or abs(frame.loss - 0.25 * i) > 1e-12:
            failures.append(f"{name}: gradient frame header fields drifted")
        _check_payload(f"gradient[{name}]", payload, frame.message.payload["layer"], failures)

    diff_payload = {"layer": zoo["topk"]}
    sender.send(DiffFrame(DiffMessage(3, diff_payload, server_timestamp=42, staleness=2)))
    frame = receiver.recv()
    if isinstance(frame, DiffFrame) and frame.message.staleness == 2:
        _check_payload("diff", zoo["topk"], frame.message.payload["layer"], failures)
    else:
        failures.append("diff frame lost its type or staleness")

    model_payload = {"layer": _to_dense(zoo["ndarray"])}
    sender.send(ModelFrame(ModelMessage(1, model_payload, server_timestamp=7, staleness=0)))
    frame = receiver.recv()
    if isinstance(frame, ModelFrame):
        _check_payload("model", model_payload["layer"], frame.message.payload["layer"], failures)
    else:
        failures.append("model frame lost its type")

    for close in (
        CloseFrame(worker_id=2, samples_processed=640, worker_state_bytes=1 << 20),
        CloseFrame(worker_id=5, samples_processed=32, error="ZeroDivisionError: boom"),
        CloseFrame(worker_id=0),
    ):
        sender.send(close)
        frame = receiver.recv()
        if frame != close:
            failures.append(f"close frame round-trip changed: {close} -> {frame}")

    sender.close()
    receiver.close()

    print(f"comm loopback: {len(zoo)} payload types, {len(zoo) + 5} frames over an OS pipe")
    print(
        f"  wire bytes: {sender.wire_bytes_sent} sent == "
        f"{receiver.wire_bytes_received} received"
    )
    if sender.wire_bytes_sent != receiver.wire_bytes_received:
        failures.append("wire byte counters disagree between the two pipe ends")
    for failure in failures:
        print(f"  FAIL {failure}")
    print("comm loopback: OK" if not failures else f"comm loopback: {len(failures)} failure(s)")
    return 1 if failures else 0


def parallel_smoke(num_shards: int = 4, num_workers: int = 3, steps: int = 8) -> int:
    """Parallel serve loop under lock-order + race instrumentation.

    Every shard lock (and the membership directory's) is enrolled in a
    :class:`~repro.analysis.concurrency.LockRegistry` and each shard's
    guarded state is wrapped by the dynamic race monitor; the loop then
    serves ``num_workers`` fan-out workers with one executor lane per
    shard.  The lanes' whole safety argument — decode outside every
    lock, dispatch under exactly one shard lock, reply via one writer —
    must leave zero inversions, zero cycles, zero race violations.
    """
    import threading
    from collections import OrderedDict

    import numpy as np

    from ..analysis.concurrency import LockRegistry
    from ..analysis.race import RaceMonitor, instrument_object
    from ..core.methods import Hyper, get_method
    from ..exec.common import build_server
    from ..ps.membership import WorkerDirectory
    from .frames import CONTROL_JOIN, CONTROL_LEAVE, ControlFrame
    from .pipe import PipeChannel
    from .service import ServerService, serve_channels

    rng = np.random.default_rng(5)
    theta0 = OrderedDict((f"w{i}", rng.normal(size=(16, 16))) for i in range(6))
    server = build_server(
        get_method("asgd"),
        theta0,
        num_workers,
        Hyper(lr=0.05, momentum=0.0),
        num_shards=num_shards,
    )
    membership = WorkerDirectory(server)
    service = ServerService(server, membership=membership)

    registry = LockRegistry()
    monitor = RaceMonitor()
    for i, shard in enumerate(server.shards):
        instrument_object(shard, monitor=monitor, name=f"ps.shard{i}", registry=registry)
    if hasattr(membership, "register_lock"):
        membership.register_lock(registry)

    server_ends, worker_ends = [], []
    for _ in range(num_workers):
        a, b = mp.Pipe(duplex=True)
        server_ends.append(PipeChannel(a))
        worker_ends.append(PipeChannel(b))
    payload = {k: np.full_like(v, 0.01) for k, v in theta0.items()}
    parts = server.partition.split(payload)
    worker_errors: "list[BaseException]" = []

    def worker(worker_id: int, ch: PipeChannel) -> None:
        try:
            ch.send(ControlFrame(worker_id, CONTROL_JOIN))
            ch.recv()
            # rotate the shard order per worker so the lanes genuinely
            # interleave instead of convoying through shard 0
            order = [(worker_id + i) % len(parts) for i in range(len(parts))]
            for step in range(steps):
                for s in order:
                    ch.send(
                        GradientFrame(
                            GradientMessage(worker_id, parts[s], step), loss=0.0, shard=s
                        )
                    )
                    ch.recv()
            ch.send(ControlFrame(worker_id, CONTROL_LEAVE))
            ch.send(CloseFrame(worker_id=worker_id))
        except BaseException as exc:  # noqa: BLE001 - reported below
            worker_errors.append(exc)
        finally:
            ch.close()

    threads = [
        threading.Thread(target=worker, args=(w, ch)) for w, ch in enumerate(worker_ends)
    ]
    for t in threads:
        t.start()
    report = serve_channels(
        server_ends, service, expected_closes=num_workers, shard_lanes=num_shards
    )
    for t in threads:
        t.join(timeout=30)

    failures: "list[str]" = []
    if worker_errors:
        failures.append(f"worker thread raised: {worker_errors[0]!r}")
    if report.updates != num_workers * steps:
        failures.append(f"served {report.updates} steps, expected {num_workers * steps}")
    if (report.joins, report.leaves) != (num_workers, num_workers):
        failures.append(f"membership drifted: joins={report.joins} leaves={report.leaves}")
    expected_names = {f"ps.shard{i}" for i in range(server.num_shards)}
    if not expected_names <= set(registry.names):
        failures.append(f"shard locks missing from the registry: {registry.names}")
    if monitor.violations:
        failures.append(monitor.report())
    inversions = registry.inversions()
    if inversions:
        failures.append(registry.report())
    cycles = registry.cycles()
    if cycles:
        failures.append(f"lock cycles: {cycles}")

    print(
        f"parallel serve smoke: {num_workers} workers x {steps} steps over "
        f"{server.num_shards} lanes ({len(registry.order_edges())} lock-order "
        f"edge(s), {len(inversions)} inversion(s), "
        f"{len(monitor.violations)} race violation(s))"
    )
    for failure in failures:
        print(f"  FAIL {failure}")
    print("parallel serve smoke: OK" if not failures else
          f"parallel serve smoke: {len(failures)} failure(s)")
    return 1 if failures else 0


def _cli(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(prog="repro.comm", description=__doc__)
    sub = ap.add_subparsers(dest="cmd")
    p = sub.add_parser(
        "parallel-smoke",
        help="parallel serve loop under lock-order + race instrumentation",
    )
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--steps", type=int, default=8)
    args = ap.parse_args(argv)
    if args.cmd == "parallel-smoke":
        return parallel_smoke(args.shards, args.workers, args.steps)
    return main()


if __name__ == "__main__":
    sys.exit(_cli())
