"""TCP socket channels: the repo's frames over a real network transport.

:class:`SocketChannel` carries the exact byte format of
:mod:`repro.comm.frames` over a stream socket, length-prefixed::

    record := length u32 (little-endian) | frame bytes

The frame codec is untouched — a socket ships the same bytes a pipe does,
so the float32 wire conversion, shard-routing header, and analytic byte
accounting mean the same thing on both transports.  Wire counters track
frame bytes (the length prefix is transport framing, not payload — the
same convention as ``PipeChannel``, whose pipe header is also uncounted).

Failure semantics match the pipe transport so the serve loop treats both
identically:

* clean EOF mid-stream raises ``EOFError`` — a peer that vanished without
  a close frame is a crash, reported as a partial result;
* :class:`ChannelTimeout` (an ``OSError``) fires when ``read_timeout_s``
  elapses inside a read — the guard against a half-sent frame wedging the
  server after ``wait()`` reported readability.  On the server side the
  timeout is set from the straggler budget, so a stalled peer resolves to
  the same eviction path as a silent one.

:meth:`SocketChannel.connect` retries with capped exponential backoff —
workers and server race to start in a real deployment (and in the
loopback CI smoke), and the first connect routinely lands before the
listener is up.

:class:`SocketListener` binds ``127.0.0.1:0`` by default: an ephemeral
loopback port, which is what CI uses; real deployments pass an explicit
``host:port``.
"""

from __future__ import annotations

import socket as _socket
import struct
import time

from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .channel import ChannelClosed
from .frames import Frame, decode_frame, encode_frame

__all__ = [
    "ChannelTimeout",
    "ShardListenerGroup",
    "SocketChannel",
    "SocketListener",
    "DEFAULT_BACKOFF_BASE_S",
    "DEFAULT_BACKOFF_CAP_S",
]

_LENGTH = struct.Struct("<I")

#: first connect-retry delay; doubles per attempt up to the cap
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 1.0


class ChannelTimeout(OSError):
    """A read exceeded the channel's ``read_timeout_s``.

    Subclasses ``OSError`` deliberately: the serve loop's crash handling
    catches it, so a wedged peer resolves to the same partial-result /
    eviction semantics as a dead one.
    """


class SocketChannel:
    """One endpoint of a TCP connection speaking the comm frame format."""

    def __init__(
        self,
        sock: "_socket.socket",
        tracer: "object | None" = None,
        read_timeout_s: "float | None" = None,
    ) -> None:
        self._sock = sock
        self.tracer = tracer
        #: per-read deadline; ``None`` blocks forever (worker side default)
        self.read_timeout_s = read_timeout_s
        #: actual frame bytes through the socket (length prefixes excluded)
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self._closed = False
        try:
            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (e.g. AF_UNIX in tests); Nagle is moot

    # ------------------------------------------------------------------
    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        tracer: "object | None" = None,
        read_timeout_s: "float | None" = None,
        retry_for_s: float = 10.0,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    ) -> "SocketChannel":
        """Connect to a listening server, retrying with capped exponential
        backoff for up to ``retry_for_s`` seconds.

        Workers routinely start before the server's listener is bound (two
        terminals, one ``fork`` race); refused/unreachable connects retry
        at ``backoff_base_s``, doubling per attempt up to ``backoff_cap_s``.
        Raises ``ConnectionError`` when the budget is exhausted.
        """
        deadline = time.monotonic() + retry_for_s
        delay = backoff_base_s
        attempt = 0
        while True:
            attempt += 1
            try:
                sock = _socket.create_connection((host, port), timeout=retry_for_s)
                return cls(sock, tracer=tracer, read_timeout_s=read_timeout_s)
            except OSError as exc:
                if time.monotonic() + delay > deadline:
                    raise ConnectionError(
                        f"could not connect to {host}:{port} after {attempt} "
                        f"attempt(s) over {retry_for_s:g}s: {exc}"
                    ) from exc
                time.sleep(delay)
                delay = min(delay * 2.0, backoff_cap_s)

    # ------------------------------------------------------------------
    def _tracer(self):
        return self.tracer if self.tracer is not None else current_tracer()

    def _recv_exactly(self, n: int) -> bytes:
        """``n`` bytes off the stream, honouring ``read_timeout_s``.

        EOF before ``n`` bytes raises ``EOFError`` (crash semantics — the
        peer vanished without a close frame); a deadline elapsing raises
        :class:`ChannelTimeout`.
        """
        self._sock.settimeout(self.read_timeout_s)
        chunks: "list[bytes]" = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except _socket.timeout as exc:
                raise ChannelTimeout(
                    f"no bytes for {self.read_timeout_s:g}s mid-frame"
                ) from exc
            if not chunk:
                raise EOFError("socket closed mid-stream (no close frame)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def send(self, frame: Frame) -> None:
        self.send_raw(encode_frame(frame))

    def send_raw(self, raw: bytes) -> None:
        """Ship an already-encoded frame (one length-prefixed sendall, so
        concurrent senders on *different* channels never interleave a
        frame's bytes).  The parallel serve loop encodes replies on its
        shard lanes and hands the bytes to one writer thread."""
        if self._closed:
            raise ChannelClosed("socket channel is closed")
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_SEND, cat="comm", bytes=len(raw)):
                self._sock.sendall(_LENGTH.pack(len(raw)) + raw)
        else:
            self._sock.sendall(_LENGTH.pack(len(raw)) + raw)
        self.wire_bytes_sent += len(raw)

    def recv_raw(self) -> bytes:
        """One encoded frame off the stream (the serve loop peeks the shard
        id off these bytes before decoding)."""
        if self._closed:
            raise ChannelClosed("socket channel is closed")
        tracer = self._tracer()
        if tracer.enabled:
            with tracer.span(obs_names.COMM_RECV, cat="comm") as span:
                (length,) = _LENGTH.unpack(self._recv_exactly(_LENGTH.size))
                raw = self._recv_exactly(length)
                span.set(bytes=len(raw))
        else:
            (length,) = _LENGTH.unpack(self._recv_exactly(_LENGTH.size))
            raw = self._recv_exactly(length)
        self.wire_bytes_received += len(raw)
        return raw

    def recv(self) -> Frame:
        return decode_frame(self.recv_raw())

    @property
    def waitable(self):
        """What ``multiprocessing.connection.wait`` blocks on (it accepts
        socket objects alongside pipe connections)."""
        return self._sock

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass  # peer already gone
            self._sock.close()


class SocketListener:
    """Accepts :class:`SocketChannel` s; loopback-ephemeral by default."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 64,
        tracer: "object | None" = None,
        read_timeout_s: "float | None" = None,
    ) -> None:
        self._sock = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
        self._sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.tracer = tracer
        #: stamped onto every accepted channel (server-side read deadline)
        self.read_timeout_s = read_timeout_s
        self._closed = False

    @property
    def address(self) -> "tuple[str, int]":
        """The bound (host, port) — port 0 resolves to the ephemeral pick."""
        return self._sock.getsockname()[:2]

    @property
    def waitable(self):
        """The listening socket: readable ⇔ a connection is pending."""
        return self._sock

    def accept(self) -> SocketChannel:
        sock, _addr = self._sock.accept()
        return SocketChannel(
            sock, tracer=self.tracer, read_timeout_s=self.read_timeout_s
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()


class ShardListenerGroup:
    """One :class:`SocketListener` per shard — parallel TCP ingress.

    The shard-parallel socket backend stops funnelling every worker
    through one accept/recv loop: shard ``s`` owns ``listeners[s]``, each
    drained by its own serve loop, so N shards means N independent TCP
    ingress paths.  ``port=0`` gives every shard its own ephemeral
    loopback port (the CI default — read the picks off ``addresses``); an
    explicit ``port`` binds shard ``s`` on ``port + s``, the deterministic
    layout ``repro.ps worker --shard-parallel`` dials.

    Shard 0's listener doubles as the control plane: workers run the
    join/leave handshake and send their accounting close frame there
    (matching the worker loop's ``shard_channels`` contract), so
    membership lives on exactly one serve loop.
    """

    def __init__(
        self,
        num_shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 64,
        tracer: "object | None" = None,
        read_timeout_s: "float | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.listeners: "list[SocketListener]" = []
        try:
            for s in range(num_shards):
                self.listeners.append(
                    SocketListener(
                        host,
                        0 if port == 0 else port + s,
                        backlog=backlog,
                        tracer=tracer,
                        read_timeout_s=read_timeout_s,
                    )
                )
        except OSError:
            self.close()
            raise

    @property
    def addresses(self) -> "list[tuple[str, int]]":
        """Per-shard bound (host, port), shard order."""
        return [listener.address for listener in self.listeners]

    def __len__(self) -> int:
        return len(self.listeners)

    def __iter__(self):
        return iter(self.listeners)

    def __getitem__(self, shard: int) -> SocketListener:
        return self.listeners[shard]

    def close(self) -> None:
        for listener in self.listeners:
            listener.close()
