"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    make_blobs,
    make_image_classes,
    make_spirals,
    synthetic_cifar10,
    synthetic_imagenet,
)


class TestDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1), 2)

    def test_properties(self):
        ds = make_blobs(n_samples=100, num_classes=3, dim=5, seed=0)
        assert ds.n_train + ds.n_val == 100
        assert ds.input_shape == (5,)

    def test_shard_disjoint_and_covering(self):
        ds = make_blobs(n_samples=103, num_classes=2, dim=3, seed=0)
        shards = [ds.shard(4, i) for i in range(4)]
        total = sum(s.n_train for s in shards)
        assert total == ds.n_train
        # Shards see non-overlapping rows: pairwise different sample sets.
        all_rows = np.concatenate([s.x_train for s in shards])
        assert all_rows.shape[0] == ds.n_train

    def test_shard_shares_validation(self):
        ds = make_blobs(n_samples=100, seed=0)
        s = ds.shard(4, 1)
        np.testing.assert_array_equal(s.x_val, ds.x_val)

    def test_shard_out_of_range(self):
        ds = make_blobs(n_samples=40, seed=0)
        with pytest.raises(ValueError):
            ds.shard(4, 4)


class TestBlobs:
    def test_determinism(self):
        a = make_blobs(n_samples=50, seed=3)
        b = make_blobs(n_samples=50, seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)

    def test_seed_changes_data(self):
        a = make_blobs(n_samples=50, seed=3)
        b = make_blobs(n_samples=50, seed=4)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_labels_in_range(self):
        ds = make_blobs(n_samples=200, num_classes=7, seed=0)
        assert set(np.unique(ds.y_train)).issubset(set(range(7)))

    def test_separable_when_far(self):
        ds = make_blobs(n_samples=300, num_classes=3, dim=10, sep=10.0, noise=0.1, seed=0)
        # nearest-centroid classification should be near-perfect
        centroids = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in range(3)])
        pred = np.linalg.norm(ds.x_val[:, None] - centroids[None], axis=2).argmin(axis=1)
        assert (pred == ds.y_val).mean() > 0.95


class TestSpirals:
    def test_2d(self):
        ds = make_spirals(n_samples=100, seed=0)
        assert ds.input_shape == (2,)

    def test_radius_bounded(self):
        ds = make_spirals(n_samples=500, noise=0.0, seed=0)
        r = np.linalg.norm(ds.x_train, axis=1)
        assert r.max() <= 1.01 and r.min() >= 0.15


class TestImageClasses:
    def test_shapes(self):
        ds = make_image_classes(n_samples=80, num_classes=5, channels=3, size=8, seed=0)
        assert ds.input_shape == (3, 8, 8)
        assert ds.num_classes == 5

    def test_difficulty_monotone(self):
        """Higher difficulty ⇒ lower nearest-template accuracy."""

        def template_acc(difficulty):
            ds = make_image_classes(
                n_samples=400, num_classes=5, size=8, difficulty=difficulty, seed=0
            )
            flat = ds.x_train.reshape(len(ds.x_train), -1)
            centroids = np.stack(
                [flat[ds.y_train == c].mean(axis=0) for c in range(5)]
            )
            val = ds.x_val.reshape(len(ds.x_val), -1)
            pred = np.linalg.norm(val[:, None] - centroids[None], axis=2).argmin(axis=1)
            return (pred == ds.y_val).mean()

        assert template_acc(0.5) > template_acc(6.0)

    def test_cifar10_protocol(self):
        ds = synthetic_cifar10(n_samples=100)
        assert ds.num_classes == 10 and ds.input_shape[0] == 3

    def test_imagenet_protocol(self):
        ds = synthetic_imagenet(n_samples=200, num_classes=25)
        assert ds.num_classes == 25
        assert ds.name == "synthetic-imagenet"
