"""Wire messages exchanged between workers and the parameter server.

Every message knows its byte size on the wire (*actual*) and the size the
same information would cost uncompressed (*dense equivalent*), which is what
the communication model of ``repro.sim`` and the compression accounting
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..compression.coding import SparseTensor, dense_nbytes

__all__ = ["GradientMessage", "DiffMessage", "ModelMessage", "payload_nbytes", "payload_dense_nbytes"]

Payload = "Mapping[str, SparseTensor] | Mapping[str, np.ndarray]"


def payload_nbytes(payload: Payload) -> int:
    """Actual wire bytes of a per-layer payload.

    Duck-typed: anything carrying its own ``nbytes()`` (COO, ternary, or
    quantised-sparse tensors) reports directly; plain ndarrays cost dense
    float32.
    """
    total = 0
    for arr in payload.values():
        if isinstance(arr, np.ndarray):
            total += dense_nbytes(arr.size)
        else:
            total += arr.nbytes()
    return total


def payload_dense_nbytes(payload: Payload) -> int:
    """Bytes the same payload would cost sent dense."""
    total = 0
    for arr in payload.values():
        n = int(np.prod(arr.shape))
        total += dense_nbytes(n)
    return total


@dataclass
class GradientMessage:
    """Upstream: worker → server.  ``encode(g_{k,t})`` of Algorithms 1/3."""

    worker_id: int
    payload: Payload
    local_iteration: int

    def nbytes(self) -> int:
        return payload_nbytes(self.payload)

    def dense_nbytes(self) -> int:
        return payload_dense_nbytes(self.payload)


@dataclass
class DiffMessage:
    """Downstream: server → worker.  ``encode(G_{k,t+1})`` of Algorithm 2."""

    worker_id: int
    payload: "Mapping[str, SparseTensor]"
    server_timestamp: int
    staleness: int

    def nbytes(self) -> int:
        return payload_nbytes(self.payload)

    def dense_nbytes(self) -> int:
        return payload_dense_nbytes(self.payload)


@dataclass
class ModelMessage:
    """Downstream for vanilla ASGD: the full global model, dense."""

    worker_id: int
    payload: "Mapping[str, np.ndarray]"
    server_timestamp: int
    staleness: int

    def nbytes(self) -> int:
        return payload_dense_nbytes(self.payload)

    def dense_nbytes(self) -> int:
        return payload_dense_nbytes(self.payload)
