"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_blobs
from repro.nn import MLP


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_dataset():
    """A quickly separable 4-class dataset for end-to-end tests."""
    return make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.5, noise=0.8, seed=1)


@pytest.fixture
def tiny_model_factory():
    """Deterministic small MLP factory matching tiny_dataset."""
    return lambda: MLP(12, (24,), 4, seed=7)
