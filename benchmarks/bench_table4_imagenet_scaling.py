"""Table 4 — ImageNet stand-in, 4 and 16 workers."""

from repro.harness.experiments import table4_imagenet_scaling
from repro.harness.config import is_fast_mode


def test_table4_imagenet_scaling(run_experiment):
    report = run_experiment(table4_imagenet_scaling, "table4_imagenet", seeds=(0,))
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only

    def acc(workers, method):
        for row in report.rows:
            if row[0] == workers and row[1] == method:
                return float(row[2].rstrip("%"))
        raise KeyError((workers, method))

    # Shape (paper Table 4): DGS ahead of ASGD at 4 workers.  At 16 workers
    # the micro-scale methods compress into a ~1-pt band (documented
    # deviation, EXPERIMENTS.md), so the bound is looser there.
    assert acc(4, "DGS") > acc(4, "ASGD") - 0.5
    for n in sorted({r[0] for r in report.rows if r[1] != "MSGD"}):
        assert acc(n, "DGS") > acc(n, "ASGD") - 2.5
