"""Fixture: cross-shard ABBA — the nesting mistake sharding invites.

A sharded store is deadlock-free only while shard locks never nest: the
real :class:`repro.ps.sharded.ShardedParameterServer` fans out strictly
one shard at a time.  This fixture commits the tempting violation — a
"consistency check" reading a sibling shard *while still holding* its
own lock — in both directions: ``ShardAlpha.apply`` calls
``ShardBeta.total`` under the alpha lock, ``ShardBeta.rebalance`` calls
``ShardAlpha.total`` under the beta lock.  Statically that is one LCK004
cycle; dynamically, ``drive`` exercises both nesting orders so a
:class:`repro.analysis.concurrency.LockRegistry` records the inversion.
"""

from __future__ import annotations

import threading


class ShardAlpha:
    def __init__(self, sibling: "ShardBeta | None" = None) -> None:
        self.values: "list[float]" = []
        self.sibling = sibling
        self._lock = threading.Lock()

    def total(self) -> float:
        with self._lock:
            return sum(self.values)

    def apply(self, value: float) -> float:
        with self._lock:
            self.values.append(value)
            # cross-shard read under our own lock: the inversion seed
            assert self.sibling is not None
            return sum(self.values) + self.sibling.total()


class ShardBeta:
    def __init__(self) -> None:
        self.values: "list[float]" = []
        self.sibling: "ShardAlpha | None" = None
        self._lock = threading.Lock()

    def total(self) -> float:
        with self._lock:
            return sum(self.values)

    def rebalance(self) -> float:
        with self._lock:
            # pull load figures from the sibling shard, lock still held
            assert self.sibling is not None
            moved = self.sibling.total() / 2.0
            self.values.append(moved)
            return moved


def drive(registry) -> "tuple[ShardAlpha, ShardBeta]":
    """Run both nesting orders under a LockRegistry (sequentially — the
    inversion is recorded from order alone, no deadlock required)."""
    beta = ShardBeta()
    alpha = ShardAlpha(beta)
    beta.sibling = alpha
    registry.attach(alpha, "shard-alpha")
    registry.attach(beta, "shard-beta")
    t1 = threading.Thread(target=alpha.apply, args=(1.0,), name="apply")
    t1.start()
    t1.join()
    t2 = threading.Thread(target=beta.rebalance, name="rebalance")
    t2.start()
    t2.join()
    return alpha, beta
