"""ExperimentReport container."""

import pytest

from repro.harness.report import ExperimentReport


@pytest.fixture
def report():
    rep = ExperimentReport(
        experiment_id="Table X",
        title="demo",
        headers=("a", "b"),
        paper_rows=[("p1", "p2")],
    )
    rep.add_row("r1", "r2")
    rep.add_note("a note")
    rep.figures.append("ASCII FIG")
    rep.svgs["chart"] = "<svg/>"
    return rep


class TestReport:
    def test_table_contains_id_and_rows(self, report):
        out = report.table()
        assert "Table X" in out and "r1" in out

    def test_markdown_has_both_tables(self, report):
        md = report.markdown()
        assert "Table X: demo" in md
        assert "Table X (paper)" in md
        assert "> a note" in md

    def test_render_includes_figures_and_paper(self, report):
        out = report.render()
        assert "ASCII FIG" in out
        assert "paper reported" in out
        assert "note: a note" in out

    def test_add_row_tuples(self, report):
        report.add_row(1, 2.5)
        assert report.rows[-1] == (1, 2.5)

    def test_empty_report_renders(self):
        rep = ExperimentReport("F", "t", ("x",))
        assert "F: t" in rep.render()
