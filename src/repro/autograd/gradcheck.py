"""Numerical gradient checking for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*inputs).data.sum())
        flat[i] = orig - eps
        lo = float(fn(*inputs).data.sum())
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every differentiable input.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` on success (so it can be used directly in assertions).
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        num = numerical_gradient(fn, inputs, i, eps=eps)
        ana = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            worst = np.abs(ana - num).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{ana}\nnumerical:\n{num}"
            )
    return True
