"""The explicit lock-owning-class registry.

The static checkers discover most lock owners by the ``self._lock``
convention (:func:`repro.analysis.locks.find_lock_classes`); classes whose
lock has a different name — a dataclass field, a narrow merge lock — opt
into the *whole-program* concurrency analysis here instead.  An entry only
enrolls the class as a node of the lock-acquisition graph (LCK004/LCK005);
it does **not** subject it to the per-class LCK001–003 discipline, whose
guarded-state inference assumes the ``_lock`` convention.

Runtime instrumentation reads the companion ``__guarded_attrs__`` class
declaration (see :func:`guarded_attrs_of`): a lock-owning class lists the
attributes its lock protects, and both :func:`repro.analysis.race
.instrument_object` and the self-consistency tests consume that single
source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LockClassEntry", "LOCK_CLASS_REGISTRY", "guarded_attrs_of", "registry_entry"]


@dataclass(frozen=True)
class LockClassEntry:
    """One explicitly registered lock-owning class."""

    module: str  #: dotted module path relative to the package root, e.g. ``obs.tracer``
    cls: str  #: class name
    lock_attr: str  #: the attribute holding the lock, e.g. ``_merge_lock``


#: classes the ``self._lock`` convention cannot discover but that do own a
#: lock and therefore participate in the whole-program lock graph
LOCK_CLASS_REGISTRY: "tuple[LockClassEntry, ...]" = (
    # byte-accounting sink: dataclass field lock, shared by all channels
    LockClassEntry("compression.stats", "CompressionStats", "_mu"),
    # tracer: narrow lock guarding the cross-thread buffer list
    LockClassEntry("obs.tracer", "Tracer", "_merge_lock"),
    # parameter-server shard: inherits ``self._lock`` from ParameterServer
    # without assigning it in its own __init__, so convention discovery
    # (which only walks a class's own __init__) cannot see it
    LockClassEntry("ps.sharded", "ParameterShard", "_lock"),
    # elastic-membership directory: its lock is deliberately not named
    # ``_lock`` (it guards only bookkeeping and must never nest with the
    # server lock — see repro/ps/membership.py's lock discipline note)
    LockClassEntry("ps.membership", "WorkerDirectory", "_members_mu"),
)


def registry_entry(module: str, cls: str) -> "LockClassEntry | None":
    """The registry entry for ``(module, cls)``, if one exists."""
    for entry in LOCK_CLASS_REGISTRY:
        if entry.module == module and entry.cls == cls:
            return entry
    return None


def guarded_attrs_of(cls: type) -> "tuple[str, ...] | None":
    """The class's declared guarded attributes, or ``None`` if undeclared.

    The declaration is inherited-attribute aware: a subclass of a declared
    class (e.g. a test double over ``ParameterServer``) inherits the
    declaration unless it overrides ``__guarded_attrs__`` itself.
    """
    attrs = getattr(cls, "__guarded_attrs__", None)
    if attrs is None:
        return None
    return tuple(attrs)
