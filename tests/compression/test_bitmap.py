"""Bitmap / dense payload codecs and the encode_best selector."""

import numpy as np
import pytest

from repro.compression import (
    BitmapTensor,
    DenseTensor,
    SparseTensor,
    bitmap_nbytes,
    dense_nbytes,
    encode_best,
    sparse_nbytes,
)


def with_density(rng, n, density):
    arr = np.zeros(n)
    k = int(n * density)
    idx = rng.choice(n, size=k, replace=False)
    arr[idx] = rng.normal(size=k)
    return arr


class TestBitmapTensor:
    def test_roundtrip(self, rng):
        arr = with_density(rng, 200, 0.2).reshape(10, 20)
        bt = BitmapTensor.from_mask(arr, arr != 0)
        # Wire values are float32; roundtrip is exact at f32 precision.
        np.testing.assert_array_equal(bt.to_dense(), arr.astype(np.float32))

    def test_add_into(self, rng):
        arr = with_density(rng, 64, 0.25)
        bt = BitmapTensor.from_mask(arr, arr != 0)
        dest = np.ones(64)
        bt.add_into(dest)
        np.testing.assert_allclose(dest, 1.0 + arr.astype(np.float32).astype(np.float64))

    def test_add_into_shape_mismatch(self, rng):
        arr = with_density(rng, 16, 0.5)
        bt = BitmapTensor.from_mask(arr, arr != 0)
        with pytest.raises(ValueError):
            bt.add_into(np.zeros(17))

    def test_nbytes(self, rng):
        arr = with_density(rng, 800, 0.1)
        bt = BitmapTensor.from_mask(arr, arr != 0)
        assert bt.nbytes() == bitmap_nbytes(800, bt.nnz)

    def test_invalid_bitmap_length(self):
        with pytest.raises(ValueError):
            BitmapTensor(np.zeros(3, dtype=np.uint8), np.zeros(1), (100,))


class TestDenseTensor:
    def test_interface(self, rng):
        arr = rng.normal(size=(4, 4))
        dt = DenseTensor(arr)
        np.testing.assert_array_equal(dt.to_dense(), arr)
        assert dt.nbytes() == dense_nbytes(16)
        dest = np.zeros((4, 4))
        dt.add_into(dest)
        np.testing.assert_array_equal(dest, arr)


class TestEncodeBest:
    def test_very_sparse_uses_coo(self, rng):
        arr = with_density(rng, 10_000, 0.005)
        assert isinstance(encode_best(arr), SparseTensor)

    def test_medium_density_uses_bitmap(self, rng):
        arr = with_density(rng, 10_000, 0.2)
        assert isinstance(encode_best(arr), BitmapTensor)

    def test_dense_falls_back(self, rng):
        arr = rng.normal(size=10_000)  # fully dense
        assert isinstance(encode_best(arr), DenseTensor)

    @pytest.mark.parametrize("density", [0.001, 0.02, 0.1, 0.4, 0.9])
    def test_roundtrip_any_density(self, rng, density):
        arr = with_density(rng, 5000, density).reshape(50, 100)
        enc = encode_best(arr)
        np.testing.assert_array_equal(enc.to_dense(), arr.astype(np.float32))

    @pytest.mark.parametrize("density", [0.001, 0.02, 0.1, 0.4, 0.9])
    def test_always_at_most_each_format(self, rng, density):
        arr = with_density(rng, 5000, density)
        enc = encode_best(arr)
        nnz = int(np.count_nonzero(arr))
        assert enc.nbytes() <= sparse_nbytes(nnz)
        assert enc.nbytes() <= bitmap_nbytes(5000, nnz)
        assert enc.nbytes() <= dense_nbytes(5000)

    def test_break_even_coo_vs_bitmap(self):
        """COO beats bitmap below n/8 / 4 ≈ 3.1% density, loses above."""
        n = 10_000
        low = int(n * 0.02)
        high = int(n * 0.05)
        assert sparse_nbytes(low) < bitmap_nbytes(n, low)
        assert sparse_nbytes(high) > bitmap_nbytes(n, high)


class TestCodecIntegration:
    def test_bitmap_through_wire(self, rng):
        from collections import OrderedDict

        from repro.ps import DiffMessage
        from repro.ps.codec import decode_message, encode_message

        arr = with_density(rng, 256, 0.3)
        bt = BitmapTensor.from_mask(arr, arr != 0)
        msg = DiffMessage(0, OrderedDict([("w", bt)]), 5, 0)
        out = decode_message(encode_message(msg))
        got = out.payload["w"]
        assert isinstance(got, BitmapTensor)
        np.testing.assert_allclose(got.to_dense(), arr, rtol=1e-6)

    def test_tracker_downstream_uses_cheapest(self, rng):
        """After many sparse updates from another worker, a stale worker's G
        is dense enough that encode_best picks bitmap (or dense)."""
        from collections import OrderedDict

        from repro.compression import encode_sparse
        from repro.core.tracker import ModelDifferenceTracker

        tr = ModelDifferenceTracker(OrderedDict([("w", (1000,))]), 2)
        for i in range(40):
            upd = np.zeros(1000)
            upd[rng.choice(1000, size=30, replace=False)] = 1.0
            tr.apply_update(OrderedDict([("w", encode_sparse(upd))]))
        G = tr.model_difference(0)
        assert not isinstance(G["w"], SparseTensor)  # densified → bitmap/dense
        # and it still reconstructs exactly
        theta = np.zeros(1000)
        G["w"].add_into(theta)
        np.testing.assert_allclose(theta, tr.M["w"])
