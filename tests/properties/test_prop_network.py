"""Property tests for the network simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import LinkModel, SharedLink

transfers = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),  # ready time (unsorted!)
        st.integers(min_value=0, max_value=10**7),  # bytes
    ),
    min_size=1,
    max_size=30,
)


@given(transfers=transfers, bw=st.floats(min_value=1e3, max_value=1e9), lat=st.floats(min_value=0, max_value=0.1))
@settings(max_examples=100, deadline=None)
def test_fifo_link_invariants(transfers, bw, lat):
    """For arrival-ordered reservations: no overlap, no start before ready,
    busy time equals the sum of durations."""
    link = SharedLink(LinkModel(bw, lat))
    prev_end = 0.0
    total = 0.0
    for ready, nbytes in sorted(transfers):
        start, end = link.reserve(ready, nbytes)
        assert start >= ready
        assert start >= prev_end  # FIFO: no overlap
        duration = lat + nbytes / bw
        assert end == start + duration
        prev_end = end
        total += duration
    assert link.busy_time == total
    assert link.free_at == prev_end


@given(
    nbytes=st.integers(min_value=0, max_value=10**8),
    bw1=st.floats(min_value=1e3, max_value=1e8),
    factor=st.floats(min_value=1.5, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_transfer_time_monotone_in_bandwidth(nbytes, bw1, factor):
    slow = LinkModel(bw1, 0.0).transfer_time(nbytes)
    fast = LinkModel(bw1 * factor, 0.0).transfer_time(nbytes)
    assert fast <= slow
