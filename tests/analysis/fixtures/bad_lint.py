"""Deliberately bad module exercised by the linter fixture tests.

Never imported — parsed only.  Each construct below triggers exactly one
rule; the tests assert exact finding counts and messages against this file,
so edits here must be mirrored in ``tests/analysis/test_linter.py``.
"""

import numpy as np

__all__ = ["leak", "missing_name"]


def leak(values=[]):  # MUT001
    values.append(np.random.rand())  # RNG001
    return values


def helper():  # EXP002
    try:
        buf = np.zeros(4)  # DTY001 under the all-hot fixture config
    except:  # EXC001
        buf = None
    return buf


def poke(t):  # EXP002
    t.data += 1.0  # TEN001
    return t
