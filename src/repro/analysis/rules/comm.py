"""COM001 — wire framing stays inside ``repro.comm``.

The channel layer is the only place allowed to turn messages into bytes:
``repro.comm`` owns frame encode/decode and the pipe and TCP transports,
and ``ps/codec.py`` owns the payload codec it delegates to.  Anywhere
else, ``import struct``, ``import socket``, ``multiprocessing.connection``
imports, or direct ``encode_message`` / ``decode_message`` calls mean a
trainer is growing its own ad-hoc wire protocol — exactly the duplication
the channel layer exists to prevent, and a path where byte accounting
silently diverges between backends.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["WireFramingRule"]

#: codec entry points that only the channel layer may call
_CODEC_CALLS = {"encode_message", "decode_message"}


class WireFramingRule(Rule):
    id = "COM001"
    summary = "wire framing (struct / socket / multiprocessing.connection / codec calls) outside repro.comm"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if module.may_do_wire_framing(config):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "struct" or alias.name.startswith("struct."):
                        yield self.finding(
                            module,
                            node,
                            "import of 'struct' outside repro.comm; byte framing "
                            "belongs in the channel layer (repro/comm)",
                        )
                    elif alias.name == "socket" or alias.name.startswith("socket."):
                        yield self.finding(
                            module,
                            node,
                            "import of 'socket' outside repro.comm; raw TCP belongs "
                            "in the channel layer (use a SocketChannel/SocketListener)",
                        )
                    elif alias.name == "multiprocessing.connection":
                        yield self.finding(
                            module,
                            node,
                            "import of 'multiprocessing.connection' outside repro.comm; "
                            "use a PipeChannel from the channel layer instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                mod = node.module or ""
                if mod == "struct" or mod.startswith("struct."):
                    yield self.finding(
                        module,
                        node,
                        "import from 'struct' outside repro.comm; byte framing "
                        "belongs in the channel layer (repro/comm)",
                    )
                elif mod == "socket" or mod.startswith("socket."):
                    yield self.finding(
                        module,
                        node,
                        "import from 'socket' outside repro.comm; raw TCP belongs "
                        "in the channel layer (use a SocketChannel/SocketListener)",
                    )
                elif mod == "multiprocessing.connection" or (
                    mod == "multiprocessing"
                    and any(a.name == "connection" for a in node.names)
                ):
                    yield self.finding(
                        module,
                        node,
                        "import of 'multiprocessing.connection' outside repro.comm; "
                        "use a PipeChannel from the channel layer instead",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if name in _CODEC_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"direct call to '{name}' outside repro.comm; send a Frame "
                        "through a Channel so bytes are accounted once",
                    )
