"""Fixed-threshold sparsification (Strom 2015), kept as a baseline selector.

The paper notes "it is hard to determine an appropriate threshold for a
neural network in practice" — this class exists so that claim is testable.
"""

from __future__ import annotations

import numpy as np

from .base import Sparsifier

__all__ = ["ThresholdSparsifier"]


class ThresholdSparsifier(Sparsifier):
    """Send entries whose magnitude exceeds a fixed absolute threshold."""

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        self.threshold = threshold

    def mask(self, arr: np.ndarray) -> np.ndarray:
        return np.abs(arr) > self.threshold

    def __repr__(self) -> str:
        return f"ThresholdSparsifier(threshold={self.threshold})"
