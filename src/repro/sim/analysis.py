"""Closed-form performance model for the asynchronous PS pipeline.

The event-driven simulator measures throughput; this module *predicts* it
from first principles, and a test asserts the two agree.  The steady-state
model for ``N`` homogeneous workers with compute time ``C`` per iteration
and per-exchange link occupancy ``L`` (sum of upload + download transfer
times on the shared half-duplex link, or the max direction on a full-duplex
link):

* **pipeline regime** (``N·rate_one ≤ 1/L``): every worker cycles
  independently; throughput ≈ ``N / (C + L′)`` where ``L′`` is the
  unloaded round-trip communication time;
* **saturated regime**: the shared link admits at most ``1/L`` exchanges
  per second, so throughput caps at ``1/L`` regardless of ``N``.

Speedup over one worker is therefore ``min(N, (C + L′) / L)`` up to
queueing fringe effects — the closed form behind Figure 6's shapes
(docs/simulator.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import ClusterConfig

__all__ = ["PerfPrediction", "predict"]


@dataclass(frozen=True)
class PerfPrediction:
    """Predicted steady-state behaviour of one configuration."""

    iteration_time_one_worker_s: float  # unloaded cycle time C + L'
    link_occupancy_per_exchange_s: float  # serial resource time L
    max_update_rate_per_s: float  # 1 / L
    throughput_updates_per_s: float  # min(N/(C+L'), 1/L)
    speedup_vs_one_worker: float
    saturated: bool


def predict(
    cluster: ClusterConfig,
    upload_bytes: float,
    download_bytes: float,
) -> PerfPrediction:
    """Predict throughput/speedup for ``cluster`` and per-exchange sizes.

    ``upload_bytes`` / ``download_bytes`` are the *unscaled* per-message
    sizes (the model applies ``cluster.wire_scale``), e.g. taken from a
    measured ``SimResult``: ``upload_bytes / total_iterations``.
    """
    if upload_bytes < 0 or download_bytes < 0:
        raise ValueError("message sizes must be non-negative")
    up_t = cluster.uplink.transfer_time(int(upload_bytes * cluster.wire_scale))
    down_t = cluster.downlink.transfer_time(int(download_bytes * cluster.wire_scale))
    # Unloaded round-trip communication the worker waits through.
    round_trip = up_t + down_t + cluster.server_overhead_s
    # Serial resource time per exchange: both directions share one link in
    # half-duplex mode, otherwise the bottleneck direction governs.
    if cluster.duplex == "half":
        occupancy = up_t + down_t
    else:
        occupancy = max(up_t, down_t)
    occupancy = max(occupancy, cluster.server_overhead_s)

    cycle = cluster.compute.mean_s + round_trip
    pipeline_rate = cluster.num_workers / cycle
    cap_rate = 1.0 / occupancy if occupancy > 0 else float("inf")
    throughput = min(pipeline_rate, cap_rate)
    one_worker_rate = 1.0 / cycle
    return PerfPrediction(
        iteration_time_one_worker_s=cycle,
        link_occupancy_per_exchange_s=occupancy,
        max_update_rate_per_s=cap_rate,
        throughput_updates_per_s=throughput,
        speedup_vs_one_worker=throughput / one_worker_rate,
        saturated=cap_rate < pipeline_rate,
    )
