"""Multi-process parameter-server trainer.

The closest offline stand-in for the paper's multi-machine deployment:
workers are separate OS processes (true parallel gradient computation, no
GIL sharing), and every exchange travels as *actual bytes* through an OS
pipe using the binary wire codec (``repro.ps.codec``) — the same
``encode()``/``decode()``路径 the paper's gloo transport performs.

Frame format on the pipe: little-endian ``f64 loss`` + codec message bytes
upstream; codec message bytes downstream; an empty frame closes a worker.

Notes
-----
* Requires the ``fork`` start method (Linux default): workers inherit the
  model factory and dataset by address-space copy, so no pickling of
  closures is needed.
* Values cross the wire as float32 (as on the paper's testbed), so worker
  replicas drift from the server model at float32 resolution — real
  deployments hold float32 end-to-end, making this exact in practice.
* BatchNorm running statistics stay local to each worker process; the
  final evaluation uses a fresh replica's statistics (prefer BN-free
  models for exact numbers here, e.g. MLP).
"""

from __future__ import annotations

import multiprocessing as mp
import struct
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Callable

from ..core.layerops import assign_parameters, parameters_of
from ..core.methods import Hyper, MethodSpec, get_method
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_params
from ..nn.module import Module
from ..optim.schedules import ConstantLR, Schedule
from .codec import decode_message, encode_message
from .server import ParameterServer
from .worker import WorkerNode

__all__ = ["ProcessTrainer", "ProcessResult"]

_LOSS = struct.Struct("<d")


@dataclass
class ProcessResult:
    final_accuracy: float
    final_loss: float
    loss_curve: Curve
    server_timestamp: int
    mean_staleness: float
    wire_bytes_up: int
    wire_bytes_down: int


def _worker_main(
    conn: Connection,
    worker_id: int,
    num_workers: int,
    model_factory: Callable[[], Module],
    dataset: Dataset,
    theta0,
    batch_size: int,
    iterations: int,
    method: MethodSpec,
    hyper: Hyper,
    schedule: Schedule,
    seed: int,
) -> None:
    model = model_factory()
    assign_parameters(model, theta0)
    shapes = {name: arr.shape for name, arr in theta0.items()}
    loader = DataLoader(dataset, batch_size, seed=seed)
    node = WorkerNode(
        worker_id,
        model,
        loader.worker_iterator(worker_id, num_workers),
        method.make_strategy(shapes, hyper),
        schedule=schedule,
    )
    try:
        for _ in range(iterations):
            msg = node.compute_step()
            conn.send_bytes(_LOSS.pack(node.last_loss) + encode_message(msg))
            reply = decode_message(conn.recv_bytes())
            node.apply_reply(reply)
    finally:
        conn.send_bytes(b"")  # close frame
        conn.close()


class ProcessTrainer:
    """PS training with one OS process per worker, bytes on real pipes."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        iterations_per_worker: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        seed: int = 0,
    ) -> None:
        self.method = get_method(method) if isinstance(method, str) else method
        if not self.method.distributed:
            raise ValueError(f"method {self.method.name!r} is single-node; use LocalTrainer")
        self.hyper = hyper if hyper is not None else Hyper()
        self.schedule = schedule if schedule is not None else ConstantLR(self.hyper.lr)
        self.model_factory = model_factory
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.iterations_per_worker = iterations_per_worker
        self.seed = seed

        self.eval_model = model_factory()
        self.theta0 = parameters_of(self.eval_model)
        use_secondary = (
            self.method.secondary_default if secondary_compression is None else secondary_compression
        )
        secondary = (
            self.hyper.secondary_ratio
            if (self.method.downstream == "difference" and use_secondary)
            else None
        )
        self.server = ParameterServer(
            self.theta0,
            num_workers,
            downstream=self.method.downstream,
            secondary_ratio=secondary,
            secondary_min_sparse_size=self.hyper.min_sparse_size,
        )

    def run(self) -> ProcessResult:
        ctx = mp.get_context("fork")
        conns: list[Connection] = []
        procs: list[mp.Process] = []
        for w in range(self.num_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child,
                    w,
                    self.num_workers,
                    self.model_factory,
                    self.dataset,
                    self.theta0,
                    self.batch_size,
                    self.iterations_per_worker,
                    self.method,
                    self.hyper,
                    self.schedule,
                    self.seed,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        loss_curve = Curve("loss_vs_server_step")
        wire_up = wire_down = 0
        open_conns = {id(c): c for c in conns}
        try:
            while open_conns:
                for conn in wait(list(open_conns.values())):
                    try:
                        raw = conn.recv_bytes()
                    except EOFError:
                        open_conns.pop(id(conn), None)
                        continue
                    if not raw:  # close frame
                        open_conns.pop(id(conn), None)
                        continue
                    (loss,) = _LOSS.unpack_from(raw, 0)
                    msg = decode_message(memoryview(raw)[_LOSS.size :])
                    wire_up += len(raw) - _LOSS.size
                    reply = self.server.handle(msg)
                    out = encode_message(reply)
                    wire_down += len(out)
                    conn.send_bytes(out)
                    loss_curve.add(len(loss_curve) + 1, loss)
        finally:
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()

        global_params = self.server.global_model()
        acc, loss = evaluate_params(
            self.eval_model, global_params, self.dataset.x_val, self.dataset.y_val
        )
        return ProcessResult(
            final_accuracy=acc,
            final_loss=loss,
            loss_curve=loss_curve,
            server_timestamp=self.server.timestamp,
            mean_staleness=self.server.staleness_meter.avg,
            wire_bytes_up=wire_up,
            wire_bytes_down=wire_down,
        )
