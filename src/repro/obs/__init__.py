"""Unified tracing + metrics for every execution layer (``repro.obs``).

One schema, three producers, three exporters:

* **Producers** — the threaded trainer (real threads, wall clock), the
  event-driven simulator (virtual clock), and the opt-in hot-path hooks
  (autograd ops, top-k selection, wire codec) all emit *span* records;
  the parameter server additionally meters lock wait/hold per worker.
* **Schema** — ``repro.obs.span``: JSONL records (``meta`` / ``span`` /
  ``metric`` / ``step``) with explicit clock domains.
* **Exporters** — Chrome ``chrome://tracing`` JSON, a flamegraph-style
  text summary, and Prometheus text, behind ``python -m repro.obs``
  (``convert`` / ``summary`` / ``top`` / ``smoke``) and
  ``python -m repro run --trace out.json``.

See ``docs/observability.md`` for the full API and overhead numbers.
"""

from .export import (
    check_stream,
    load_jsonl,
    render_summary,
    render_top,
    self_times,
    spans_from_trace_events,
    summarize,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from .hooks import HOT_PATH_GROUPS, profile_hot_paths
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsLogger,
    quantile_from_counts,
)
from .names import is_valid_name, registered_names
from .runs import (
    HealthSpec,
    HealthViolation,
    evaluate_health,
    git_sha,
    load_manifest,
    new_run_id,
    render_compare,
    render_report,
    worker_skew_s,
    write_run_dir,
)
from .span import Span, relabel_records, span_record, validate_record, validate_records
from .tracer import NullTracer, Tracer, current_tracer, set_tracer, use_tracer
from . import names

__all__ = [
    "Span",
    "span_record",
    "relabel_records",
    "validate_record",
    "validate_records",
    "names",
    "is_valid_name",
    "registered_names",
    "HealthSpec",
    "HealthViolation",
    "evaluate_health",
    "git_sha",
    "load_manifest",
    "new_run_id",
    "render_compare",
    "render_report",
    "worker_skew_s",
    "write_run_dir",
    "quantile_from_counts",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsLogger",
    "DEFAULT_BUCKETS",
    "HOT_PATH_GROUPS",
    "profile_hot_paths",
    "check_stream",
    "load_jsonl",
    "summarize",
    "render_summary",
    "render_top",
    "self_times",
    "spans_from_trace_events",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "write_chrome_trace",
]
