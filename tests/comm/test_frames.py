"""Frame schema: encode/decode round-trips, headers, close accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import (
    FRAME_MAGIC,
    CloseFrame,
    DiffFrame,
    GradientFrame,
    ModelFrame,
    decode_frame,
    encode_frame,
    peek_shard,
    reply_frame,
)
from repro.compression import SparseTensor
from repro.ps.messages import DiffMessage, GradientMessage, ModelMessage


def _sparse(n=8, nnz=3):
    idx = np.arange(nnz, dtype=np.int64)
    return SparseTensor(idx, np.linspace(0.5, 1.5, nnz), (n,))


class TestGradientFrame:
    def test_roundtrip_preserves_header_and_payload(self):
        msg = GradientMessage(worker_id=3, payload={"w": _sparse()}, local_iteration=11)
        frame = GradientFrame(msg, loss=1.75)
        out = decode_frame(encode_frame(frame))
        assert isinstance(out, GradientFrame)
        assert out.worker_id == 3
        assert out.loss == 1.75
        assert out.message.local_iteration == 11
        np.testing.assert_array_equal(out.message.payload["w"].indices, _sparse().indices)

    def test_nbytes_matches_message(self):
        msg = GradientMessage(0, {"w": _sparse()}, 0)
        frame = GradientFrame(msg, loss=0.0)
        assert frame.nbytes() == msg.nbytes()
        assert frame.dense_nbytes() == msg.dense_nbytes()


class TestDownstreamFrames:
    def test_diff_roundtrip_keeps_staleness(self):
        msg = DiffMessage(1, {"w": _sparse()}, server_timestamp=42, staleness=5)
        out = decode_frame(encode_frame(DiffFrame(msg)))
        assert isinstance(out, DiffFrame)
        assert out.message.staleness == 5
        assert out.message.server_timestamp == 42

    def test_model_roundtrip(self):
        dense = np.linspace(-1, 1, 6).reshape(2, 3)
        msg = ModelMessage(2, {"w": dense}, server_timestamp=7, staleness=0)
        out = decode_frame(encode_frame(ModelFrame(msg)))
        assert isinstance(out, ModelFrame)
        np.testing.assert_allclose(out.message.payload["w"], dense, atol=1e-6)

    def test_reply_frame_wraps_by_type(self):
        diff = DiffMessage(0, {}, 0, 0)
        model = ModelMessage(0, {}, 0, 0)
        assert isinstance(reply_frame(diff), DiffFrame)
        assert isinstance(reply_frame(model), ModelFrame)
        with pytest.raises(TypeError):
            reply_frame(GradientMessage(0, {}, 0))


class TestCloseFrame:
    @pytest.mark.parametrize(
        "frame",
        [
            CloseFrame(worker_id=2, samples_processed=640, worker_state_bytes=1 << 20),
            CloseFrame(worker_id=5, samples_processed=0, error="ValueError: boom"),
            CloseFrame(worker_id=0),  # nothing reported
        ],
    )
    def test_roundtrip_identity(self, frame):
        assert decode_frame(encode_frame(frame)) == frame

    def test_close_frames_cost_no_payload_bytes(self):
        frame = CloseFrame(worker_id=1, samples_processed=10)
        assert frame.nbytes() == 0 and frame.dense_nbytes() == 0

    def test_empty_error_normalises_to_none(self):
        out = decode_frame(encode_frame(CloseFrame(worker_id=1, error="")))
        assert out.error is None


class TestWireErrors:
    def test_bad_magic_rejected(self):
        raw = bytearray(encode_frame(CloseFrame(worker_id=0)))
        assert raw[0] == FRAME_MAGIC
        raw[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_frame(bytes(raw))

    def test_unknown_kind_rejected(self):
        raw = bytearray(encode_frame(CloseFrame(worker_id=0)))
        raw[1] = 99
        with pytest.raises(ValueError, match="kind"):
            decode_frame(bytes(raw))

    def test_truncated_frame_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_frame(b"\xdf")

    def test_kind_payload_mismatch_rejected(self):
        # a gradient frame must wrap a GradientMessage: splice a diff body in
        grad = encode_frame(GradientFrame(GradientMessage(0, {"w": _sparse()}, 0), 0.0))
        diff = encode_frame(DiffFrame(DiffMessage(0, {"w": _sparse()}, 0, 0)))
        # header (4) + loss (8) from the gradient, codec body after the
        # diff's header (4) + staleness (4)
        spliced = grad[:12] + diff[8:]
        with pytest.raises(ValueError):
            decode_frame(spliced)


class TestShardRouting:
    def test_default_shard_is_whole_server(self):
        frame = GradientFrame(GradientMessage(0, {"w": _sparse()}, 0), 0.0)
        assert frame.shard == -1
        assert peek_shard(encode_frame(frame)) == -1

    @pytest.mark.parametrize("shard", [0, 3, 1000])
    def test_shard_roundtrips_on_payload_frames(self, shard):
        grad = GradientFrame(GradientMessage(1, {"w": _sparse()}, 2), 0.5, shard=shard)
        out = decode_frame(encode_frame(grad))
        assert out.shard == shard
        diff = DiffFrame(DiffMessage(1, {"w": _sparse()}, 4, 1), shard=shard)
        assert decode_frame(encode_frame(diff)).shard == shard
        model = ModelFrame(
            ModelMessage(1, {"w": np.zeros(4)}, 4, 1), shard=shard
        )
        assert decode_frame(encode_frame(model)).shard == shard

    def test_peek_shard_reads_header_without_decoding(self):
        raw = encode_frame(
            GradientFrame(GradientMessage(0, {"w": _sparse()}, 0), 0.0, shard=7)
        )
        # the fixed-size header is enough: the payload may be truncated
        assert peek_shard(raw[:4]) == 7
        with pytest.raises(ValueError, match="truncated"):
            peek_shard(raw[:3])
        bad = bytearray(raw)
        bad[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            peek_shard(bytes(bad))

    def test_control_frames_are_never_shard_addressed(self):
        assert peek_shard(encode_frame(CloseFrame(worker_id=2))) == -1

    def test_reply_frame_stamps_shard(self):
        reply = reply_frame(DiffMessage(0, {}, 0, 0), shard=5)
        assert reply.shard == 5
