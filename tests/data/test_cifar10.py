"""Real-CIFAR-10 binary loader, tested against same-format fixtures."""

import numpy as np
import pytest

from repro.data.cifar10 import (
    CIFAR10_LABELS,
    TEST_FILE,
    TRAIN_FILES,
    load_cifar10,
    read_cifar10_batch,
)


def write_batch(path, n, rng, label_offset=0):
    """Write n records in the official binary layout."""
    records = np.empty((n, 3073), dtype=np.uint8)
    records[:, 0] = (np.arange(n) + label_offset) % 10
    records[:, 1:] = rng.integers(0, 256, size=(n, 3072), dtype=np.uint8)
    records.tofile(str(path))
    return records


@pytest.fixture
def cifar_dir(tmp_path, rng):
    for i, fname in enumerate(TRAIN_FILES):
        write_batch(tmp_path / fname, 20, rng, label_offset=i)
    write_batch(tmp_path / TEST_FILE, 10, rng)
    return tmp_path


class TestReadBatch:
    def test_shapes_and_labels(self, tmp_path, rng):
        recs = write_batch(tmp_path / "b.bin", 8, rng)
        x, y = read_cifar10_batch(tmp_path / "b.bin")
        assert x.shape == (8, 3, 32, 32)
        np.testing.assert_array_equal(y, recs[:, 0])

    def test_pixel_layout(self, tmp_path, rng):
        recs = write_batch(tmp_path / "b.bin", 2, rng)
        x, _ = read_cifar10_batch(tmp_path / "b.bin")
        # red plane of image 0 = bytes 1..1024 row-major
        np.testing.assert_array_equal(
            x[0, 0], recs[0, 1 : 1 + 1024].reshape(32, 32).astype(np.float64)
        )

    def test_truncated_file_rejected(self, tmp_path):
        (tmp_path / "bad.bin").write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            read_cifar10_batch(tmp_path / "bad.bin")

    def test_bad_labels_rejected(self, tmp_path):
        rec = np.zeros(3073, dtype=np.uint8)
        rec[0] = 77
        rec.tofile(str(tmp_path / "bad.bin"))
        with pytest.raises(ValueError):
            read_cifar10_batch(tmp_path / "bad.bin")


class TestLoadCifar10:
    def test_loads_all_batches(self, cifar_dir):
        ds = load_cifar10(cifar_dir)
        assert ds.n_train == 100
        assert ds.n_val == 10
        assert ds.input_shape == (3, 32, 32)
        assert ds.num_classes == 10

    def test_standardised(self, cifar_dir):
        ds = load_cifar10(cifar_dir)
        np.testing.assert_allclose(ds.x_train.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(ds.x_train.std(axis=(0, 2, 3)), 1.0, atol=1e-10)

    def test_val_from_train_fallback(self, cifar_dir):
        (cifar_dir / TEST_FILE).unlink()
        ds = load_cifar10(cifar_dir, val_from_test=False)
        assert ds.n_train + ds.n_val == 100

    def test_limit(self, cifar_dir):
        ds = load_cifar10(cifar_dir, limit=30)
        assert ds.n_train == 30

    def test_missing_dir_clear_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cifar10(tmp_path)

    def test_sharding_works(self, cifar_dir):
        """The real dataset drops into the existing pipeline."""
        ds = load_cifar10(cifar_dir)
        shard = ds.shard(4, 0)
        assert shard.n_train == 25

    def test_label_names(self):
        assert len(CIFAR10_LABELS) == 10
        assert CIFAR10_LABELS[0] == "airplane"
