"""QSGD quantiser (paper ref. [3])."""

import numpy as np
import pytest

from repro.compression.qsgd import QSGDQuantizer, QSGDTensor


class TestQuantize:
    def test_levels_bounded(self, rng):
        q = QSGDQuantizer(s=4, seed=0)
        t = q.quantize(rng.normal(size=500))
        assert np.abs(t.levels).max() <= 4

    def test_unbiased(self, rng):
        arr = rng.normal(size=40)
        q = QSGDQuantizer(s=2, seed=0)
        total = np.zeros_like(arr)
        trials = 800
        for _ in range(trials):
            total += q.dequantize(q.quantize(arr))
        np.testing.assert_allclose(total / trials, arr, atol=0.3)

    def test_zero_vector(self):
        q = QSGDQuantizer(s=4)
        t = q.quantize(np.zeros(10))
        np.testing.assert_array_equal(t.to_dense(), np.zeros(10))

    def test_more_levels_less_error(self, rng):
        arr = rng.normal(size=2000)

        def mse(s):
            q = QSGDQuantizer(s=s, seed=0)
            return float(((q.dequantize(q.quantize(arr)) - arr) ** 2).mean())

        assert mse(64) < mse(2)

    def test_shape_preserved(self, rng):
        q = QSGDQuantizer(s=4)
        assert q.quantize(rng.normal(size=(5, 6))).to_dense().shape == (5, 6)

    def test_nbytes_scales_with_levels(self):
        t2 = QSGDTensor(np.zeros(1000, dtype=np.int32), 1.0, 1, (1000,))
        t16 = QSGDTensor(np.zeros(1000, dtype=np.int32), 1.0, 127, (1000,))
        assert t2.nbytes() < t16.nbytes()

    def test_binary_gradient_is_32x_story(self):
        """§2: 'even binary gradients can only achieve 32x reduced size'."""
        from repro.compression import dense_nbytes

        n = 100_000
        ternary = QSGDTensor(np.zeros(n, dtype=np.int32), 1.0, 1, (n,))
        ratio = dense_nbytes(n) / ternary.nbytes()
        assert 15 < ratio < 33

    def test_invalid_s(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(s=0)
