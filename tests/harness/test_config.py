"""Workload and cluster presets."""

import pytest

from repro.harness import RESNET18_WIRE_BYTES, WORKLOADS, get_workload, paper_cluster
from repro.harness.config import is_fast_mode


class TestWorkloads:
    def test_all_presets_present(self):
        assert {"blobs", "cifar10", "cifar10-resnet", "imagenet"} <= set(WORKLOADS)

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_dataset_fast_mode_is_smaller(self):
        wl = get_workload("blobs")
        assert wl.dataset(fast=True).n_train < wl.dataset(fast=False).n_train

    def test_model_factory_deterministic(self):
        wl = get_workload("blobs")
        import numpy as np

        m1, m2 = wl.model_factory(seed=3)(), wl.model_factory(seed=3)()
        for (_, a), (_, b) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_schedule_decays_at_60_80(self):
        wl = get_workload("cifar10")
        s = wl.schedule(epochs=10)
        assert s(5.9) == pytest.approx(wl.hyper.lr)
        assert s(6.1) == pytest.approx(wl.hyper.lr * 0.1)
        assert s(8.1) == pytest.approx(wl.hyper.lr * 0.01)

    def test_schedule_lr_override(self):
        wl = get_workload("cifar10")
        assert wl.schedule(epochs=10, lr=0.05)(0) == pytest.approx(0.05)

    def test_total_iterations(self):
        wl = get_workload("blobs")
        ds = wl.dataset(fast=False)
        expected = wl.epochs * ds.n_train // wl.batch_size
        assert wl.total_iterations(4, fast=False) == expected


class TestPaperCluster:
    def test_wire_scale_targets_resnet18(self):
        wl = get_workload("cifar10")
        model = wl.model_factory(0)()
        cluster = paper_cluster(8, 10, model)
        assert cluster.wire_scale * 4 * model.num_parameters() == pytest.approx(
            RESNET18_WIRE_BYTES
        )

    def test_half_duplex(self):
        wl = get_workload("cifar10")
        cluster = paper_cluster(4, 1, wl.model_factory(0)())
        assert cluster.duplex == "half"
        assert cluster.uplink.bandwidth_bytes_per_s == pytest.approx(1e9 / 8)


class TestFastMode:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        assert is_fast_mode()
        monkeypatch.delenv("REPRO_SCALE")
        assert not is_fast_mode()
