"""Model Difference Tracking (Algorithm 2 / Eq. 1–6) invariants."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import SparseTensor, TopKSparsifier, encode_sparse
from repro.core.tracker import ModelDifferenceTracker

SHAPES = OrderedDict([("w", (20,)), ("b", (5,))])


def sparse_update(rng, scale=1.0):
    upd = OrderedDict()
    for n, s in SHAPES.items():
        arr = rng.normal(size=s) * scale
        arr[np.abs(arr) < 0.5] = 0.0
        upd[n] = encode_sparse(arr)
    return upd


class TestEq1to5:
    def test_M_accumulates_negative_updates(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 1)
        upd = sparse_update(rng)
        tr.apply_update(upd)
        np.testing.assert_allclose(tr.M["w"], -upd["w"].to_dense())

    def test_timestamp_increments(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 2)
        assert tr.apply_update(sparse_update(rng)) == 1
        assert tr.apply_update(sparse_update(rng)) == 2

    def test_dense_update_accepted(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 1)
        upd = OrderedDict((n, rng.normal(size=s)) for n, s in SHAPES.items())
        tr.apply_update(upd)
        np.testing.assert_allclose(tr.M["w"], -upd["w"])

    def test_v_equals_M_after_exchange(self, rng):
        """Eq. (3): without secondary compression v_k == M after download."""
        tr = ModelDifferenceTracker(SHAPES, 2)
        for _ in range(5):
            tr.apply_update(sparse_update(rng))
            tr.model_difference(0)
            for n in SHAPES:
                np.testing.assert_array_equal(tr.v[0][n], tr.M[n])

    def test_worker_reconstructs_global_model(self, rng):
        """Eq. (5): θ0 + Σ G_k == θ0 + M — DGS ≡ ASGD without secondary."""
        tr = ModelDifferenceTracker(SHAPES, 2)
        theta = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())  # worker 0's model - θ0
        for step in range(10):
            tr.apply_update(sparse_update(rng))
            if step % 3 == 0:  # worker 0 syncs only sometimes (staleness)
                G = tr.model_difference(0)
                for n in SHAPES:
                    G[n].add_into(theta[n])
        tr.apply_update(sparse_update(rng))
        G = tr.model_difference(0)
        for n in SHAPES:
            G[n].add_into(theta[n])
            # atol covers float32 wire rounding of the downloaded diffs.
            np.testing.assert_allclose(theta[n], tr.M[n], atol=1e-5)

    def test_staleness_counts_interleaved_updates(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 2)
        tr.apply_update(sparse_update(rng))
        tr.apply_update(sparse_update(rng))
        tr.model_difference(0)
        assert tr.staleness(0) == 0
        tr.apply_update(sparse_update(rng))
        assert tr.staleness(0) == 1
        assert tr.staleness(1) == 3


class TestSecondaryCompression:
    def test_difference_is_sparsified(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 1, secondary=TopKSparsifier(0.1, min_sparse_size=0))
        for _ in range(5):
            tr.apply_update(sparse_update(rng))
        G = tr.model_difference(0)
        assert G["w"].nnz == 2  # 10% of 20

    def test_v_advances_only_by_sent(self, rng):
        """Eq. (6b): the unsent remainder stays pending in M − v."""
        tr = ModelDifferenceTracker(SHAPES, 1, secondary=TopKSparsifier(0.1, min_sparse_size=0))
        tr.apply_update(sparse_update(rng))
        G = tr.model_difference(0)
        pending = tr.M["w"] - tr.v[0]["w"]
        sent_dense = G["w"].to_dense()
        np.testing.assert_allclose(sent_dense + pending, tr.M["w"], atol=1e-12)
        assert np.abs(pending).sum() > 0  # something was withheld

    def test_remainder_eventually_delivered(self, rng):
        """Repeated syncs with no new updates drain the pending difference."""
        tr = ModelDifferenceTracker(SHAPES, 1, secondary=TopKSparsifier(0.1, min_sparse_size=0))
        tr.apply_update(sparse_update(rng, scale=3.0))
        received = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        for _ in range(30):
            G = tr.model_difference(0)
            for n in SHAPES:
                G[n].add_into(received[n])
        for n in SHAPES:
            np.testing.assert_allclose(received[n], tr.M[n], atol=1e-9)


class TestBookkeeping:
    def test_global_model(self, rng):
        tr = ModelDifferenceTracker(SHAPES, 1)
        theta0 = OrderedDict((n, rng.normal(size=s)) for n, s in SHAPES.items())
        upd = sparse_update(rng)
        tr.apply_update(upd)
        model = tr.global_model(theta0)
        np.testing.assert_allclose(model["w"], theta0["w"] - upd["w"].to_dense())

    def test_server_state_bytes(self):
        tr = ModelDifferenceTracker(SHAPES, 3)
        per_model = (20 + 5) * 8
        assert tr.server_state_bytes() == per_model * (1 + 3)

    def test_no_difference_tracking_mode(self):
        tr = ModelDifferenceTracker(SHAPES, 3, track_differences=False)
        assert tr.server_state_bytes() == (20 + 5) * 8  # M only
        with pytest.raises(RuntimeError):
            tr.model_difference(0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ModelDifferenceTracker(SHAPES, 0)
