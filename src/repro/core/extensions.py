"""Future-work extensions (§6 of the paper).

The paper's conclusion proposes combining DGS with other compression
approaches — TernGrad [Wen et al.] and random coordinate dropping
[Wangni et al.] are named explicitly.  This module implements:

* :class:`TernGradStrategy` — pure ternary-quantised upload (a quantisation
  baseline for the combination ablation);
* :class:`RandomDroppingStrategy` — unbiased random-k upload;
* :class:`DGSTernGradStrategy` — the proposed combination: SAMomentum
  selects the top-R% coordinates (Algorithm 3), and the *values* sent are
  ternary-quantised with error feedback into ``u``, cutting per-element
  value cost from 32 bits to 2.

All three are registered in the method registry under ``terngrad``,
``random_dropping`` and ``dgs_terngrad`` via :func:`register_extensions`
(called on import), so they run through every trainer and bench unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..compression.coding import QuantizedSparseTensor
from ..compression.randomk import RandomKSparsifier
from ..compression.terngrad import TernaryTensor, TernGradQuantizer
from ..compression.topk import TopKSparsifier
from .methods import METHODS, Hyper, MethodSpec
from .strategies import SAMomentumStrategy, WorkerStrategy

__all__ = [
    "TernGradStrategy",
    "RandomDroppingStrategy",
    "DGSTernGradStrategy",
    "QSGDStrategy",
    "build_extension_strategy",
    "register_extensions",
]


class TernGradStrategy(WorkerStrategy):
    """Pure TernGrad upload: each layer of η∇ is ternarised (unbiased)."""

    def __init__(self, shapes: Mapping[str, tuple[int, ...]], seed: int = 0) -> None:
        super().__init__(shapes)
        self.quantizer = TernGradQuantizer(seed=seed)

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float) -> "OrderedDict[str, TernaryTensor]":
        return OrderedDict((name, self.quantizer.quantize(lr * g)) for name, g in grads.items())


class QSGDStrategy(WorkerStrategy):
    """QSGD upload (paper ref. [3]): unbiased s-level quantisation of η∇."""

    def __init__(self, shapes: Mapping[str, tuple[int, ...]], s: int = 4, seed: int = 0) -> None:
        super().__init__(shapes)
        from ..compression.qsgd import QSGDQuantizer

        self.quantizer = QSGDQuantizer(s=s, seed=seed)

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float):
        return OrderedDict((name, self.quantizer.quantize(lr * g)) for name, g in grads.items())


class RandomDroppingStrategy(WorkerStrategy):
    """Random coordinate dropping (Wangni et al.): unbiased, residual-free."""

    def __init__(self, shapes: Mapping[str, tuple[int, ...]], ratio: float, seed: int = 0) -> None:
        super().__init__(shapes)
        self.sparsifier = RandomKSparsifier(ratio, seed=seed, rescale=True)

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float):
        from ..compression.coding import encode_mask

        out = OrderedDict()
        for name, g in grads.items():
            mask, sent, _ = self.sparsifier.split(lr * g)
            out[name] = encode_mask(sent, mask)
        return out


class DGSTernGradStrategy(SAMomentumStrategy):
    """DGS + TernGrad: SAMomentum selection, ternary values, error feedback.

    Per layer: run Algorithm 3's selection on ``u``; quantise the selected
    values to {−1,0,+1}·scale (scale = mean |selected value|, the unbiased
    magnitude for a one-level quantiser over a selected set); the
    quantisation error stays in ``u`` so nothing is lost, mirroring how
    Algorithm 3 keeps unsent mass in ``u``.
    """

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        sparsifier: TopKSparsifier,
        momentum: float,
        seed: int = 0,
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        super().__init__(shapes, sparsifier, momentum, arena=arena, dtype=dtype)
        self._rng = np.random.default_rng(seed)

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float):
        m = self.momentum
        out: OrderedDict[str, QuantizedSparseTensor] = OrderedDict()
        for name, g in grads.items():
            u = self.u[name]
            u *= m
            u += lr * g
            mask = self.sparsifier.mask(u)
            flat_idx = np.flatnonzero(mask.reshape(-1))
            values = u.reshape(-1)[flat_idx]
            scale = float(np.abs(values).mean()) if len(values) else 0.0
            if scale > 0:
                # Deterministic sign quantisation at the mean magnitude;
                # the residual (value − sign·scale) feeds back into u.
                signs = np.sign(values).astype(np.int8)
                quantized = signs * scale
            else:
                signs = np.zeros(len(values), dtype=np.int8)
                quantized = np.zeros(len(values))
            out[name] = QuantizedSparseTensor(flat_idx, signs, scale, u.shape)
            # Error feedback: replace the sent coordinates in u by their
            # quantisation error, then apply the Eq. 15 rescale to the rest.
            u_flat = u.reshape(-1)
            u_flat[flat_idx] = values - quantized
            np.divide(u, m, out=u, where=~mask)
        return out


def register_extensions() -> None:
    """Add the §6 extension methods to the global registry (idempotent)."""
    extras = {
        "dgs_adaptive": MethodSpec(
            name="dgs_adaptive",
            label="DGS (adaptive thr)",
            strategy="dgs_adaptive",
            downstream="difference",
            sparsification="Dual-way, sampled adaptive threshold (§4.1 note)",
            momentum="SAMomentum",
        ),
        "terngrad": MethodSpec(
            name="terngrad",
            label="TernGrad-async",
            strategy="terngrad",
            downstream="model",
            sparsification="ternary quantisation",
            momentum="N",
        ),
        "qsgd": MethodSpec(
            name="qsgd",
            label="QSGD-async",
            strategy="qsgd",
            downstream="model",
            sparsification="s-level stochastic quantisation",
            momentum="N",
        ),
        "random_dropping": MethodSpec(
            name="random_dropping",
            label="RandDrop-async",
            strategy="random_dropping",
            downstream="difference",
            sparsification="random coordinate dropping (unbiased)",
            momentum="N",
        ),
        "dgs_terngrad": MethodSpec(
            name="dgs_terngrad",
            label="DGS+TernGrad",
            strategy="dgs_terngrad",
            downstream="difference",
            sparsification="Dual-way Top-k + ternary values",
            momentum="SAMomentum",
        ),
    }
    METHODS.update({k: v for k, v in extras.items() if k not in METHODS})


def build_extension_strategy(
    kind: str,
    shapes: Mapping[str, tuple[int, ...]],
    hyper: Hyper,
    arena: bool = False,
    arena_dtype: "object | None" = None,
) -> WorkerStrategy | None:
    """Factory hook consulted by :func:`repro.core.methods.build_strategy`."""
    if kind == "terngrad":
        return TernGradStrategy(shapes)
    if kind == "qsgd":
        return QSGDStrategy(shapes)
    if kind == "random_dropping":
        return RandomDroppingStrategy(shapes, hyper.ratio)
    if kind == "dgs_terngrad":
        return DGSTernGradStrategy(
            shapes,
            TopKSparsifier(hyper.ratio, min_sparse_size=hyper.min_sparse_size),
            hyper.momentum,
            arena=arena,
            dtype=arena_dtype,
        )
    if kind == "dgs_adaptive":
        from ..compression.adaptive import AdaptiveThresholdSparsifier

        return SAMomentumStrategy(
            shapes,
            AdaptiveThresholdSparsifier(hyper.ratio, min_sparse_size=hyper.min_sparse_size),
            hyper.momentum,
            arena=arena,
            dtype=arena_dtype,
        )
    return None


register_extensions()
