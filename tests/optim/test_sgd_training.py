"""End-to-end optimizer behaviour on real objectives."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MLP, cross_entropy
from repro.optim import SGD, CosineDecay, StepDecay


def quadratic_min(opt_factory, steps=120):
    """Minimise ||w - target||^2 and return final distance."""
    from repro.nn.module import Parameter

    target = np.array([1.0, -2.0, 3.0])
    w = Parameter(np.zeros(3))
    opt = opt_factory([w])
    for _ in range(steps):
        w.grad = 2 * (w.data - target)
        opt.step()
    return float(np.linalg.norm(w.data - target))


class TestConvergence:
    def test_plain_sgd_converges_on_quadratic(self):
        assert quadratic_min(lambda p: SGD(p, lr=0.1)) < 1e-6

    def test_momentum_converges_on_quadratic(self):
        # heavy ball rings around the optimum; needs more steps to settle
        assert quadratic_min(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=500) < 1e-6

    def test_nesterov_converges(self):
        assert quadratic_min(lambda p: SGD(p, lr=0.05, momentum=0.9, nesterov=True), steps=500) < 1e-6

    def test_weight_decay_biases_toward_zero(self):
        d_plain = quadratic_min(lambda p: SGD(p, lr=0.1))
        d_decayed = quadratic_min(lambda p: SGD(p, lr=0.1, weight_decay=1.0))
        assert d_decayed > d_plain  # pulled away from target toward 0

    def test_momentum_faster_on_ill_conditioned(self):
        """Heavy-ball accelerates along the shallow axis."""
        from repro.nn.module import Parameter

        def run(momentum):
            w = Parameter(np.array([10.0, 10.0]))
            opt = SGD([w], lr=0.02, momentum=momentum)
            scales = np.array([1.0, 0.05])  # condition number 20
            for _ in range(150):
                w.grad = 2 * scales * w.data
                opt.step()
            return float(np.abs(w.data).max())

        assert run(0.9) < run(0.0)


class TestScheduledTraining:
    def test_mlp_with_step_decay_trains(self, tiny_dataset, tiny_model_factory):
        model = tiny_model_factory()
        opt = SGD(model.parameters(), lr=0.2, momentum=0.7)
        schedule = StepDecay(0.2, milestones=(60,), factor=0.1)
        x, y = tiny_dataset.x_train, tiny_dataset.y_train
        rng = np.random.default_rng(0)
        for it in range(100):
            opt.lr = schedule(it)
            idx = rng.permutation(len(x))[:32]
            loss = cross_entropy(model(Tensor(x[idx])), y[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.5

    def test_cosine_reaches_min_lr(self):
        s = CosineDecay(1.0, total_epochs=5, min_lr=0.01)
        assert s(5) == pytest.approx(0.01)
