"""Weight initialisation schemes."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_shape(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 3, 3))
        assert fan_in == 3 * 9
        assert fan_out == 16 * 9

    def test_other_shape(self):
        fan_in, fan_out = init._fan_in_out((5,))
        assert fan_in == fan_out == 5


class TestKaiming:
    def test_uniform_bound(self, rng):
        w = init.kaiming_uniform((64, 100), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 100)
        assert np.abs(w).max() <= bound

    def test_uniform_variance_scales(self, rng):
        small = init.kaiming_uniform((8, 10), rng).std()
        big = init.kaiming_uniform((8, 1000), rng).std()
        assert big < small

    def test_normal_std(self, rng):
        w = init.kaiming_normal((64, 400), rng)
        expected = math.sqrt(2.0) / math.sqrt(400)
        assert w.std() == pytest.approx(expected, rel=0.15)


class TestXavier:
    def test_bound(self, rng):
        w = init.xavier_uniform((50, 30), rng)
        bound = math.sqrt(6.0 / 80)
        assert np.abs(w).max() <= bound


class TestConstants:
    def test_zeros_ones(self):
        assert (init.zeros((3, 3)) == 0).all()
        assert (init.ones((2,)) == 1).all()
