"""Lint rule registry.

Rules live in small themed modules; :func:`default_rules` returns one fresh
instance of each.  To add a rule: subclass :class:`repro.analysis.linter.Rule`
in a module here and register the class in :data:`RULE_CLASSES`
(see ``docs/analysis.md``).
"""

from __future__ import annotations

from ..linter import Rule
from .comm import WireFramingRule
from .dtype import MissingDtypeRule
from .perf import DecodeUnderLockRule, PerLayerLoopRule
from .exports import AllConsistencyRule, MissingAllRule, UndefinedExportRule
from .obs import TelemetryNameRule
from .pragma import PragmaHygieneRule
from .randomness import ModuleLevelRNGRule
from .style import BareExceptRule, MutableDefaultRule
from .tensor import TensorDataMutationRule

__all__ = ["RULE_CLASSES", "default_rules", "known_rule_ids", "rule_index"]

#: every registered rule class, in reporting order
RULE_CLASSES: "tuple[type[Rule], ...]" = (
    ModuleLevelRNGRule,
    MutableDefaultRule,
    BareExceptRule,
    UndefinedExportRule,
    AllConsistencyRule,
    MissingAllRule,
    MissingDtypeRule,
    TensorDataMutationRule,
    WireFramingRule,
    TelemetryNameRule,
    PerLayerLoopRule,
    DecodeUnderLockRule,
    PragmaHygieneRule,
)

#: rule ids reported by the non-lint pillars (lock discipline, lock graph,
#: layering, sanitizer, parse errors) — they have no Rule class
EXTRA_RULE_IDS: "tuple[str, ...]" = (
    "LCK001",
    "LCK002",
    "LCK003",
    "LCK004",
    "LCK005",
    "LCK006",
    "ARC001",
    "ARC002",
    "SAN001",
    "PAR001",
)


def known_rule_ids() -> "frozenset[str]":
    """Every rule id the suite can report (lint rules + pillar rules)."""
    return frozenset(rule_index()) | frozenset(EXTRA_RULE_IDS)


def default_rules() -> "list[Rule]":
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def rule_index() -> "dict[str, type[Rule]]":
    """Map rule id -> class (for ``--select`` and docs)."""
    return {cls.id: cls for cls in RULE_CLASSES}
