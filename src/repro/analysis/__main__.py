"""CLI for the analysis suite: ``python -m repro.analysis``.

Runs all three pillars (lint, lock discipline, sanitizer self-check) over
``src/repro/**`` and exits non-zero when anything is found.  Usage::

    python -m repro.analysis                  # full suite over the package
    python -m repro.analysis path/to/dir      # lint+locks over another tree
    python -m repro.analysis --no-sanitize    # skip the runtime self-check
    python -m repro.analysis --select DTY001,LCK001
    python -m repro.analysis --list-rules
    python -m repro.analysis --format json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import run_analysis
from .findings import Finding
from .rules import rule_index


def _default_root() -> str:
    return str(Path(__file__).resolve().parent.parent)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis", description=__doc__)
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze (default: the repro package)"
    )
    parser.add_argument("--no-lint", action="store_true", help="skip the AST lint pillar")
    parser.add_argument("--no-locks", action="store_true", help="skip the lock-discipline pillar")
    parser.add_argument(
        "--no-sanitize", action="store_true", help="skip the runtime sanitizer self-check"
    )
    parser.add_argument(
        "--select", help="comma-separated rule ids to report (default: all)", default=None
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, cls in sorted(rule_index().items()):
            print(f"{rule_id}  {cls.summary}")
        print("LCK001  guarded state touched without holding the class lock")
        print("LCK002  private method touching guarded state has no in-class caller")
        print("LCK003  lock re-acquired while held (non-reentrant deadlock)")
        print("SAN001  sanitizer self-check failure")
        return 0

    roots = args.paths or [_default_root()]
    for root in roots:
        if not Path(root).exists():
            parser.error(f"path does not exist: {root}")

    known_rules = set(rule_index()) | {"LCK001", "LCK002", "LCK003", "SAN001", "PAR001"}
    if args.select:
        selected = {r.strip() for r in args.select.split(",")}
        unknown = selected - known_rules
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    findings: list[Finding] = []
    for i, root in enumerate(roots):
        findings.extend(
            run_analysis(
                root=root,
                lint=not args.no_lint,
                locks=not args.no_locks,
                # the runtime self-check is tree-independent: run it once
                sanitizer=not args.no_sanitize and i == 0,
            )
        )

    if args.select:
        findings = [f for f in findings if f.rule in selected]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for f in findings:
            print(f.format())
        pillars = [
            name
            for flag, name in (
                (not args.no_lint, "lint"),
                (not args.no_locks, "lock-discipline"),
                (not args.no_sanitize, "sanitizer"),
            )
            if flag
        ]
        status = "FAILED" if findings else "OK"
        print(f"repro.analysis [{', '.join(pillars)}]: {len(findings)} finding(s) — {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
