"""Property tests: every frame kind round-trips over a real TCP socket.

The frame codec itself is property-tested in ``test_prop_frames``; this
module pins the *transport*: a loopback :class:`SocketChannel` pair must
deliver any frame the codec can produce byte-identically — including the
length-prefix reassembly of large frames that arrive in multiple TCP
segments, and the shard id that ``peek_shard`` reads off the raw bytes
before decode.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CONTROL_JOIN,
    CONTROL_LEAVE,
    CloseFrame,
    ControlFrame,
    DiffFrame,
    GradientFrame,
    ModelFrame,
    TelemetryFrame,
)
from repro.comm.frames import peek_shard
from repro.comm.socket import SocketChannel, SocketListener
from repro.compression import SparseTensor
from repro.ps.messages import DiffMessage, GradientMessage, ModelMessage

f32_exact = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


class _LoopbackPair:
    """A connected (client, server) SocketChannel pair on 127.0.0.1."""

    def __init__(self) -> None:
        self.listener = SocketListener()
        host, port = self.listener.address
        self.client = SocketChannel.connect(host, port, retry_for_s=5.0)
        self.server = self.listener.accept()

    def roundtrip(self, frame):
        """Send client → server; return (decoded frame, raw shard id)."""
        self.client.send(frame)
        raw = self.server.recv_raw()
        shard = peek_shard(raw)
        from repro.comm.frames import decode_frame

        return decode_frame(raw), shard

    def close(self) -> None:
        self.client.close()
        self.server.close()
        self.listener.close()


@pytest.fixture(scope="module")
def pair():
    p = _LoopbackPair()
    yield p
    p.close()


def _dense_dict(draw_result):
    return {k: np.asarray(v, dtype=np.float64) for k, v in draw_result.items()}


@st.composite
def dense_models(draw):
    layers = draw(st.integers(1, 3))
    model = {}
    for i in range(layers):
        n = draw(st.integers(1, 48))
        model[f"layer{i}.w"] = np.array(
            draw(st.lists(f32_exact, min_size=n, max_size=n)), dtype=np.float64
        )
    return model


@st.composite
def sparse_models(draw):
    n = draw(st.integers(1, 48))
    nnz = draw(st.integers(0, n))
    idx = np.array(
        sorted(draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz, unique=True))),
        dtype=np.int64,
    )
    vals = np.array(draw(st.lists(f32_exact, min_size=nnz, max_size=nnz)), dtype=np.float64)
    return {"w": SparseTensor(idx, vals, (n,))}


def _as_f32(model):
    return {
        k: np.asarray(v if isinstance(v, np.ndarray) else v.to_dense(), np.float64)
        .astype(np.float32)
        .astype(np.float64)
        for k, v in model.items()
    }


def _received_dense(model):
    return {
        k: np.asarray(v if isinstance(v, np.ndarray) else v.to_dense(), np.float64)
        for k, v in model.items()
    }


@given(model=dense_models(), worker=st.integers(0, 1000), loss=f32_exact, it=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_gradient_frame_over_tcp(pair, model, worker, loss, it):
    out, shard = pair.roundtrip(
        GradientFrame(GradientMessage(worker, model, it), loss=float(loss))
    )
    assert isinstance(out, GradientFrame)
    assert shard == -1  # unrouted: shard ids are stamped by the sharded path
    assert out.worker_id == worker
    assert out.loss == float(loss)
    assert out.message.local_iteration == it
    got, want = _received_dense(out.message.payload), _as_f32(model)
    assert got.keys() == want.keys()
    for k in want:
        np.testing.assert_array_equal(got[k], want[k])


@given(model=sparse_models(), ts=st.integers(0, 10**6), staleness=st.integers(0, 10**4))
@settings(max_examples=25, deadline=None)
def test_diff_frame_over_tcp(pair, model, ts, staleness):
    out, _ = pair.roundtrip(DiffFrame(DiffMessage(3, model, ts, staleness)))
    assert isinstance(out, DiffFrame)
    assert out.message.server_timestamp == ts
    assert out.message.staleness == staleness
    got, want = _received_dense(out.message.payload), _as_f32(model)
    for k in want:
        np.testing.assert_array_equal(got[k], want[k])


@given(model=dense_models(), ts=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_model_frame_over_tcp(pair, model, ts):
    out, _ = pair.roundtrip(ModelFrame(ModelMessage(1, model, ts, 0)))
    assert isinstance(out, ModelFrame)
    assert out.message.server_timestamp == ts
    got, want = _received_dense(out.message.payload), _as_f32(model)
    for k in want:
        np.testing.assert_array_equal(got[k], want[k])


@given(
    worker=st.integers(0, 2**31 - 1),
    samples=st.none() | st.integers(0, 2**62),
    state=st.none() | st.integers(0, 2**62),
    error=st.none() | st.text(min_size=1, max_size=100),
)
@settings(max_examples=25, deadline=None)
def test_close_frame_over_tcp(pair, worker, samples, state, error):
    frame = CloseFrame(
        worker_id=worker, samples_processed=samples, worker_state_bytes=state, error=error
    )
    out, shard = pair.roundtrip(frame)
    assert out == frame
    assert shard == -1  # control plane never shard-routes


_json_scalars = st.none() | st.booleans() | st.integers(-(2**53), 2**53) | st.text(max_size=20)
_span_records = st.fixed_dictionaries(
    {
        "type": st.just("span"),
        "name": st.text(min_size=1, max_size=40),
        "ts": st.floats(0, 1e6, allow_nan=False),
        "dur": st.floats(0, 1e3, allow_nan=False),
    },
    optional={"args": st.dictionaries(st.text(min_size=1, max_size=10), _json_scalars, max_size=3)},
)


@given(worker=st.integers(0, 2**31 - 1), spans=st.lists(_span_records, max_size=6))
@settings(max_examples=25, deadline=None)
def test_telemetry_frame_over_tcp(pair, worker, spans):
    out, shard = pair.roundtrip(TelemetryFrame(worker_id=worker, spans=tuple(spans)))
    assert isinstance(out, TelemetryFrame)
    assert out.worker_id == worker
    assert list(out.spans) == spans
    assert shard == -1


@given(worker=st.integers(0, 2**31 - 1), op=st.sampled_from([CONTROL_JOIN, CONTROL_LEAVE]))
@settings(max_examples=25, deadline=None)
def test_control_frame_over_tcp(pair, worker, op):
    out, shard = pair.roundtrip(ControlFrame(worker_id=worker, op=op))
    assert out == ControlFrame(worker_id=worker, op=op)
    assert shard == -1


def test_wire_counters_exclude_length_prefix(pair):
    """Sender and receiver count the same frame bytes, prefix excluded."""
    sent0, recv0 = pair.client.wire_bytes_sent, pair.server.wire_bytes_received
    from repro.comm.frames import encode_frame

    frame = CloseFrame(worker_id=0, samples_processed=1, worker_state_bytes=2)
    pair.client.send(frame)
    pair.server.recv()
    nbytes = len(encode_frame(frame))
    assert pair.client.wire_bytes_sent - sent0 == nbytes
    assert pair.server.wire_bytes_received - recv0 == nbytes


def test_large_frame_reassembles_across_tcp_segments(pair):
    """A frame far beyond one TCP segment arrives byte-identically."""
    big = {"w": np.arange(300_000, dtype=np.float64)}
    out, _ = pair.roundtrip(ModelFrame(ModelMessage(0, big, 5, 0)))
    np.testing.assert_array_equal(
        out.message.payload["w"], big["w"].astype(np.float32).astype(np.float64)
    )
