"""Top-k sparsifier: exact-k, magnitude ordering, thresholds."""

import numpy as np
import pytest

from repro.compression import TopKSparsifier, topk_mask, topk_threshold


class TestTopKMask:
    def test_exact_count(self, rng):
        arr = rng.normal(size=1000)
        mask = topk_mask(arr, 0.01)
        assert mask.sum() == 10

    def test_ceil_rounding(self, rng):
        arr = rng.normal(size=150)
        assert topk_mask(arr, 0.01).sum() == 2  # ceil(1.5)

    def test_at_least_one(self, rng):
        arr = rng.normal(size=5)
        assert topk_mask(arr, 0.001).sum() == 1

    def test_full_ratio_keeps_all(self, rng):
        arr = rng.normal(size=50)
        assert topk_mask(arr, 1.0).all()

    def test_kept_dominate_dropped(self, rng):
        arr = rng.normal(size=500)
        mask = topk_mask(arr, 0.1)
        kept_min = np.abs(arr[mask]).min()
        dropped_max = np.abs(arr[~mask]).max()
        assert kept_min >= dropped_max

    def test_magnitude_not_sign(self):
        arr = np.array([-10.0, 1.0, 2.0, 3.0])
        mask = topk_mask(arr, 0.25)
        assert mask[0] and not mask[1:].any()

    def test_preserves_shape(self, rng):
        arr = rng.normal(size=(4, 5, 6))
        assert topk_mask(arr, 0.05).shape == (4, 5, 6)


class TestThreshold:
    def test_threshold_partitions(self, rng):
        arr = rng.normal(size=400)
        thr = topk_threshold(arr, 0.05)
        assert (np.abs(arr) > thr).sum() <= 20
        assert thr > 0

    def test_full_ratio_threshold(self, rng):
        assert topk_threshold(rng.normal(size=10), 1.0) == -np.inf


class TestSparsifier:
    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKSparsifier(0.0)
        with pytest.raises(ValueError):
            TopKSparsifier(1.5)

    def test_split_partitions(self, rng):
        sp = TopKSparsifier(0.1, min_sparse_size=0)
        arr = rng.normal(size=300)
        mask, sent, kept = sp.split(arr)
        np.testing.assert_allclose(sent + kept, arr)
        assert (sent[~mask] == 0).all() and (kept[mask] == 0).all()

    def test_min_sparse_size_sends_small_layers_dense(self, rng):
        sp = TopKSparsifier(0.01, min_sparse_size=64)
        small = rng.normal(size=10)
        assert sp.mask(small).all()
        big = rng.normal(size=1000)
        assert sp.mask(big).sum() == 10

    def test_repr(self):
        assert "0.05" in repr(TopKSparsifier(0.05))
