"""The worker protocol loop shared by the threaded and process backends.

Algorithms 1 and 3 describe one worker loop — compute → upload → download
→ apply — and before this module each backend carried its own copy with
its own transport welded in.  :func:`run_worker_loop` is that loop written
once against the :class:`~repro.comm.channel.Channel` contract; the
backend chooses the channel (in-process dispatch, OS pipe) and the loop
stays identical, ending with an explicit
:class:`~repro.comm.frames.CloseFrame` carrying the worker's final local
accounting — on the success path *and* on the exception path (where the
close frame also names the error, so the server side can report a partial
result instead of hanging or guessing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .channel import ChannelClosed
from .frames import (
    CONTROL_JOIN,
    CONTROL_LEAVE,
    CloseFrame,
    ControlFrame,
    GradientFrame,
    TelemetryFrame,
)

if TYPE_CHECKING:
    from ..core.partition import PartitionMap
    from ..obs.metrics import MetricsRegistry
    from ..ps.worker import WorkerNode
    from .channel import Channel

__all__ = ["run_worker_loop"]


def run_worker_loop(
    node: "WorkerNode",
    channel: "Channel",
    iterations: int,
    tracer: "object | None" = None,
    on_step: "Callable[[WorkerNode], None] | None" = None,
    on_iteration: "Callable[[int], None] | None" = None,
    ship_telemetry: bool = False,
    metrics: "MetricsRegistry | None" = None,
    register: bool = False,
    shard_fanout: "PartitionMap | None" = None,
    shard_channels: "list[Channel] | None" = None,
) -> None:
    """Drive ``node`` through ``iterations`` exchanges over ``channel``.

    ``on_step`` runs after each applied reply (trainers record loss curves
    there); ``on_iteration`` runs before each compute step and exists for
    fault injection (e.g. the process backend's hard-crash hook).  The
    close frame is sent from a ``finally`` block: a worker that raises
    still reports the samples it processed and the error that killed it.

    ``ship_telemetry`` makes the loop send a
    :class:`~repro.comm.frames.TelemetryFrame` (the tracer's spans plus
    ``metrics.snapshot()``) just before the close frame — the process
    backend sets it so worker spans reach the parent's merged trace.
    In-process backends share the parent tracer and leave it off.

    ``register`` runs the elastic-membership handshake around the loop:
    a join :class:`~repro.comm.frames.ControlFrame` before the first
    iteration — whose :class:`~repro.comm.frames.ModelFrame` reply
    installs θ_t on the replica, so a late joiner starts from the live
    model, not θ_0 — and a leave frame on the success path before the
    close frame (a crashed worker sends neither; the server's EOF
    handling deregisters it).

    ``shard_fanout`` (a :class:`~repro.core.partition.PartitionMap`)
    switches each step to shard-addressed sub-frames: the gradient payload
    is split along the server's partition, one ``GradientFrame`` per shard
    goes out stamped with its shard id, and the per-shard replies are
    reassembled — keyed by the reply's shard slot, so out-of-order lane
    replies land correctly — into one message before ``apply_reply``.  The
    merged reply takes the most advanced per-shard timestamp/staleness,
    matching the server-side fan-out semantics, so results are bitwise
    identical to whole-frame exchange.

    ``shard_channels`` (requires ``shard_fanout``) routes shard ``s``'s
    sub-frame over ``shard_channels[s]`` instead of multiplexing one
    channel — the socket backend's per-shard listeners.  Its first element
    must be ``channel`` itself, which stays the control plane: join/leave,
    telemetry, and the accounting close frame travel only there, while the
    extra channels get a bare close frame so their serve loops terminate
    cleanly.
    """
    tracer = tracer if tracer is not None else current_tracer()
    if shard_channels is not None:
        if shard_fanout is None:
            raise ValueError("shard_channels requires shard_fanout")
        if not shard_channels or shard_channels[0] is not channel:
            raise ValueError("shard_channels[0] must be the control channel")

    def _exchange(msg):
        """One upload/download round trip; returns the reply message."""
        if shard_fanout is None:
            channel.send(GradientFrame(msg, node.last_loss))
            return channel.recv().message
        parts = shard_fanout.split(msg.payload)
        if shard_channels is not None and len(shard_channels) != len(parts):
            raise ValueError(
                f"{len(shard_channels)} shard channels for {len(parts)} shards"
            )
        for s, part in enumerate(parts):
            sub = type(msg)(msg.worker_id, part, msg.local_iteration)
            target = channel if shard_channels is None else shard_channels[s]
            target.send(GradientFrame(sub, node.last_loss, shard=s))
        replies: "list" = [None] * len(parts)
        if shard_channels is None:
            # One multiplexed channel: parallel lanes may reply out of
            # shard order; the reply's shard slot is the reassembly key.
            for _ in range(len(parts)):
                reply = channel.recv()
                replies[reply.shard] = reply
        else:
            for s, ch in enumerate(shard_channels):
                replies[s] = ch.recv()
        msgs = [reply.message for reply in replies]
        merged = shard_fanout.merge([m.payload for m in msgs])
        return type(msgs[0])(
            msg.worker_id,
            merged,
            max(m.server_timestamp for m in msgs),
            max(m.staleness for m in msgs),
        )

    error: "str | None" = None
    try:
        if register:
            channel.send(ControlFrame(node.worker_id, CONTROL_JOIN))
            reply = channel.recv()
            with tracer.span(obs_names.WORKER_APPLY, cat="worker", worker=node.worker_id):
                node.apply_reply(reply.message)
        for i in range(iterations):
            if on_iteration is not None:
                on_iteration(i)
            with tracer.span(
                obs_names.WORKER_STEP, cat="worker", worker=node.worker_id, iteration=i
            ):
                with tracer.span(obs_names.WORKER_COMPUTE, cat="worker", worker=node.worker_id):
                    msg = node.compute_step()
                reply_msg = _exchange(msg)
                with tracer.span(obs_names.WORKER_APPLY, cat="worker", worker=node.worker_id):
                    node.apply_reply(reply_msg)
            if on_step is not None:
                on_step(node)
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        try:
            if register and error is None:
                channel.send(ControlFrame(node.worker_id, CONTROL_LEAVE))
            if ship_telemetry and getattr(tracer, "enabled", False):
                channel.send(
                    TelemetryFrame(
                        worker_id=node.worker_id,
                        spans=tuple(tracer.records()),
                        metrics=tuple(metrics.snapshot()) if metrics is not None else (),
                    )
                )
            channel.send(
                CloseFrame(
                    worker_id=node.worker_id,
                    samples_processed=node.samples_processed,
                    worker_state_bytes=node.worker_state_bytes(),
                    error=error,
                )
            )
        except (OSError, ChannelClosed):
            pass  # transport already gone: the server side reports the crash
        finally:
            channel.close()
            if shard_channels is not None:
                # Bare closes: the per-shard serve loops each need one to
                # terminate; the accounting close above (channel 0) is the
                # single source of truth for samples/state/error.
                for ch in shard_channels[1:]:
                    try:
                        ch.send(CloseFrame(worker_id=node.worker_id))
                    except (OSError, ChannelClosed):
                        pass
                    finally:
                        ch.close()
