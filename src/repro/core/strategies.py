"""Worker-side gradient emission strategies.

Each strategy consumes the freshly computed per-layer gradients (∇L) and the
current learning rate, and produces the per-layer *update* the worker ships
to the server.  The server's single update rule is ``M ← M − g`` (Eq. 1),
so every strategy emits updates already scaled by η (matching Algorithms
1 and 3, where the residual/momentum accumulates ``η∇``).

Implemented strategies map onto the paper's Table 5 rows:

=============  ============================================================
``dense``      ASGD — send η∇ dense, no local state.
``dropping``   Gradient Dropping (Aji & Heafield; Algorithm 1) — residual
               accumulation + per-layer Top-k.
``dgc``        Deep Gradient Compression (Lin et al.) — momentum
               correction + momentum factor masking + warmup sparsity ramp
               + gradient clipping.
``samomentum`` The paper's SAMomentum (Algorithm 3, Eq. 14–15).
=============  ============================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..compression.base import Sparsifier
from ..compression.coding import SparseTensor, encode_mask
from ..compression.topk import TopKSparsifier
from ..compression.workspace import KernelWorkspace
from ..optim.clip import clip_by_global_norm
from .arena import make_layer_buffers

__all__ = [
    "WorkerStrategy",
    "DenseStrategy",
    "GradientDroppingStrategy",
    "DGCStrategy",
    "SAMomentumStrategy",
    "SparsityRamp",
]

UpdateMap = "OrderedDict[str, SparseTensor] | OrderedDict[str, np.ndarray]"


class WorkerStrategy(ABC):
    """Transforms local gradients into the update message sent upstream.

    Every strategy runs in one of two modes:

    * ``arena=False`` (reference, the default for direct construction):
      state buffers are a dict of independent float64 arrays and the
      kernels allocate per call — the historical behaviour, kept as the
      baseline the property tests compare against;
    * ``arena=True`` (the hot path, default via ``RunConfig``): state
      lives in a :class:`~repro.core.arena.LayerArena` (float32 unless
      ``dtype`` overrides) and the selection/encode kernels draw scratch
      from a per-strategy :class:`KernelWorkspace`.  Selection and
      arithmetic are bitwise-identical to the reference at equal dtype.
    """

    #: whether :meth:`prepare` returns sparse (COO) or dense layers
    sparse_output: bool = True

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        self.shapes = OrderedDict(shapes)
        self.arena = bool(arena)
        self.dtype = dtype
        #: single-threaded scratch pool; one per strategy (see workspace.py)
        self.workspace: "KernelWorkspace | None" = KernelWorkspace() if self.arena else None

    def _make_buffers(self):
        """Zeroed per-layer state in this strategy's chosen representation."""
        return make_layer_buffers(self.shapes, self.arena, self.dtype)

    def _select(self, sparsifier: Sparsifier, arr: np.ndarray) -> SparseTensor:
        """Fused select on the arena path; mask+encode reference otherwise.

        Both routes pick the identical entry set (same argpartition over
        the same magnitudes) — only the allocation behaviour differs.
        """
        st = sparsifier.select(arr, self.workspace)
        if st is None:
            st = encode_mask(arr, sparsifier.mask(arr), self.workspace)
        return st

    @abstractmethod
    def prepare(
        self, grads: Mapping[str, np.ndarray], lr: float
    ) -> "OrderedDict[str, SparseTensor] | OrderedDict[str, np.ndarray]":
        """Return the per-layer update to send for this iteration."""

    def state_bytes(self) -> int:
        """Worker-local buffer memory (for the §5.6.2 accounting)."""
        return 0

    def on_iteration(self) -> None:
        """Hook called once per local iteration (warmup ramps etc.)."""

    # ------------------------------------------------------------------
    # Checkpointing: subclasses expose their named buffers here.
    def _buffers(self) -> "dict[str, OrderedDict[str, np.ndarray]]":
        return {}

    def state_dict(self) -> "dict[str, np.ndarray]":
        """Snapshot the strategy's local buffers (residuals, momenta)."""
        state: dict[str, np.ndarray] = {}
        for buf_name, layers in self._buffers().items():
            for layer_name, arr in layers.items():
                state[f"{buf_name}/{layer_name}"] = arr.copy()
        return state

    def load_state_dict(self, state: "Mapping[str, np.ndarray]") -> None:
        """Restore buffers saved by :meth:`state_dict`."""
        for buf_name, layers in self._buffers().items():
            for layer_name, arr in layers.items():
                np.copyto(arr, state[f"{buf_name}/{layer_name}"])


class DenseStrategy(WorkerStrategy):
    """Vanilla ASGD upload: the full η∇, no compression, no local state."""

    sparse_output = False

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        super().__init__(shapes, arena=arena, dtype=dtype)
        # Arena mode reuses one output arena across iterations (valid until
        # the next prepare(); safe under the strict request→reply cycle).
        self._out = self._make_buffers() if self.arena else None

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float) -> "OrderedDict[str, np.ndarray]":
        if self._out is None:
            return OrderedDict((name, lr * g) for name, g in grads.items())
        for name, g in grads.items():
            np.multiply(g, lr, out=self._out[name])
        return self._out


class GradientDroppingStrategy(WorkerStrategy):
    """Algorithm 1: residual accumulation + per-layer Top-k selection.

    ``r ← r + η∇``; send ``r ⊙ mask``; keep ``r ⊙ ¬mask`` locally.
    Invariant (tested): sent + residual always equals the total accumulated
    η∇ mass — nothing is lost, only delayed.
    """

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        sparsifier: Sparsifier,
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        super().__init__(shapes, arena=arena, dtype=dtype)
        self.sparsifier = sparsifier
        self.residual = self._make_buffers()

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float) -> "OrderedDict[str, SparseTensor]":
        out: OrderedDict[str, SparseTensor] = OrderedDict()
        if self.arena:
            for name, g in grads.items():
                r = self.residual[name]
                r += lr * g
                st = self._select(self.sparsifier, r)
                out[name] = st
                # Zero the sent coordinates through the fused tensor's
                # indices — the same set r[mask] = 0.0 would clear.
                r.reshape(-1)[st.indices] = 0.0
            return out
        for name, g in grads.items():
            r = self.residual[name]
            r += lr * g
            mask = self.sparsifier.mask(r)
            out[name] = encode_mask(r, mask)
            r[mask] = 0.0
        return out

    def state_bytes(self) -> int:
        return sum(r.nbytes for r in self.residual.values())

    def _buffers(self):
        return {"residual": self.residual}


class SparsityRamp:
    """DGC's warmup schedule: exponentially ramp sparsity over early epochs.

    Lin et al. ramp 75% → 93.75% → 98.4375% → 99.6% over the first epochs;
    expressed here as a send-ratio ramp from ``start_ratio`` down to
    ``final_ratio`` by a constant factor per epoch.
    """

    def __init__(
        self,
        final_ratio: float,
        warmup_epochs: int = 4,
        start_ratio: float = 0.25,
        iterations_per_epoch: int = 1,
    ) -> None:
        if not 0 < final_ratio <= 1 or not 0 < start_ratio <= 1:
            raise ValueError("ratios must be in (0, 1]")
        if iterations_per_epoch < 1:
            raise ValueError("iterations_per_epoch must be >= 1")
        self.final_ratio = final_ratio
        self.start_ratio = max(start_ratio, final_ratio)
        self.warmup_epochs = warmup_epochs
        self.iterations_per_epoch = iterations_per_epoch
        if warmup_epochs > 0 and self.start_ratio > final_ratio:
            self._decay = (final_ratio / self.start_ratio) ** (1.0 / warmup_epochs)
        else:
            self._decay = 1.0

    def ratio_at(self, iteration: int) -> float:
        epoch = iteration // self.iterations_per_epoch
        if epoch >= self.warmup_epochs:
            return self.final_ratio
        return self.start_ratio * self._decay**epoch


class DGCStrategy(WorkerStrategy):
    """Deep Gradient Compression, asynchronous variant (DGC-async).

    Momentum correction: accumulate *velocity* rather than raw gradient in
    the residual ``v``; momentum factor masking: zero both ``u`` and ``v``
    at sent coordinates; plus gradient clipping and the warmup sparsity
    ramp.  (The paper grants DGC-async all of these tricks — §5 setup.)
    """

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        ratio: float,
        momentum: float,
        ramp: SparsityRamp | None = None,
        clip_norm: float | None = None,
        min_sparse_size: int = 256,
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        super().__init__(shapes, arena=arena, dtype=dtype)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.ratio = ratio
        self.momentum = momentum
        self.ramp = ramp
        self.clip_norm = clip_norm
        self.min_sparse_size = min_sparse_size
        self.iteration = 0
        self.u = self._make_buffers()
        self.v = self._make_buffers()

    def _current_sparsifier(self) -> TopKSparsifier:
        ratio = self.ramp.ratio_at(self.iteration) if self.ramp is not None else self.ratio
        return TopKSparsifier(ratio, min_sparse_size=self.min_sparse_size)

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float) -> "OrderedDict[str, SparseTensor]":
        if self.clip_norm is not None:
            grads = OrderedDict((name, g.copy()) for name, g in grads.items())
            clip_by_global_norm(list(grads.values()), self.clip_norm)
        sparsifier = self._current_sparsifier()
        out: OrderedDict[str, SparseTensor] = OrderedDict()
        if self.arena:
            # Fused decay across all layers (layers are independent, so one
            # whole-buffer multiply matches the per-layer u *= m exactly).
            self.u.flat *= self.momentum
            for name, g in grads.items():
                u, v = self.u[name], self.v[name]
                u += lr * g  # momentum correction: velocity, not raw gradient
                v += u
                st = self._select(sparsifier, v)
                out[name] = st
                idx = st.indices
                v.reshape(-1)[idx] = 0.0
                u.reshape(-1)[idx] = 0.0  # momentum factor masking
            self.iteration += 1
            return out
        for name, g in grads.items():
            u, v = self.u[name], self.v[name]
            u *= self.momentum
            u += lr * g  # momentum correction: velocity, not raw gradient
            v += u
            mask = sparsifier.mask(v)
            out[name] = encode_mask(v, mask)
            v[mask] = 0.0
            u[mask] = 0.0  # momentum factor masking
        self.iteration += 1
        return out

    def state_bytes(self) -> int:
        return sum(a.nbytes for a in self.u.values()) + sum(a.nbytes for a in self.v.values())

    def _buffers(self):
        return {"u": self.u, "v": self.v}


class SAMomentumStrategy(WorkerStrategy):
    """The paper's SAMomentum (Algorithm 3, Eq. 14–15).

    Per iteration and layer::

        u ← m·u + η∇
        mask ← |u| in top R%
        send  u ⊙ mask                       (sent values stay in u)
        u ← u + (1/m − 1)·(u ⊙ ¬mask)        (unsent values pre-divided by m)

    The 1/m rescale cancels the next iteration's ``m·u`` decay for unsent
    coordinates, so momentum never "disappears" (Eq. 16); sparsification
    becomes a per-parameter enlarged batch (Eq. 17).  Note there is **no**
    separate residual buffer — ``u`` itself carries the unsent mass, which
    is the memory saving claimed in §5.6.2.
    """

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        sparsifier: Sparsifier,
        momentum: float,
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        super().__init__(shapes, arena=arena, dtype=dtype)
        if not 0.0 < momentum < 1.0:
            raise ValueError(f"SAMomentum requires momentum in (0, 1), got {momentum}")
        self.sparsifier = sparsifier
        self.momentum = momentum
        self.u = self._make_buffers()

    def prepare(self, grads: Mapping[str, np.ndarray], lr: float) -> "OrderedDict[str, SparseTensor]":
        m = self.momentum
        out: OrderedDict[str, SparseTensor] = OrderedDict()
        if self.arena:
            ws = self.workspace
            for name, g in grads.items():
                u = self.u[name]
                u *= m
                u += lr * g
                st = self._select(self.sparsifier, u)
                out[name] = st
                # Eq. 15 rescale without the boolean mask: save the sent
                # values, divide the whole layer by m, restore the sent
                # coordinates — bitwise the where=~mask division.
                flat = u.reshape(-1)
                sent = ws.scratch("sam.sent", st.nnz, flat.dtype)
                np.take(flat, st.indices, out=sent)
                flat /= m
                flat[st.indices] = sent
            return out
        for name, g in grads.items():
            u = self.u[name]
            u *= m
            u += lr * g
            mask = self.sparsifier.mask(u)
            out[name] = encode_mask(u, mask)
            # Rescale the unsent remainder by 1/m (Eq. 15, lower branch).
            np.divide(u, m, out=u, where=~mask)
        return out

    def state_bytes(self) -> int:
        return sum(u.nbytes for u in self.u.values())

    def _buffers(self):
        return {"u": self.u}
