"""Property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.autograd import Tensor
from repro.autograd.tensor import _unbroadcast

small_floats = st.floats(min_value=-10, max_value=10, allow_nan=False, width=64)


class TestUnbroadcast:
    @given(
        shape=array_shapes(min_dims=1, max_dims=3, max_side=5),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape, data):
        """For x of `shape`, grad of broadcast(x) sums back to x's shape, and
        matches the analytic rule: d/dx Σ broadcast(x) = (#copies) per cell."""
        arr = data.draw(arrays(np.float64, shape, elements=small_floats))
        target = (4,) + shape
        g = np.ones(target)
        back = _unbroadcast(g, shape)
        assert back.shape == shape
        np.testing.assert_allclose(back, 4.0)

    @given(shape=array_shapes(min_dims=1, max_dims=3, max_side=4))
    @settings(max_examples=50, deadline=None)
    def test_identity_when_same_shape(self, shape):
        g = np.ones(shape)
        assert _unbroadcast(g, shape) is g


class TestLinearity:
    @given(
        a=arrays(np.float64, (3, 4), elements=small_floats),
        b=arrays(np.float64, (3, 4), elements=small_floats),
        alpha=small_floats,
    )
    @settings(max_examples=60, deadline=None)
    def test_gradient_linearity(self, a, b, alpha):
        """∇(αf + g) == α∇f + ∇g for f = sum(x²), g = sum(x·b)."""
        x1 = Tensor(a.copy(), requires_grad=True)
        ((x1 * x1).sum() * alpha + (x1 * Tensor(b)).sum()).backward()
        expected = alpha * 2 * a + b
        np.testing.assert_allclose(x1.grad, expected, atol=1e-8)

    @given(a=arrays(np.float64, (2, 3), elements=small_floats))
    @settings(max_examples=60, deadline=None)
    def test_sum_grad_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones_like(a))

    @given(a=arrays(np.float64, st.integers(1, 30), elements=small_floats))
    @settings(max_examples=60, deadline=None)
    def test_relu_grad_is_indicator(self, a):
        x = Tensor(a, requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, (a > 0).astype(float))


class TestSoftmaxProperties:
    @given(a=arrays(np.float64, (4, 6), elements=small_floats))
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_distribution(self, a):
        s = Tensor(a).softmax(axis=1).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-10)

    @given(a=arrays(np.float64, (2, 5), elements=small_floats), shift=small_floats)
    @settings(max_examples=60, deadline=None)
    def test_softmax_shift_invariance(self, a, shift):
        s1 = Tensor(a).softmax(axis=1).data
        s2 = Tensor(a + shift).softmax(axis=1).data
        np.testing.assert_allclose(s1, s2, atol=1e-9)
