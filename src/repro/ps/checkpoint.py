"""Server checkpoints: one contiguous write/read of the flat state.

File format (little-endian)::

    magic   b"DGSC"
    u32     header length in bytes
    header  JSON (utf-8): {"version", "num_shards", "shards": [
                {"t", "prev", "num_workers", "updates", "dtype",
                 "buffer_sizes"}  # element counts: [M, v_0, …]
            ]}
    body    the buffers back-to-back, raw array bytes, in header order

The body is exactly the concatenation of each shard's
:meth:`~repro.core.tracker.ModelDifferenceTracker.flat_state` buffers —
in arena mode these *are* the flat backing vectors, so a checkpoint is a
handful of contiguous ``tobytes()``/``frombuffer`` calls, not a per-layer
walk.  Snapshots are taken under the server/shard locks
(:meth:`~repro.ps.server.ParameterServer.checkpoint_state` copies out);
file I/O happens outside any lock.  Writes go through a same-directory
temp file and ``os.replace`` so a crash mid-write never leaves a torn
checkpoint behind.

``updates`` (per-worker handled-update counts) is what a restoring
trainer fast-forwards its data streams by, so the continued run consumes
exactly the batches the original run would have (the bitwise
continuation property pinned in ``tests/ps/test_checkpoint.py``).
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = ["CHECKPOINT_MAGIC", "save_checkpoint", "load_checkpoint"]

CHECKPOINT_MAGIC = b"DGSC"
_HEADER_LEN_BYTES = 4  # u32 little-endian (int.to_bytes, not struct:
# wire framing — and the struct module — stays inside repro/comm, COM001)
_FORMAT_VERSION = 1


def _shard_states(server) -> "list[dict[str, object]]":
    """Normalise plain and sharded servers to a list of shard snapshots."""
    state = server.checkpoint_state()
    return state["shards"] if "shards" in state else [state]


def save_checkpoint(server, path: "str | os.PathLike") -> "dict[str, object]":
    """Write ``server``'s full state to ``path``; returns the header dict.

    Works for both :class:`~repro.ps.server.ParameterServer` and
    :class:`~repro.ps.sharded.ShardedParameterServer` (one header entry
    per shard).  Atomic: the file appears complete or not at all.
    """
    shards = _shard_states(server)
    header = {
        "version": _FORMAT_VERSION,
        "num_shards": len(shards),
        "shards": [
            {
                "t": s["t"],
                "prev": s["prev"],
                "num_workers": s["num_workers"],
                "updates": {str(w): c for w, c in s["updates"].items()},
                "dtype": str(s["buffers"][0].dtype),
                "buffer_sizes": [int(b.size) for b in s["buffers"]],
            }
            for s in shards
        ],
    }
    raw_header = json.dumps(header).encode("utf-8")
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        f.write(CHECKPOINT_MAGIC)
        f.write(len(raw_header).to_bytes(_HEADER_LEN_BYTES, "little"))
        f.write(raw_header)
        for s in shards:
            for buf in s["buffers"]:
                f.write(np.ascontiguousarray(buf).tobytes())
    os.replace(tmp, path)
    return header


def load_checkpoint(server, path: "str | os.PathLike") -> "dict[str, object]":
    """Restore ``path`` into ``server``; returns the checkpoint header.

    The server must have been built over the same model (buffer element
    counts are validated shard by shard before any state is touched).
    The header's per-shard ``updates`` maps (worker id → handled updates)
    are what trainers fast-forward by; shard 0's map is authoritative
    (every shard sees every update).
    """
    path = os.fspath(path)
    with open(path, "rb") as f:
        magic = f.read(len(CHECKPOINT_MAGIC))
        if magic != CHECKPOINT_MAGIC:
            raise ValueError(f"{path}: not a checkpoint (bad magic {magic!r})")
        header_len = int.from_bytes(f.read(_HEADER_LEN_BYTES), "little")
        header = json.loads(f.read(header_len).decode("utf-8"))
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: checkpoint version {header['version']}, "
                f"reader supports {_FORMAT_VERSION}"
            )
        states: "list[dict[str, object]]" = []
        for shard_header in header["shards"]:
            dtype = np.dtype(shard_header["dtype"])
            buffers = []
            for size in shard_header["buffer_sizes"]:
                raw = f.read(size * dtype.itemsize)
                if len(raw) != size * dtype.itemsize:
                    raise ValueError(f"{path}: truncated checkpoint body")
                buffers.append(np.frombuffer(raw, dtype=dtype))
            states.append(
                {
                    "t": shard_header["t"],
                    "prev": shard_header["prev"],
                    "num_workers": shard_header["num_workers"],
                    "buffers": buffers,
                }
            )
    num_shards = getattr(server, "num_shards", 1)
    if num_shards != header["num_shards"]:
        raise ValueError(
            f"{path}: checkpoint has {header['num_shards']} shard(s), "
            f"server has {num_shards}"
        )
    if hasattr(server, "shards"):
        server.restore_state({"shards": states})
    else:
        server.restore_state(states[0])
    return header
