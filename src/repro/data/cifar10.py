"""Loader for the real CIFAR-10 dataset (binary version).

The offline reproduction trains on synthetic data (DESIGN.md §2), but a
downstream user with the actual dataset can point this loader at the
standard ``cifar-10-batches-bin`` directory (from
``cifar-10-binary.tar.gz``) and run every experiment on real CIFAR-10.
Pure NumPy parsing of the binary record format:

    <1 byte label><3072 bytes pixels (R, G, B planes, 32×32 row-major)>

Images come out as float64 ``(N, 3, 32, 32)`` normalised to zero mean and
unit variance per channel (the statistics are computed from the training
batches themselves, so no magic constants).
"""

from __future__ import annotations

import pathlib

import numpy as np

from .synthetic import Dataset

__all__ = ["load_cifar10", "read_cifar10_batch", "CIFAR10_LABELS"]

CIFAR10_LABELS = (
    "airplane", "automobile", "bird", "cat", "deer",
    "dog", "frog", "horse", "ship", "truck",
)

_RECORD_BYTES = 1 + 3 * 32 * 32
TRAIN_FILES = tuple(f"data_batch_{i}.bin" for i in range(1, 6))
TEST_FILE = "test_batch.bin"


def read_cifar10_batch(path: "str | pathlib.Path") -> tuple[np.ndarray, np.ndarray]:
    """Parse one binary batch file into ((N,3,32,32) float64, (N,) labels)."""
    raw = np.fromfile(str(path), dtype=np.uint8)
    if raw.size == 0 or raw.size % _RECORD_BYTES != 0:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of the CIFAR-10 "
            f"record length {_RECORD_BYTES}"
        )
    records = raw.reshape(-1, _RECORD_BYTES)
    labels = records[:, 0].astype(np.int64)
    if labels.max(initial=0) > 9:
        raise ValueError(f"{path}: labels out of range — not a CIFAR-10 batch?")
    images = records[:, 1:].reshape(-1, 3, 32, 32).astype(np.float64)
    return images, labels


def load_cifar10(
    root: "str | pathlib.Path",
    val_from_test: bool = True,
    limit: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Load CIFAR-10 from a ``cifar-10-batches-bin`` directory.

    ``val_from_test=True`` uses the official test batch as the validation
    split (the paper reports test accuracy); otherwise the last 10% of the
    training set is held out.  ``limit`` caps the training-set size (for
    quick runs).
    """
    root = pathlib.Path(root)
    missing = [f for f in TRAIN_FILES if not (root / f).exists()]
    if missing:
        raise FileNotFoundError(
            f"{root} does not look like cifar-10-batches-bin (missing {missing[0]})"
        )
    xs, ys = zip(*(read_cifar10_batch(root / f) for f in TRAIN_FILES))
    x_train = np.concatenate(xs)
    y_train = np.concatenate(ys)

    # Per-channel standardisation from the training data.
    mean = x_train.mean(axis=(0, 2, 3), keepdims=True)
    std = x_train.std(axis=(0, 2, 3), keepdims=True)
    std[std == 0] = 1.0
    x_train = (x_train - mean) / std

    if val_from_test and (root / TEST_FILE).exists():
        x_val, y_val = read_cifar10_batch(root / TEST_FILE)
        x_val = (x_val - mean) / std
    else:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(x_train))
        n_val = max(1, len(x_train) // 10)
        val_idx, train_idx = perm[:n_val], perm[n_val:]
        x_val, y_val = x_train[val_idx], y_train[val_idx]
        x_train, y_train = x_train[train_idx], y_train[train_idx]

    if limit is not None:
        x_train, y_train = x_train[:limit], y_train[:limit]
    return Dataset(x_train, y_train, x_val, y_val, num_classes=10, name="cifar10")
