"""§5.6.2 — memory accounting at server and workers.

The paper's claims: (1) DGS adds ``NumOfWorkers × ParameterMemOfModel`` at
the server (the v_k vectors) — one V100 (16 GB) can host >300 ResNet-18
(46 MB) workers; (2) at the worker, SAMomentum replaces vanilla momentum
*plus* the residual accumulator with a single buffer, saving
``ParameterMemOfModel`` per worker; so DGS only *moves* memory from workers
to the server.
"""

from __future__ import annotations

from ...core.methods import Hyper, get_method
from ...core.layerops import parameters_of
from ...ps.server import ParameterServer
from ..config import RESNET18_WIRE_BYTES, get_workload
from ..report import ExperimentReport
from .common import METHOD_LABELS, resolve_fast

__all__ = ["run"]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    wl = get_workload("cifar10")
    model = wl.model_factory(0)()
    theta0 = parameters_of(model)
    shapes = {n: a.shape for n, a in theta0.items()}
    model_bytes = sum(a.nbytes for a in theta0.values())
    hyper = wl.hyper
    num_workers = 8

    report = ExperimentReport(
        experiment_id="Sec 5.6.2",
        title=f"Memory usage accounting ({num_workers} workers; model = {model_bytes / 1024:.1f} KiB)",
        headers=(
            "Method",
            "Server state (model units)",
            "Per-worker state (model units)",
            "Total (model units)",
        ),
    )
    for name in ("asgd", "gd_async", "dgc_async", "dgs"):
        spec = get_method(name)
        server = ParameterServer(
            theta0,
            num_workers,
            downstream=spec.downstream,
            secondary_ratio=None,
        )
        strategy = spec.make_strategy(shapes, hyper)
        server_units = server.tracker.server_state_bytes() / model_bytes
        worker_units = strategy.state_bytes() / model_bytes
        total_units = server_units + num_workers * worker_units
        report.add_row(
            METHOD_LABELS[name],
            f"{server_units:.1f}",
            f"{worker_units:.1f}",
            f"{total_units:.1f}",
        )
    # Paper's headline number: how many 46 MB ResNet-18 workers fit in 16 GB?
    v100 = 16 * 1024**3
    supported = v100 // RESNET18_WIRE_BYTES
    report.add_note(
        f"A 16 GB server can hold v_k for {supported} ResNet-18 (46 MB) workers "
        "(paper: 'more than 300')."
    )
    report.add_note(
        "Expected shape: DGS moves ~1 model unit per worker from worker side "
        "(residual+momentum) to server side (v_k); the total is unchanged vs DGC."
    )
    return report
