"""The paper's contribution: DGS worker strategies + model-difference server."""

from .arena import LayerArena, make_layer_buffers
from .layerops import (
    add_scaled,
    assign_parameters,
    clone_layers,
    flatten_layers,
    gradients_of,
    layer_shapes,
    parameters_of,
    total_nbytes,
    total_size,
    zeros_like_layers,
)
from .methods import METHODS, Hyper, MethodSpec, build_strategy, get_method, method_names
from .partition import PartitionMap
from .strategies import (
    DenseStrategy,
    DGCStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
    SparsityRamp,
    WorkerStrategy,
)
from .tracker import ModelDifferenceTracker
from .extensions import (
    DGSTernGradStrategy,
    RandomDroppingStrategy,
    TernGradStrategy,
    register_extensions,
)

__all__ = [
    "LayerArena",
    "make_layer_buffers",
    "layer_shapes",
    "zeros_like_layers",
    "clone_layers",
    "gradients_of",
    "parameters_of",
    "assign_parameters",
    "add_scaled",
    "total_size",
    "total_nbytes",
    "flatten_layers",
    "WorkerStrategy",
    "DenseStrategy",
    "GradientDroppingStrategy",
    "DGCStrategy",
    "SAMomentumStrategy",
    "SparsityRamp",
    "ModelDifferenceTracker",
    "PartitionMap",
    "TernGradStrategy",
    "RandomDroppingStrategy",
    "DGSTernGradStrategy",
    "register_extensions",
    "MethodSpec",
    "Hyper",
    "METHODS",
    "build_strategy",
    "method_names",
    "get_method",
]
