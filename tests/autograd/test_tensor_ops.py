"""Elementwise/matmul autograd correctness (gradcheck against finite differences)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


def t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestArithmetic:
    def test_add(self, rng):
        a, b = t(rng, 3, 4), t(rng, 3, 4)
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast_row(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4)
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast_scalar_tensor(self, rng):
        a, b = t(rng, 3, 4), Tensor(2.5, requires_grad=True)
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_python_scalar(self, rng):
        a = t(rng, 3)
        out = a + 1.5
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_radd(self, rng):
        a = t(rng, 3)
        out = 1.5 + a
        np.testing.assert_allclose(out.data, a.data + 1.5)

    def test_sub(self, rng):
        a, b = t(rng, 2, 5), t(rng, 2, 5)
        assert gradcheck(lambda a, b: (a - b).sum(), [a, b])

    def test_rsub(self, rng):
        a = t(rng, 3)
        out = 1.0 - a
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, -np.ones(3))

    def test_neg(self, rng):
        a = t(rng, 4)
        assert gradcheck(lambda a: (-a).sum(), [a])

    def test_mul(self, rng):
        a, b = t(rng, 3, 3), t(rng, 3, 3)
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_mul_broadcast_col(self, rng):
        a, b = t(rng, 3, 4), t(rng, 3, 1)
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = t(rng, 3, 3)
        b = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        assert gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_rtruediv(self, rng):
        b = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        assert gradcheck(lambda b: (1.0 / b).sum(), [b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda a: (a**3).sum(), [a])

    def test_pow_rejects_tensor_exponent(self, rng):
        a = t(rng, 2)
        with pytest.raises(TypeError):
            a ** t(rng, 2)

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        assert gradcheck(lambda a: a.sqrt().sum(), [a], atol=1e-4)


class TestMatmul:
    def test_matmul_2d(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4, 5)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_vector_rhs(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_vector_lhs(self, rng):
        a, b = t(rng, 4), t(rng, 4, 3)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_values(self, rng):
        a, b = t(rng, 2, 3), t(rng, 3, 2)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestNonlinearities:
    def test_relu(self, rng):
        a = Tensor(rng.normal(size=(4, 4)) + 0.05, requires_grad=True)
        assert gradcheck(lambda a: a.relu().sum(), [a])

    def test_relu_zero_region(self):
        a = Tensor(np.array([-1.0, 2.0, -3.0]), requires_grad=True)
        out = a.relu()
        out.backward(np.ones(3))
        np.testing.assert_allclose(out.data, [0, 2, 0])
        np.testing.assert_allclose(a.grad, [0, 1, 0])

    def test_exp(self, rng):
        a = t(rng, 3, 3)
        assert gradcheck(lambda a: a.exp().sum(), [a], atol=1e-4)

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(3, 3)), requires_grad=True)
        assert gradcheck(lambda a: a.log().sum(), [a])

    def test_tanh(self, rng):
        a = t(rng, 5)
        assert gradcheck(lambda a: a.tanh().sum(), [a])

    def test_sigmoid(self, rng):
        a = t(rng, 5)
        assert gradcheck(lambda a: a.sigmoid().sum(), [a])

    def test_softmax_rows_sum_to_one(self, rng):
        a = t(rng, 4, 7)
        s = a.softmax(axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_grad(self, rng):
        a = t(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)))
        assert gradcheck(lambda a: (a.softmax(axis=1) * w).sum(), [a], atol=1e-4)


class TestGraph:
    def test_reused_tensor_accumulates_grad(self, rng):
        a = t(rng, 3)
        out = (a * a).sum() + (a * 2.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 2.0)

    def test_diamond_graph(self, rng):
        a = t(rng, 3)
        b = a * 2.0
        c = a + 1.0
        out = (b * c).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * (a.data + 1.0) + 2 * a.data)

    def test_backward_requires_scalar_or_grad(self, rng):
        a = t(rng, 3)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_deep_chain(self, rng):
        a = t(rng, 4)
        x = a
        for _ in range(50):
            x = x * 1.01 + 0.001
        x.sum().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 1.01**50), rtol=1e-10)

    def test_zero_grad(self, rng):
        a = t(rng, 3)
        (a * 2.0).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None
