"""Autograd engine semantics: accumulation, dtype, graph reuse edge cases."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad


class TestGradAccumulation:
    def test_two_backwards_accumulate(self, rng):
        """Like PyTorch: without zero_grad, a second backward adds in."""
        a = Tensor(rng.normal(size=3), requires_grad=True)
        (a * 2.0).sum().backward()
        first = a.grad.copy()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad_resets(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 3.0)

    def test_explicit_upstream_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = a * 2.0
        g = rng.normal(size=(2, 2))
        out.backward(g)
        np.testing.assert_allclose(a.grad, 2.0 * g)

    def test_tensor_upstream_gradient(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        (a * 1.0).backward(Tensor(np.ones(3)))
        np.testing.assert_allclose(a.grad, 1.0)


class TestGraphStructure:
    def test_shared_subexpression_counted_once_per_path(self, rng):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3.0  # shared node
        out = (b + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_grad_not_tracked_through_data_mutation(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = (a * 2.0).sum()
        a.data[0] = 100.0  # mutate after forward: backward uses stale capture
        out.backward()
        # gradient of 2*a w.r.t. a is 2 regardless of current value
        np.testing.assert_allclose(a.grad, [2.0])

    def test_constant_branch_contributes_no_grad(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        c = Tensor(rng.normal(size=3))  # no grad
        ((a + c) * c).sum().backward()
        assert c.grad is None
        np.testing.assert_allclose(a.grad, c.data)


class TestNoGradInterplay:
    def test_ops_inside_no_grad_are_constants_outside(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        with no_grad():
            frozen = a * 2.0
        out = (a * frozen).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, frozen.data)  # only the live path

    def test_backward_of_pretaped_graph_after_no_grad(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        out = (a * 3.0).sum()
        with no_grad():
            pass
        out.backward()
        np.testing.assert_allclose(a.grad, 3.0)


class TestDtype:
    def test_float64_end_to_end(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        assert a.dtype == np.float64
        (a * a).sum().backward()
        assert a.grad.dtype == np.float64

    def test_int_input_promoted(self):
        a = Tensor([1, 2, 3])
        assert a.dtype == np.float64
