"""Single-node MSGD trainer."""

import pytest

from repro.harness.local import LocalTrainer
from repro.optim import ConstantLR


class TestLocalTrainer:
    def test_learns(self, tiny_dataset, tiny_model_factory):
        r = LocalTrainer(tiny_model_factory, tiny_dataset, 16, 120, lr=0.2, momentum=0.7).run()
        assert r.final_accuracy > 0.8
        assert r.total_iterations == 120
        assert r.samples_processed == 120 * 16

    def test_loss_curve_recorded(self, tiny_dataset, tiny_model_factory):
        r = LocalTrainer(tiny_model_factory, tiny_dataset, 16, 30).run()
        assert len(r.loss_vs_step) == 30

    def test_eval_checkpoints(self, tiny_dataset, tiny_model_factory):
        r = LocalTrainer(tiny_model_factory, tiny_dataset, 16, 30, eval_every=10).run()
        assert len(r.acc_vs_step) == 3
        assert r.acc_vs_step.xs[-1] == 30

    def test_schedule_is_used(self, tiny_dataset, tiny_model_factory):
        # Absurdly small LR ⇒ no learning; proves the schedule drives the step.
        r = LocalTrainer(
            tiny_model_factory, tiny_dataset, 16, 60, schedule=ConstantLR(1e-9)
        ).run()
        assert r.final_accuracy < 0.6
