"""Finding records and ``# repro: noqa`` suppression handling.

Every pillar of the analysis suite (lint rules, the lock-discipline
checker, the sanitizer self-check) reports :class:`Finding` objects so the
CLI can merge, sort and format them uniformly.  A finding is suppressed by
placing ``# repro: noqa RULE1,RULE2`` (or a bare ``# repro: noqa``) on the
offending source line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Finding", "UNSUPPRESSABLE_RULES", "suppressed_rules", "filter_suppressed"]

#: rules exempt from noqa suppression — pragma-hygiene findings report on
#: the pragma itself, which cannot be trusted to silence its own report
UNSUPPRESSABLE_RULES = frozenset({"NOQ001"})

#: matches ``# repro: noqa`` optionally followed by a rule list
#: (ids are 3–4 capitals + three digits, e.g. ``DTY001``, ``PERF001``)
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s+(?P<rules>[A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*))?"
)


@dataclass(frozen=True)
class Finding:
    """One analysis finding, anchored to a source location."""

    rule: str  #: rule identifier, e.g. ``DTY001``
    path: str  #: path of the offending file (as given to the checker)
    line: int  #: 1-based line number
    message: str
    col: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def suppressed_rules(source_line: str) -> "set[str] | None":
    """Rules suppressed on this line, or ``None`` when there is no pragma.

    An empty set means a bare ``# repro: noqa`` — suppress every rule.
    """
    m = _NOQA_RE.search(source_line)
    if m is None:
        return None
    rules = m.group("rules")
    if rules is None:
        return set()
    return {r.strip() for r in rules.split(",")}


def filter_suppressed(findings: "list[Finding]", lines: "list[str]") -> "list[Finding]":
    """Drop findings whose source line carries a matching noqa pragma."""
    kept: list[Finding] = []
    for f in findings:
        if f.rule not in UNSUPPRESSABLE_RULES and 1 <= f.line <= len(lines):
            rules = suppressed_rules(lines[f.line - 1])
            if rules is not None and (not rules or f.rule in rules):
                continue
        kept.append(f)
    return kept
