"""Construction and evaluation steps shared by every execution backend.

Before the unified execution layer, each of the four trainers carried its
own copy of the same lifecycle plumbing: resolve the method spec, default
the hyper-parameters and LR schedule, decide the server-side secondary
compression, build a :class:`~repro.ps.server.ParameterServer` seeded with
θ0, stamp out per-worker :class:`~repro.ps.worker.WorkerNode` replicas, and
evaluate θ0 + M on the validation split.  These helpers are that plumbing,
written once; the trainers are now thin scheduling loops on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..core.layerops import assign_parameters, layer_shapes
from ..core.methods import Hyper, MethodSpec, get_method
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..metrics.evaluation import evaluate_params
from ..nn.module import Module
from ..optim.schedules import ConstantLR, Schedule

if TYPE_CHECKING:  # imported lazily at call time: repro.ps imports this module
    from ..ps.server import ParameterServer
    from ..ps.worker import WorkerNode

__all__ = [
    "resolve_method",
    "resolve_hyper",
    "resolve_schedule",
    "secondary_ratio_for",
    "build_server",
    "build_worker",
    "build_workers",
    "evaluate_global",
]


def resolve_method(method: "MethodSpec | str", require_distributed: bool = True) -> MethodSpec:
    """Look up ``method`` in the registry and reject single-node specs."""
    spec = get_method(method) if isinstance(method, str) else method
    if require_distributed and not spec.distributed:
        raise ValueError(f"method {spec.name!r} is single-node; use LocalTrainer")
    return spec


def resolve_hyper(hyper: "Hyper | None") -> Hyper:
    return hyper if hyper is not None else Hyper()


def resolve_schedule(schedule: "Schedule | None", hyper: Hyper) -> Schedule:
    return schedule if schedule is not None else ConstantLR(hyper.lr)


def secondary_ratio_for(
    method: MethodSpec, hyper: Hyper, secondary_compression: "bool | None"
) -> "float | None":
    """Server-side secondary compression ratio, or None when disabled.

    Secondary compression only exists in the ``difference`` downstream mode
    (Algorithm 2 / Eq. 6); ``secondary_compression=None`` defers to the
    method's default flag.
    """
    use_secondary = (
        method.secondary_default if secondary_compression is None else secondary_compression
    )
    if method.downstream == "difference" and use_secondary:
        return hyper.secondary_ratio
    return None


def build_server(
    method: MethodSpec,
    theta0: "Mapping[str, np.ndarray]",
    num_workers: int,
    hyper: Hyper,
    secondary_compression: "bool | None" = None,
    staleness_damping: bool = False,
    arena: bool = False,
    arena_dtype: "object | None" = None,
    num_shards: int = 1,
) -> "ParameterServer":
    """A parameter server configured for ``method``'s downstream mode.

    ``num_shards=1`` builds the plain single-lock server — the sharded
    front-end never sits between one lock and its callers — while
    ``num_shards>1`` partitions the layers across independently locked
    :class:`~repro.ps.sharded.ParameterShard` s behind a
    :class:`~repro.ps.sharded.ShardedParameterServer`.
    """
    from ..ps.server import ParameterServer

    kwargs = dict(
        downstream=method.downstream,
        secondary_ratio=secondary_ratio_for(method, hyper, secondary_compression),
        secondary_min_sparse_size=hyper.min_sparse_size,
        staleness_damping=staleness_damping,
        arena=arena,
        arena_dtype=arena_dtype,
    )
    if num_shards > 1:
        from ..ps.sharded import ShardedParameterServer

        return ShardedParameterServer(theta0, num_workers, num_shards, **kwargs)
    return ParameterServer(theta0, num_workers, **kwargs)


def build_worker(
    worker_id: int,
    num_workers: int,
    model: Module,
    loader: DataLoader,
    method: MethodSpec,
    hyper: Hyper,
    schedule: Schedule,
    theta0: "Mapping[str, np.ndarray] | None" = None,
    arena: bool = False,
    arena_dtype: "object | None" = None,
) -> "WorkerNode":
    """One worker node on ``model``, optionally re-seeded to θ0."""
    from ..ps.worker import WorkerNode

    if theta0 is not None:
        # All replicas start from the same θ0.
        assign_parameters(model, theta0)
    shapes = layer_shapes(model)
    return WorkerNode(
        worker_id,
        model,
        loader.worker_iterator(worker_id, num_workers),
        method.make_strategy(shapes, hyper, arena=arena, arena_dtype=arena_dtype),
        schedule=schedule,
    )


def build_workers(
    num_workers: int,
    model_factory: Callable[[], Module],
    loader: DataLoader,
    method: MethodSpec,
    hyper: Hyper,
    schedule: Schedule,
    theta0: "Mapping[str, np.ndarray]",
    first_model: "Module | None" = None,
    arena: bool = False,
    arena_dtype: "object | None" = None,
) -> "list[WorkerNode]":
    """Stamp out ``num_workers`` replicas, all starting from θ0.

    ``first_model`` lets a caller donate an already-built model as worker
    0's replica (the simulator reuses its reference model this way).
    """
    workers: list[WorkerNode] = []
    for w in range(num_workers):
        model = first_model if (w == 0 and first_model is not None) else model_factory()
        workers.append(
            build_worker(
                w,
                num_workers,
                model,
                loader,
                method,
                hyper,
                schedule,
                theta0=theta0,
                arena=arena,
                arena_dtype=arena_dtype,
            )
        )
    return workers


def evaluate_global(model: Module, server: ParameterServer, dataset: Dataset) -> "tuple[float, float]":
    """(accuracy, loss) of the server's θ0 + M on the validation split.

    ``model`` supplies BatchNorm running statistics — they are trained
    locally and are not part of the PS exchange, so callers pass worker 0's
    replica (its statistics reflect actual training data).
    """
    return evaluate_params(model, server.global_model(), dataset.x_val, dataset.y_val)
