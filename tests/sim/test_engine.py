"""Event-driven simulator behaviour."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.sim import ClusterConfig, ComputeModel, LinkModel, SimulatedTrainer


def make_trainer(tiny_dataset, tiny_model_factory, method="dgs", **kw):
    defaults = dict(
        cluster=ClusterConfig.with_bandwidth(3, 10, compute_mean_s=0.05),
        batch_size=16,
        total_iterations=60,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        seed=0,
    )
    defaults.update(kw)
    return SimulatedTrainer(method, tiny_model_factory, tiny_dataset, **defaults)


class TestRunBasics:
    def test_completes_exact_iterations(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory).run()
        assert r.total_iterations == 60
        assert r.samples_processed == 60 * 16

    def test_time_is_monotone(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory).run()
        xs = r.loss_vs_time.xs
        assert all(a <= b for a, b in zip(xs, xs[1:]))
        assert r.makespan_s > 0

    def test_learns(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory, total_iterations=150).run()
        assert r.final_accuracy > 0.7

    def test_eval_every_produces_checkpoints(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory, eval_every=20).run()
        assert len(r.acc_vs_step) == 3

    def test_staleness_positive_multiworker(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory).run()
        assert r.mean_staleness > 0

    def test_single_worker_zero_staleness(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(
            tiny_dataset,
            tiny_model_factory,
            cluster=ClusterConfig.with_bandwidth(1, 10, compute_mean_s=0.05),
        ).run()
        assert r.mean_staleness == 0

    def test_msgd_rejected(self, tiny_dataset, tiny_model_factory):
        with pytest.raises(ValueError):
            make_trainer(tiny_dataset, tiny_model_factory, method="msgd")

    def test_invalid_iterations(self, tiny_dataset, tiny_model_factory):
        with pytest.raises(ValueError):
            make_trainer(tiny_dataset, tiny_model_factory, total_iterations=0)


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_dataset, tiny_model_factory):
        r1 = make_trainer(tiny_dataset, tiny_model_factory).run()
        r2 = make_trainer(tiny_dataset, tiny_model_factory).run()
        assert r1.final_loss == r2.final_loss
        assert r1.makespan_s == r2.makespan_s

    def test_different_seed_differs(self, tiny_dataset, tiny_model_factory):
        r1 = make_trainer(tiny_dataset, tiny_model_factory, seed=0).run()
        r2 = make_trainer(tiny_dataset, tiny_model_factory, seed=1).run()
        assert r1.final_loss != r2.final_loss


class TestNetworkEffects:
    def test_lower_bandwidth_is_slower_for_dense(self, tiny_dataset, tiny_model_factory):
        fast = make_trainer(
            tiny_dataset, tiny_model_factory, method="asgd",
            cluster=ClusterConfig.with_bandwidth(3, 10, compute_mean_s=0.01),
        ).run()
        slow = make_trainer(
            tiny_dataset, tiny_model_factory, method="asgd",
            cluster=ClusterConfig.with_bandwidth(3, 0.0001, compute_mean_s=0.01),
        ).run()
        assert slow.makespan_s > fast.makespan_s

    def test_wire_scale_slows_everything(self, tiny_dataset, tiny_model_factory):
        base_cluster = ClusterConfig.with_bandwidth(3, 0.01, compute_mean_s=0.01)
        scaled_cluster = ClusterConfig.with_bandwidth(3, 0.01, compute_mean_s=0.01)
        scaled_cluster.wire_scale = 100.0
        base = make_trainer(tiny_dataset, tiny_model_factory, method="asgd", cluster=base_cluster).run()
        scaled = make_trainer(tiny_dataset, tiny_model_factory, method="asgd", cluster=scaled_cluster).run()
        assert scaled.makespan_s > base.makespan_s

    def test_half_duplex_slower_than_full(self, tiny_dataset, tiny_model_factory):
        def cluster(duplex):
            c = ClusterConfig.with_bandwidth(4, 0.001, compute_mean_s=0.01)
            c.duplex = duplex
            return c

        full = make_trainer(tiny_dataset, tiny_model_factory, method="asgd", cluster=cluster("full")).run()
        half = make_trainer(tiny_dataset, tiny_model_factory, method="asgd", cluster=cluster("half")).run()
        assert half.makespan_s > full.makespan_s

    def test_dgs_cheaper_on_wire_than_asgd(self, tiny_dataset, tiny_model_factory):
        asgd = make_trainer(tiny_dataset, tiny_model_factory, method="asgd").run()
        dgs = make_trainer(
            tiny_dataset, tiny_model_factory, method="dgs",
            hyper=Hyper(ratio=0.02, min_sparse_size=0), secondary_compression=True,
        ).run()
        assert dgs.upload_bytes < asgd.upload_bytes / 5
        assert dgs.download_bytes < asgd.download_bytes / 5

    def test_compression_ratio_reported(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory).run()
        assert r.compression_ratio > 1.0

    def test_utilisation_in_unit_range(self, tiny_dataset, tiny_model_factory):
        r = make_trainer(tiny_dataset, tiny_model_factory).run()
        assert 0.0 <= r.uplink_utilisation <= 1.0
        assert 0.0 <= r.downlink_utilisation <= 1.0


class TestThroughput:
    def test_more_workers_more_throughput_when_compute_bound(
        self, tiny_dataset, tiny_model_factory
    ):
        def run(n):
            return make_trainer(
                tiny_dataset, tiny_model_factory,
                cluster=ClusterConfig.with_bandwidth(n, 10, compute_mean_s=0.1),
                total_iterations=40,
            ).run()

        assert run(4).throughput > 2.0 * run(1).throughput
