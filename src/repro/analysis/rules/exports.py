"""EXP001/EXP002/EXP003 — ``__all__`` ↔ public-name consistency.

The public API test (``tests/test_public_api.py``) and the harness import
surface both trust ``__all__``; drift between it and the actual module
bindings produces imports that silently stop resolving.

* **EXP001**: a name listed in ``__all__`` is not bound at module top level.
* **EXP002**: a public top-level ``def``/``class`` is missing from
  ``__all__`` (only when the module declares one).
* **EXP003**: a module that defines public functions/classes has no
  ``__all__`` at all.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule

__all__ = ["AllConsistencyRule", "MissingAllRule", "UndefinedExportRule"]


def _top_level_statements(tree: ast.Module) -> "Iterator[ast.stmt]":
    """Module-body statements, descending into top-level If/Try bodies."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for h in node.handlers:
                stack.extend(h.body)


def _bound_names(tree: ast.Module) -> "set[str]":
    names: set[str] = set()
    for node in _top_level_statements(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                for leaf in ast.walk(tgt):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for a in node.names:
                names.add((a.asname or a.name).split(".")[0])
    return names


def _find_all(tree: ast.Module) -> "tuple[ast.stmt | None, list[str] | None]":
    """The ``__all__`` assignment node and its entries (None if absent/dynamic)."""
    for node in _top_level_statements(tree):
        target = None
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                    target = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                target = node.value
        if target is None:
            continue
        if isinstance(target, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str) for e in target.elts
        ):
            return node, [e.value for e in target.elts]
        return node, None  # dynamic __all__: present but not checkable
    return None, None


class UndefinedExportRule(Rule):
    id = "EXP001"
    summary = "__all__ entries must be bound at module top level"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        node, exported = _find_all(module.tree)
        if node is None or exported is None:
            return
        bound = _bound_names(module.tree)
        for name in exported:
            if name not in bound and name != "__version__":
                yield self.finding(
                    module, node, f"__all__ lists {name!r} but the module never binds it"
                )


class AllConsistencyRule(Rule):
    id = "EXP002"
    summary = "public top-level defs/classes must appear in __all__"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if module.is_entry_point(config):
            return
        node, exported = _find_all(module.tree)
        if node is None or exported is None:
            return
        for stmt in _top_level_statements(module.tree):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
                and not stmt.name.startswith("_")
                and stmt.name not in exported
            ):
                yield self.finding(
                    module,
                    stmt,
                    f"public {'class' if isinstance(stmt, ast.ClassDef) else 'function'} "
                    f"{stmt.name!r} is not listed in __all__",
                )


class MissingAllRule(Rule):
    id = "EXP003"
    summary = "library modules with public defs must declare __all__"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        if module.is_entry_point(config):
            return
        node, _ = _find_all(module.tree)
        if node is not None:
            return
        public = [
            stmt
            for stmt in _top_level_statements(module.tree)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not stmt.name.startswith("_")
        ]
        if public:
            yield self.finding(
                module,
                public[0],
                f"module defines {len(public)} public name(s) but no __all__",
            )
