"""Synchronous SSGD trainer on the simulated cluster."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.sim import ClusterConfig, ComputeModel, LinkModel, SynchronousTrainer


def make(tiny_dataset, tiny_model_factory, method="asgd", **kw):
    defaults = dict(
        cluster=ClusterConfig.with_bandwidth(3, 10, compute_mean_s=0.05),
        batch_size=16,
        rounds=40,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
        seed=0,
    )
    defaults.update(kw)
    return SynchronousTrainer(method, tiny_model_factory, tiny_dataset, **defaults)


class TestSyncBasics:
    def test_learns(self, tiny_dataset, tiny_model_factory):
        r = make(tiny_dataset, tiny_model_factory, rounds=60).run()
        assert r.final_accuracy > 0.75
        assert r.rounds == 60

    def test_curves_lengths(self, tiny_dataset, tiny_model_factory):
        r = make(tiny_dataset, tiny_model_factory, rounds=10).run()
        assert len(r.loss_vs_step) == 10
        assert r.makespan_s > 0

    def test_invalid_rounds(self, tiny_dataset, tiny_model_factory):
        with pytest.raises(ValueError):
            make(tiny_dataset, tiny_model_factory, rounds=0)

    def test_sparse_ssgd_gradient_dropping(self, tiny_dataset, tiny_model_factory):
        """GD was originally a synchronous method (§2) — it must train here."""
        r = make(tiny_dataset, tiny_model_factory, method="gd_async", rounds=60).run()
        assert r.final_accuracy > 0.75

    def test_sync_samomentum_future_work(self, tiny_dataset, tiny_model_factory):
        """§6: SAMomentum as a synchronous method."""
        r = make(tiny_dataset, tiny_model_factory, method="dgs", rounds=60).run()
        assert r.final_accuracy > 0.75


class TestBarrierEffects:
    def test_straggler_time_zero_when_homogeneous(self, tiny_dataset, tiny_model_factory):
        cluster = ClusterConfig(
            num_workers=3,
            compute=ComputeModel(mean_s=0.05, jitter=0.0, heterogeneity=0.0),
            uplink=LinkModel.gbps(10),
            downlink=LinkModel.gbps(10),
        )
        r = make(tiny_dataset, tiny_model_factory, cluster=cluster, rounds=10).run()
        assert r.straggler_time_s == pytest.approx(0.0)

    def test_straggler_time_grows_with_heterogeneity(self, tiny_dataset, tiny_model_factory):
        def run(het):
            cluster = ClusterConfig(
                num_workers=4,
                compute=ComputeModel(mean_s=0.05, jitter=0.05, heterogeneity=het),
                uplink=LinkModel.gbps(10),
                downlink=LinkModel.gbps(10),
            )
            return make(tiny_dataset, tiny_model_factory, cluster=cluster, rounds=20).run()

        assert run(0.5).straggler_time_s > run(0.01).straggler_time_s

    def test_async_beats_sync_with_stragglers(self, tiny_dataset, tiny_model_factory):
        """The paper's §1 motivation: worker lag hurts SSGD throughput."""
        from repro.sim import SimulatedTrainer

        cluster = ClusterConfig(
            num_workers=4,
            compute=ComputeModel(mean_s=0.05, jitter=0.1, heterogeneity=0.6),
            uplink=LinkModel.gbps(10),
            downlink=LinkModel.gbps(10),
            seed=0,
        )
        sync = make(tiny_dataset, tiny_model_factory, cluster=cluster, rounds=20).run()
        async_tr = SimulatedTrainer(
            "asgd", tiny_model_factory, tiny_dataset, cluster,
            batch_size=16, total_iterations=80,
            hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0), seed=0,
        ).run()
        # Equal sample budgets: async should push samples faster.
        assert async_tr.throughput > sync.throughput


class TestAggregation:
    def test_average_semantics(self, tiny_dataset, tiny_model_factory):
        """One round of dense SSGD applies the mean of worker updates."""
        from repro.core.layerops import parameters_of

        trainer = make(tiny_dataset, tiny_model_factory, rounds=1)
        theta0 = parameters_of(trainer.model)
        r = trainer.run()
        theta1 = parameters_of(trainer.model)
        moved = sum(np.abs(theta1[k] - theta0[k]).sum() for k in theta0)
        assert moved > 0
