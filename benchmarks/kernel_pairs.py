"""Reference/optimised pairs for the hot-path kernel regression gate.

Each pair runs the *same logical work* twice — once through the historical
dict-of-float64 reference path and once through the arena/workspace path —
so the speedup ratio (ref time / opt time) is meaningful on any machine.
``benchmarks/check_regression.py`` times these pairs and compares ratios
against the committed ``benchmarks/BENCH_kernels.json`` baseline;
``bench_micro_kernels.py`` exposes the same pairs to pytest-benchmark for
human inspection.

N is one large conv layer (~ResNet-18); the layered shapes mimic a deep
model so the payload-apply pair sees realistic per-layer loop overhead.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.compression import (
    KernelWorkspace,
    encode_indices,
    encode_mask,
    topk_mask,
    topk_select,
)
from repro.core.arena import LayerArena

__all__ = ["N", "RATIO", "GATED", "make_pairs"]

N = 1_000_000
RATIO = 0.01

#: the kernels the committed baseline must show >= 1.5x speedup on
#: (acceptance: at least MIN_WINS of these)
GATED = ("topk_select", "coo_encode", "payload_apply")
MIN_WINS = 2


def _layered_shapes(total: int = N, layers: int = 48) -> "OrderedDict[str, tuple[int, ...]]":
    """A deep-model-like shape table: many small layers + a few big ones."""
    shapes: "OrderedDict[str, tuple[int, ...]]" = OrderedDict()
    per = total // (2 * layers)
    used = 0
    for i in range(layers - 1):
        size = per if i % 2 == 0 else per // 2
        shapes[f"layer{i:02d}"] = (size,)
        used += size
    shapes["layer_final"] = (total - used,)
    return shapes


def make_pairs() -> "OrderedDict[str, tuple]":
    """name -> (reference_callable, optimised_callable), same work each."""
    rng = np.random.default_rng(0)
    arr = rng.normal(size=N)
    ws = KernelWorkspace()

    pairs: "OrderedDict[str, tuple]" = OrderedDict()

    # --- top-k select: magnitude top-1% of a 1M vector to a SparseTensor.
    # Reference: boolean mask then flatnonzero-based encode (two O(n)
    # passes + fresh allocations).  Optimised: fused argpartition ->
    # sorted-index gather with caller-owned scratch.
    pairs["topk_select"] = (
        lambda: encode_mask(arr, topk_mask(arr, RATIO)),
        lambda: topk_select(arr, RATIO, ws),
    )

    # --- COO encode: selection already made, produce the wire payload.
    # Reference scans the full mask (O(n)); optimised gathers straight
    # from the known sorted indices (O(k)).
    mask = topk_mask(arr, RATIO)
    idx = np.flatnonzero(mask)
    pairs["coo_encode"] = (
        lambda: encode_mask(arr, mask),
        lambda: encode_indices(arr, idx, ws, assume_sorted=True),
    )

    # --- payload apply: server-side M <- M - g for a dense per-layer
    # update.  Reference: the dict path's per-layer Python loop.
    # Optimised: one fused op over the arena's flat buffer.
    shapes = _layered_shapes()
    m_dict = OrderedDict((name, np.zeros(s)) for name, s in shapes.items())
    upd_dict = OrderedDict((name, rng.normal(size=s)) for name, s in shapes.items())
    m_arena = LayerArena(shapes, dtype=np.float32)
    upd_arena = LayerArena.from_layers(upd_dict, dtype=np.float32)

    def apply_dict():
        for name, g in upd_dict.items():
            m_dict[name] -= g

    pairs["payload_apply"] = (
        apply_dict,
        lambda: m_arena.add_payload(upd_arena, scale=-1.0),
    )

    # --- SAMomentum prepare (informative, not gated): full Algorithm 3
    # step through the dict strategy vs the arena strategy.
    from repro.compression import TopKSparsifier
    from repro.core.strategies import SAMomentumStrategy

    sam_shapes = OrderedDict([("w", (N,))])
    sam_ref = SAMomentumStrategy(sam_shapes, TopKSparsifier(RATIO, min_sparse_size=0), 0.7)
    sam_opt = SAMomentumStrategy(
        sam_shapes, TopKSparsifier(RATIO, min_sparse_size=0), 0.7, arena=True
    )
    grads = OrderedDict([("w", arr)])
    pairs["samomentum_prepare"] = (
        lambda: sam_ref.prepare(grads, 0.1),
        lambda: sam_opt.prepare(grads, 0.1),
    )

    return pairs
