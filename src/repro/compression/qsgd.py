"""QSGD quantisation (Alistarh et al., the paper's [3]).

Randomised quantisation onto ``s`` uniform levels per layer: each value
``v`` maps to ``sign(v) · ‖g‖₂ · ξ/s`` where ``ξ ∈ {⌊s|v|/‖g‖⌋, ⌈s|v|/‖g‖⌉}``
chosen stochastically so the quantiser is unbiased.  Wire cost is
``⌈log2(2s+1)⌉`` bits per element plus one float norm per layer.

Included as the quantisation-family baseline the paper positions gradient
sparsification against ("even binary gradients can only achieve 32×
reduced size", §2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .coding import HEADER_BYTES, VALUE_BYTES

__all__ = ["QSGDQuantizer", "QSGDTensor"]


@dataclass(frozen=True)
class QSGDTensor:
    """A QSGD-quantised layer: integer levels in [−s, s] and the L2 norm."""

    levels: np.ndarray  # int32, |level| <= s
    norm: float
    s: int
    shape: tuple[int, ...]

    def to_dense(self) -> np.ndarray:
        return (self.levels.astype(np.float64) * (self.norm / self.s)).reshape(self.shape)

    def nbytes(self) -> int:
        n = int(np.prod(self.shape))
        bits = max(1, math.ceil(math.log2(2 * self.s + 1)))
        return HEADER_BYTES + VALUE_BYTES + (bits * n + 7) // 8


class QSGDQuantizer:
    """Unbiased stochastic quantiser with ``s`` levels (default 4 ⇒ 4 bits)."""

    def __init__(self, s: int = 4, seed: int = 0) -> None:
        if s < 1:
            raise ValueError(f"s must be >= 1, got {s}")
        self.s = s
        self._rng = np.random.default_rng(seed)

    def quantize(self, arr: np.ndarray) -> QSGDTensor:
        flat = arr.reshape(-1).astype(np.float64)
        norm = float(np.linalg.norm(flat))
        if norm == 0.0:
            return QSGDTensor(np.zeros(flat.size, dtype=np.int32), 0.0, self.s, arr.shape)
        scaled = np.abs(flat) * (self.s / norm)  # in [0, s]
        floor = np.floor(scaled)
        prob_up = scaled - floor
        levels = floor + (self._rng.random(flat.size) < prob_up)
        return QSGDTensor(
            (np.sign(flat) * levels).astype(np.int32), norm, self.s, arr.shape
        )

    def dequantize(self, t: QSGDTensor) -> np.ndarray:
        return t.to_dense()
