"""ARC001–ARC002 — architecture layering enforcement.

The last three PRs earned clean layer seams (``analysis → obs → exec →
comm → ps/core/arena``); this checker keeps them.  It extracts the
*runtime* import graph of the tree — module-level ``import``/``from``
statements, skipping ``if TYPE_CHECKING:`` blocks and function-local lazy
imports, because only load-time imports create load-order coupling and
cycles — aggregates it to top-level packages, and verifies:

* **ARC001** — an import edge between packages that is neither allowed by
  the layering matrix (:data:`ALLOWED_DEPS`) nor grandfathered in the
  committed baseline (``src/repro/analysis/ARCH_baseline.json``).  New
  cross-layer dependencies must be added to the matrix (a deliberate
  architecture decision) or they fail CI.
* **ARC002** — a cycle in the module-level runtime import graph.  The
  tree is import-cycle-free today and stays that way.

The baseline records the current package edge set; edges in the baseline
but no longer allowed by the matrix are "grandfathered" debt, listed by
``python -m repro.analysis arch`` so it can be burned down deliberately.
Findings honour ``# repro: noqa ARC001`` on the import line.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..findings import Finding, filter_suppressed
from ..linter import ModuleInfo, iter_python_files, load_module

__all__ = [
    "ALLOWED_DEPS",
    "ArchConfig",
    "ImportEdge",
    "baseline_path",
    "build_import_graph",
    "check_architecture",
    "load_baseline",
    "matrix_is_acyclic",
    "package_edges",
    "write_baseline",
]

#: the layering matrix: package → packages it may import at runtime.
#: ``"."`` is the package root (``repro/__init__`` and ``__main__``) —
#: entry points sit above every layer.  The matrix is a DAG (enforced by
#: :func:`matrix_is_acyclic` and a unit test); known violations of the
#: ideal layering live in the committed baseline as grandfathered debt,
#: not here.
ALLOWED_DEPS: "Mapping[str, frozenset[str]]" = {
    ".": frozenset(
        {
            "analysis",
            "autograd",
            "comm",
            "compression",
            "core",
            "data",
            "exec",
            "harness",
            "metrics",
            "nn",
            "obs",
            "optim",
            "ps",
            "sim",
        }
    ),
    "analysis": frozenset(),  # tooling: runtime-imports nothing (lazy only)
    "autograd": frozenset(),
    "comm": frozenset({"compression", "core", "obs", "ps"}),
    "compression": frozenset(),
    "core": frozenset({"autograd", "compression", "nn", "optim"}),
    "data": frozenset(),
    "exec": frozenset(
        {"comm", "core", "data", "metrics", "nn", "obs", "optim", "ps", "sim"}
    ),
    "harness": frozenset(
        {
            "autograd",
            "comm",
            "core",
            "data",
            "exec",
            "metrics",
            "nn",
            "obs",
            "optim",
            "ps",
            "sim",
        }
    ),
    "metrics": frozenset({"autograd", "core", "nn"}),
    "nn": frozenset({"autograd"}),
    "obs": frozenset({"metrics"}),
    "optim": frozenset({"autograd", "nn"}),
    "ps": frozenset(
        {"autograd", "compression", "core", "data", "metrics", "nn", "obs", "optim"}
    ),
    "sim": frozenset(
        {"comm", "compression", "core", "data", "metrics", "nn", "obs", "optim", "ps"}
    ),
}


@dataclass(frozen=True)
class ImportEdge:
    """One module-level runtime import between two in-tree modules."""

    src: str  #: dotted module (relative to the tree root), e.g. ``ps.server``
    dst: str
    path: str
    line: int
    col: int = 0
    #: owning top-level packages; ``"."`` for root modules (``__main__`` etc.)
    src_package: str = "."
    dst_package: str = "."


@dataclass
class ArchConfig:
    """Layering matrix + baseline used by :func:`check_architecture`."""

    allowed: "Mapping[str, frozenset[str]]" = field(default_factory=lambda: ALLOWED_DEPS)
    #: grandfathered package edges; ``None`` → load the committed baseline
    baseline: "set[tuple[str, str]] | None" = None


def baseline_path() -> Path:
    """Location of the committed baseline next to the analysis package."""
    return Path(__file__).resolve().parent.parent / "ARCH_baseline.json"


def load_baseline(path: "str | Path | None" = None) -> "set[tuple[str, str]]":
    """The package edge set recorded in the baseline file (empty if absent)."""
    p = Path(path) if path is not None else baseline_path()
    if not p.exists():
        return set()
    payload = json.loads(p.read_text())
    return {
        (src, dst)
        for src, dsts in payload.get("package_edges", {}).items()
        for dst in dsts
    }


def write_baseline(
    edges: "Mapping[tuple[str, str], Sequence[ImportEdge]]",
    path: "str | Path | None" = None,
    allowed: "Mapping[str, frozenset[str]] | None" = None,
) -> Path:
    """Write the current package edge set as the new baseline."""
    allowed = allowed if allowed is not None else ALLOWED_DEPS
    by_src: dict[str, list[str]] = {}
    for src, dst in sorted(edges):
        by_src.setdefault(src, []).append(dst)
    grandfathered = sorted(
        f"{src} -> {dst}" for src, dst in edges if dst not in allowed.get(src, frozenset())
    )
    payload = {
        "_comment": (
            "Package-level runtime import graph of src/repro, committed as the "
            "architecture baseline.  CI fails on any edge not in this file or "
            "in repro.analysis.concurrency.arch.ALLOWED_DEPS.  Regenerate "
            "deliberately with: python -m repro.analysis arch --update-baseline"
        ),
        "package_edges": by_src,
        "grandfathered": grandfathered,
    }
    p = Path(path) if path is not None else baseline_path()
    p.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return p


def _module_name(relpath: str) -> str:
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _runtime_imports(tree: ast.Module) -> "Iterator[ast.stmt]":
    """Module-level imports that execute at load time.

    Skips ``if TYPE_CHECKING:`` bodies; descends into top-level ``try``
    blocks (optional-dependency imports still execute).
    """
    def walk(stmts: "Sequence[ast.stmt]") -> "Iterator[ast.stmt]":
        for node in stmts:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield node
            elif isinstance(node, ast.If):
                test = node.test
                name = (
                    test.id
                    if isinstance(test, ast.Name)
                    else test.attr
                    if isinstance(test, ast.Attribute)
                    else None
                )
                if name == "TYPE_CHECKING":
                    continue
                yield from walk(node.body)
                yield from walk(node.orelse)
            elif isinstance(node, ast.Try):
                yield from walk(node.body)
                for handler in node.handlers:
                    yield from walk(handler.body)
                yield from walk(node.orelse)
                yield from walk(node.finalbody)

    yield from walk(tree.body)


def build_import_graph(
    root: "str | Path", paths: "Sequence[str | Path] | None" = None
) -> "tuple[list[ImportEdge], dict[str, ModuleInfo]]":
    """Runtime import edges between modules inside the tree."""
    rootp = Path(root)
    root_pkg = rootp.name
    modules: dict[str, ModuleInfo] = {}
    parsed: list[tuple[str, ModuleInfo]] = []
    pkg_of: dict[str, str] = {}
    targets = [Path(p) for p in paths] if paths is not None else list(iter_python_files(root))
    for path in targets:
        try:
            module = load_module(path, root=root)
        except SyntaxError:
            continue  # PAR001 is the lint pillar's job
        mod = _module_name(module.relpath)
        modules[mod] = module
        parsed.append((mod, module))
        parts = Path(module.relpath).parts
        pkg_of[mod] = parts[0] if len(parts) > 1 else "."
    names = set(modules)

    def resolve_target(mod: str, node: ast.stmt) -> "Iterator[str]":
        is_pkg = (rootp / Path(*mod.split("."))).is_dir() if mod else True
        pkg = mod if is_pkg else mod.rpartition(".")[0]
        if isinstance(node, ast.ImportFrom):
            if node.level:
                base = pkg.split(".") if pkg else []
                for _ in range(node.level - 1):
                    if base:
                        base.pop()
                target = ".".join(base + (node.module.split(".") if node.module else []))
            elif node.module and node.module.split(".")[0] == root_pkg:
                target = ".".join(node.module.split(".")[1:])
            else:
                return
            for alias in node.names:
                sub = f"{target}.{alias.name}" if target else alias.name
                if sub in names:
                    yield sub
                elif target in names:
                    yield target
                elif target == "" and alias.name in names:
                    yield alias.name
        elif isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] != root_pkg:
                    continue
                target = ".".join(parts[1:])
                if target in names:
                    yield target

    edges: list[ImportEdge] = []
    seen: set[tuple[str, str, int]] = set()
    for mod, module in parsed:
        for node in _runtime_imports(module.tree):
            for target in resolve_target(mod, node):
                if target == mod:
                    continue
                key = (mod, target, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                edges.append(
                    ImportEdge(
                        mod,
                        target,
                        module.path,
                        node.lineno,
                        node.col_offset,
                        pkg_of[mod],
                        pkg_of[target],
                    )
                )
    edges.sort(key=lambda e: (e.path, e.line, e.dst))
    return edges, modules


def package_edges(
    edges: "Sequence[ImportEdge]",
) -> "dict[tuple[str, str], list[ImportEdge]]":
    """Aggregate module edges to cross-package edges with witnesses."""
    out: dict[tuple[str, str], list[ImportEdge]] = {}
    for e in edges:
        if e.src_package != e.dst_package:
            out.setdefault((e.src_package, e.dst_package), []).append(e)
    return out


def matrix_is_acyclic(allowed: "Mapping[str, frozenset[str]] | None" = None) -> bool:
    """True iff the layering matrix itself contains no dependency cycle."""
    allowed = allowed if allowed is not None else ALLOWED_DEPS
    state: dict[str, int] = {}

    def visit(node: str) -> bool:
        mark = state.get(node, 0)
        if mark == 1:
            return False
        if mark == 2:
            return True
        state[node] = 1
        for nxt in allowed.get(node, frozenset()):
            if not visit(nxt):
                return False
        state[node] = 2
        return True

    return all(visit(pkg) for pkg in allowed)


def _module_cycles(edges: "Sequence[ImportEdge]") -> "list[list[str]]":
    adj: dict[str, set[str]] = {}
    for e in edges:
        adj.setdefault(e.src, set()).add(e.dst)
        adj.setdefault(e.dst, set())
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    onstack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strong(v: str) -> None:
        work = [(v, iter(sorted(adj[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        onstack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    onstack.add(w)
                    work.append((w, iter(sorted(adj[w]))))
                    advanced = True
                    break
                if w in onstack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    onstack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for v in sorted(adj):
        if v not in index:
            strong(v)
    return sorted(sccs)


def check_architecture(
    root: "str | Path",
    config: "ArchConfig | None" = None,
    paths: "Sequence[str | Path] | None" = None,
) -> "list[Finding]":
    """Run the layering pillar (ARC001 + ARC002) over a source tree."""
    config = config if config is not None else ArchConfig()
    baseline = config.baseline if config.baseline is not None else load_baseline()
    edges, modules = build_import_graph(root, paths=paths)
    findings: list[Finding] = []

    for (src, dst), witnesses in sorted(package_edges(edges).items()):
        if dst in config.allowed.get(src, frozenset()) or (src, dst) in baseline:
            continue
        anchor = witnesses[0]
        findings.append(
            Finding(
                "ARC001",
                anchor.path,
                anchor.line,
                f"layering violation: package {src!r} imports {dst!r} "
                f"({len(witnesses)} import(s)); allowed for {src!r}: "
                f"{sorted(config.allowed.get(src, frozenset())) or '[]'} — add the "
                "edge to the matrix deliberately or refactor the dependency",
                anchor.col,
            )
        )

    for scc in _module_cycles(edges):
        members = set(scc)
        cycle_edges = [e for e in edges if e.src in members and e.dst in members]
        anchor = min(cycle_edges, key=lambda e: (e.path, e.line))
        ring = " -> ".join(scc + [scc[0]])
        findings.append(
            Finding(
                "ARC002",
                anchor.path,
                anchor.line,
                f"module-level import cycle: {ring}",
                anchor.col,
            )
        )

    by_path: dict[str, list[Finding]] = {}
    for f in findings:
        by_path.setdefault(f.path, []).append(f)
    kept: list[Finding] = []
    for path, group in by_path.items():
        module = next((m for m in modules.values() if m.path == path), None)
        if module is None:
            kept.extend(group)
        else:
            kept.extend(filter_suppressed(group, module.lines))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept
