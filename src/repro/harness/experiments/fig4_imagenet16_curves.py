"""Figure 4 — learning curves on the ImageNet stand-in with 16 workers.

Momentum 0.45 per the paper's §5.1 setting for 16 workers.
"""

from __future__ import annotations

from ..config import get_workload
from .common import resolve_fast, scaling_hyper
from .fig2_cifar_curves import build_report

__all__ = ["run"]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)):
    fast = resolve_fast(fast)
    num_workers = 4 if fast else 16
    wl = get_workload("imagenet")
    return build_report(
        "Figure 4",
        f"Learning curve of ResNet-18 stand-in on synthetic ImageNet with {num_workers} workers",
        "imagenet",
        num_workers=num_workers,
        fast=fast,
        hyper=scaling_hyper(wl, num_workers),
        # paper's Table 4 keeps the global batch constant across scales
        batch_size=max(8, (wl.batch_size * 4) // num_workers),
    )
