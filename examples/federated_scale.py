#!/usr/bin/env python
"""Many-worker scenario: secondary compression bounds downstream volume.

The paper (§4.2.2) motivates secondary compression for "a very large number
of workers (e.g., federated learning)": without it, the model difference
``G_k`` a stale worker downloads accumulates other workers' updates and
densifies as the fleet grows; with it, the downstream volume is bounded at
the secondary ratio regardless of scale.

This example scales the worker count and prints the average download size
per exchange with secondary compression off vs on.

Usage:  python examples/federated_scale.py [--fast]
"""

import argparse

from repro.harness import get_workload, run_distributed
from repro.metrics import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    workload = get_workload("cifar10")
    worker_counts = (2, 8) if args.fast else (2, 8, 32)
    iters_per_worker = 15 if args.fast else 30

    rows = []
    for n in worker_counts:
        per_mode = {}
        for secondary in (False, True):
            r = run_distributed(
                "dgs",
                workload,
                n,
                gbps=10.0,
                secondary_compression=secondary,
                total_iterations=iters_per_worker * n,
                fast=args.fast,
                seed=0,
            )
            per_mode[secondary] = r.download_bytes / r.total_iterations / 1024
        rows.append((
            n,
            f"{per_mode[False]:.1f} KiB",
            f"{per_mode[True]:.1f} KiB",
            f"{per_mode[False] / per_mode[True]:.1f}x",
        ))

    print(format_table(
        ("workers", "download/msg (secondary off)", "download/msg (secondary on)", "saving"),
        rows,
        title="Average downstream message size vs fleet size (DGS)",
    ))
    print(
        "\nWith secondary compression the downstream message stays bounded as the\n"
        "fleet grows; without it, staleness densifies the model difference."
    )


if __name__ == "__main__":
    main()
