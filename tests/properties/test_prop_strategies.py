"""Property tests for worker strategies (Algorithms 1 and 3)."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import TopKSparsifier
from repro.core.strategies import GradientDroppingStrategy, SAMomentumStrategy

N = 16

grad_seqs = st.lists(
    st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False, width=64),
        min_size=N, max_size=N,
    ),
    min_size=1, max_size=12,
)
ratios = st.floats(min_value=0.05, max_value=1.0)
lrs = st.floats(min_value=0.001, max_value=1.0)
momenta = st.floats(min_value=0.05, max_value=0.95)


@given(grads=grad_seqs, ratio=ratios, lr=lrs)
@settings(max_examples=80, deadline=None)
def test_gradient_dropping_mass_conservation(grads, ratio, lr):
    """Σ sent + residual == η Σ∇, for any gradient sequence and ratio."""
    shapes = OrderedDict([("w", (N,))])
    strat = GradientDroppingStrategy(shapes, TopKSparsifier(ratio, min_sparse_size=0))
    sent = np.zeros(N)
    total = np.zeros(N)
    for g in grads:
        g = np.asarray(g)
        out = strat.prepare(OrderedDict([("w", g)]), lr)
        sent += out["w"].to_dense()
        total += lr * g
    # atol covers float32 wire rounding of the sent values.
    np.testing.assert_allclose(sent + strat.residual["w"], total, atol=1e-3)


@given(grads=grad_seqs, lr=lrs, m=momenta)
@settings(max_examples=80, deadline=None)
def test_samomentum_dense_equals_vanilla(grads, lr, m):
    """R=100%: SAMomentum sends exactly the dense velocity every step."""
    shapes = OrderedDict([("w", (N,))])
    strat = SAMomentumStrategy(shapes, TopKSparsifier(1.0, min_sparse_size=0), momentum=m)
    u = np.zeros(N)
    for g in grads:
        g = np.asarray(g)
        out = strat.prepare(OrderedDict([("w", g)]), lr)
        u = m * u + lr * g
        np.testing.assert_allclose(out["w"].to_dense(), u, atol=1e-9)


@given(grads=grad_seqs, ratio=ratios, lr=lrs, m=momenta)
@settings(max_examples=80, deadline=None)
def test_samomentum_invariant_m_times_u_tracks_gradient_mass(grads, ratio, lr, m):
    """The Eq.(16) telescoping, coordinate-wise: at any point in time,
    for a coordinate never selected so far, m·u == η Σ∇ for that coordinate."""
    shapes = OrderedDict([("w", (N,))])
    strat = SAMomentumStrategy(shapes, TopKSparsifier(ratio, min_sparse_size=0), momentum=m)
    gsum = np.zeros(N)
    ever_sent = np.zeros(N, dtype=bool)
    for g in grads:
        g = np.asarray(g)
        out = strat.prepare(OrderedDict([("w", g)]), lr)
        gsum += lr * g
        sent_now = np.zeros(N, dtype=bool)
        sent_now[out["w"].indices] = True
        ever_sent |= sent_now
        never = ~ever_sent
        np.testing.assert_allclose(m * strat.u["w"][never], gsum[never], atol=1e-8)
