"""Shape-manipulation autograd ops."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


def t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestReshape:
    def test_reshape_roundtrip(self, rng):
        a = t(rng, 2, 6)
        assert gradcheck(lambda a: a.reshape(3, 4).sum(), [a])

    def test_reshape_minus_one(self, rng):
        a = t(rng, 2, 6)
        assert a.reshape(4, -1).shape == (4, 3)

    def test_reshape_tuple_arg(self, rng):
        a = t(rng, 2, 6)
        assert a.reshape((3, 4)).shape == (3, 4)

    def test_reshape_grad_shape(self, rng):
        a = t(rng, 2, 6)
        a.reshape(12).sum().backward()
        assert a.grad.shape == (2, 6)


class TestTranspose:
    def test_default_reverses_axes(self, rng):
        a = t(rng, 2, 3, 4)
        assert a.transpose().shape == (4, 3, 2)

    def test_explicit_axes(self, rng):
        a = t(rng, 2, 3, 4)
        assert a.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_grad(self, rng):
        a = t(rng, 3, 5)
        assert gradcheck(lambda a: (a.T * a.T).sum(), [a])

    def test_T_property(self, rng):
        a = t(rng, 3, 5)
        np.testing.assert_allclose(a.T.data, a.data.T)


class TestIndexing:
    def test_slice_grad(self, rng):
        a = t(rng, 5, 4)
        out = a[1:3]
        out.backward(np.ones((2, 4)))
        expected = np.zeros((5, 4))
        expected[1:3] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_integer_array_index_accumulates(self, rng):
        a = t(rng, 4)
        idx = np.array([0, 0, 2])
        out = a[idx]
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, [2, 0, 1, 0])

    def test_gradcheck_fancy(self, rng):
        a = t(rng, 6)
        idx = np.array([1, 3, 3, 5])
        assert gradcheck(lambda a: (a[idx] ** 2).sum(), [a])


class TestPadConcat:
    def test_pad2d_shape(self, rng):
        a = t(rng, 2, 3, 4, 4)
        assert a.pad2d(1).shape == (2, 3, 6, 6)

    def test_pad2d_zero_is_identity(self, rng):
        a = t(rng, 1, 1, 3, 3)
        assert a.pad2d(0) is a

    def test_pad2d_grad(self, rng):
        a = t(rng, 1, 2, 3, 3)
        assert gradcheck(lambda a: (a.pad2d(2) ** 2).sum(), [a])

    def test_concat_values(self, rng):
        a, b = t(rng, 2, 3), t(rng, 4, 3)
        out = Tensor.concat([a, b], axis=0)
        np.testing.assert_allclose(out.data, np.concatenate([a.data, b.data]))

    def test_concat_grad_splits(self, rng):
        a, b = t(rng, 2, 3), t(rng, 2, 3)
        out = Tensor.concat([a, b], axis=1)
        out.backward(np.arange(12.0).reshape(2, 6))
        np.testing.assert_allclose(a.grad, np.arange(12.0).reshape(2, 6)[:, :3])
        np.testing.assert_allclose(b.grad, np.arange(12.0).reshape(2, 6)[:, 3:])

    def test_concat_gradcheck(self, rng):
        a, b = t(rng, 2, 2), t(rng, 3, 2)
        assert gradcheck(lambda a, b: (Tensor.concat([a, b], axis=0) ** 2).sum(), [a, b])
