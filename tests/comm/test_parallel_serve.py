"""Parallel serve loop (``shard_lanes``): parity, ordering, isolation.

The contract under test: ``serve_channels(..., shard_lanes=N)`` is an
*execution strategy*, not an algorithm change.  A deterministic worker
choreography — lock-step request/reply so the server-side apply order is
fixed — must produce bitwise-identical global models whether the loop
runs serial (demux thread decodes and dispatches everything) or parallel
(demux routes raw bytes to per-shard lanes that decode outside every
lock).  The stress test interleaves the whole control plane — joins,
leaves, telemetry, a mid-run join, a crash during the burst — through
the demux thread while gradient sub-frames flow through the lanes, and
then audits the :class:`~repro.ps.membership.WorkerDirectory` trail.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.comm import (
    CONTROL_JOIN,
    CONTROL_LEAVE,
    CloseFrame,
    ControlFrame,
    GradientFrame,
    ModelFrame,
    TelemetryFrame,
    serve_channels,
)
from repro.comm.service import ServerService
from repro.comm.socket import SocketChannel, SocketListener
from repro.core.layerops import parameters_of
from repro.core.methods import Hyper, get_method
from repro.exec.common import build_server
from repro.nn import MLP
from repro.ps.membership import WorkerDirectory
from repro.ps.messages import GradientMessage

NUM_SHARDS = 4  # MLP(6, (8,), 3) has exactly 4 tensors -> 4 non-empty shards


def _make_sharded_service(num_workers: int, arena: bool = False):
    model = MLP(6, (8,), 3, seed=2)
    server = build_server(
        get_method("asgd"),
        parameters_of(model),
        num_workers,
        Hyper(lr=0.1, momentum=0.0),
        num_shards=NUM_SHARDS,
        arena=arena,
    )
    membership = WorkerDirectory(server)
    return ServerService(server, membership=membership), server, membership


def _payload_for(server, worker_id: int, round_no: int):
    """Deterministic dense gradient, unique per (worker, round)."""
    scale = 0.01 * (worker_id + 1) + 0.001 * (round_no + 1)
    return {
        name: np.full_like(np.asarray(buf), scale, dtype=np.float64)
        for name, buf in server.global_model().items()
    }


def _fanout_step(channel, server, worker_id: int, round_no: int):
    """One lock-step sharded exchange: send every sub-frame, await every
    reply (keyed by the reply's shard stamp), return the merged payload."""
    parts = server.partition.split(_payload_for(server, worker_id, round_no))
    for s, part in enumerate(parts):
        channel.send(
            GradientFrame(GradientMessage(worker_id, part, round_no), loss=0.5, shard=s)
        )
    replies = [None] * len(parts)
    for _ in parts:
        reply = channel.recv()
        assert reply.shard >= 0, "lane replies must carry their shard stamp"
        assert replies[reply.shard] is None, "duplicate reply for one shard"
        replies[reply.shard] = reply
    return server.partition.merge([r.message.payload for r in replies])


def _serve(service, server, listener, expected_closes, **kwargs):
    return serve_channels(
        [],
        service,
        stats=server.stats,
        listener=listener,
        expected_closes=expected_closes,
        **kwargs,
    )


def _run_driver(target, serve_fn):
    """Run ``target`` on a worker thread while ``serve_fn`` blocks; re-raise
    any driver-side failure so asserts in the thread actually fail the test."""
    failures: "list[BaseException]" = []

    def wrapped():
        try:
            target()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    t = threading.Thread(target=wrapped)
    t.start()
    try:
        report = serve_fn()
    finally:
        t.join(timeout=30)
    assert not t.is_alive(), "driver thread wedged"
    if failures:
        raise failures[0]
    return report


class TestLaneParity:
    """Minimal fan-out choreography, serial vs parallel, bitwise."""

    def _run(self, shard_lanes):
        service, server, _ = _make_sharded_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address

        def driver():
            ch = SocketChannel.connect(host, port)
            for r in range(6):
                merged = _fanout_step(ch, server, 0, r)
                assert set(merged) == set(server.global_model())
            ch.send(CloseFrame(worker_id=0))
            ch.close()

        try:
            report = _run_driver(
                driver,
                lambda: _serve(service, server, listener, 1, shard_lanes=shard_lanes),
            )
        finally:
            listener.close()
        return server, report

    def test_parallel_matches_serial_bitwise(self):
        server_a, report_a = self._run(shard_lanes=None)
        server_b, report_b = self._run(shard_lanes=NUM_SHARDS)
        a, b = server_a.global_model(), server_b.global_model()
        assert list(a) == list(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
        assert server_a.timestamp == server_b.timestamp

    def test_updates_count_steps_not_subframes(self):
        # 6 steps x NUM_SHARDS sub-frames; `updates` is worker steps in
        # both modes (the shard-0 sub-frame is the step's token)
        _, report_serial = self._run(shard_lanes=None)
        _, report_parallel = self._run(shard_lanes=NUM_SHARDS)
        assert report_serial.updates == 6
        assert report_parallel.updates == 6

    def test_same_shard_replies_stay_fifo(self):
        """Pipelined frames to one shard come back in send order: one lane
        per shard is a FIFO, and the single writer preserves it."""
        service, server, _ = _make_sharded_service(num_workers=1)
        listener = SocketListener()
        host, port = listener.address
        timestamps: "list[int]" = []

        def driver():
            ch = SocketChannel.connect(host, port)
            layers = server.partition.layers(0)
            shapes = {k: v.shape for k, v in server.global_model().items()}
            for r in range(5):  # pipeline: all sends, then all recvs
                part = {k: np.full(shapes[k], 0.01 * (r + 1)) for k in layers}
                ch.send(
                    GradientFrame(GradientMessage(0, part, r), loss=0.1, shard=0)
                )
            for _ in range(5):
                reply = ch.recv()
                assert reply.shard == 0
                timestamps.append(reply.message.server_timestamp)
            ch.send(CloseFrame(worker_id=0))
            ch.close()

        try:
            _run_driver(
                driver,
                lambda: _serve(service, server, listener, 1, shard_lanes=NUM_SHARDS),
            )
        finally:
            listener.close()
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == 5


class TestConcurrentIngressStress:
    """M channels x N shards with the full control plane interleaved."""

    ROUNDS = 6
    BASE_WORKERS = 4  # workers 0..3 join up front; worker 4 joins mid-run

    def _run(self, shard_lanes):
        service, server, membership = _make_sharded_service(num_workers=5)
        listener = SocketListener()
        host, port = listener.address

        def driver():
            channels: "dict[int, SocketChannel]" = {}

            def join(worker_id: int):
                ch = SocketChannel.connect(host, port)
                ch.send(ControlFrame(worker_id, CONTROL_JOIN))
                reply = ch.recv()
                assert isinstance(reply, ModelFrame)
                channels[worker_id] = ch

            for w in range(self.BASE_WORKERS):
                join(w)
            for r in range(self.ROUNDS):
                if r == 2:
                    join(4)  # mid-run join, against a moved M_t
                for w in sorted(channels):
                    if w == 2 and r == 4:
                        # crash during the burst: vanish at a step
                        # boundary, no leave, no close frame
                        channels.pop(w).close()
                        continue
                    _fanout_step(channels[w], server, w, r)
            # telemetry interleaved with the shutdown traffic
            channels[0].send(
                TelemetryFrame(
                    worker_id=0,
                    spans=({"type": "span", "name": "worker.step", "ts": 0.0, "dur": 1.0},),
                )
            )
            for w in sorted(channels):
                ch = channels[w]
                ch.send(ControlFrame(w, CONTROL_LEAVE))
                ch.send(CloseFrame(worker_id=w, samples_processed=10))
                ch.close()

        try:
            report = _run_driver(
                driver,
                lambda: _serve(service, server, listener, 5, shard_lanes=shard_lanes),
            )
        finally:
            listener.close()
        return server, membership, report

    # workers 0,1,3: 6 rounds; worker 2: rounds 0-3; worker 4: rounds 2-5
    EXPECTED_UPDATES = 3 * 6 + 4 + 4

    def test_parallel_matches_serial_bitwise(self):
        server_a, _, report_a = self._run(shard_lanes=None)
        server_b, _, report_b = self._run(shard_lanes=NUM_SHARDS)
        a, b = server_a.global_model(), server_b.global_model()
        assert list(a) == list(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
        assert report_a.updates == report_b.updates == self.EXPECTED_UPDATES
        assert server_a.timestamp == server_b.timestamp

    @pytest.mark.parametrize("shard_lanes", [None, NUM_SHARDS])
    def test_membership_audit_trail(self, shard_lanes):
        _, membership, report = self._run(shard_lanes)
        assert membership.members == {
            0: "left",
            1: "left",
            2: "crash",
            3: "left",
            4: "left",
        }
        snap = membership.snapshot()
        assert snap["joins"] == 5
        assert snap["leaves"] == 4
        assert snap["crashes"] == 1
        assert snap["evictions"] == 0
        assert (report.joins, report.leaves) == (5, 4)
        assert report.clean_closes == 4 and report.crashes == 1
        assert any("without a close frame" in e for e in report.errors)
        assert 0 in report.telemetry
        assert report.samples_processed == 4 * 10


class TestLaneWorkspaceIsolation:
    """Zero-copy lane plumbing: per-shard scratch, no aliasing across lanes."""

    def test_each_shard_owns_a_distinct_workspace(self):
        _, server, _ = _make_sharded_service(num_workers=1, arena=True)
        workspaces = [shard.tracker.workspace for shard in server.shards]
        assert all(ws is not None for ws in workspaces)
        assert len({id(ws) for ws in workspaces}) == len(workspaces)

    def test_shard_arena_views_never_alias(self):
        _, server, _ = _make_sharded_service(num_workers=1, arena=True)
        shard_layers = [
            [np.asarray(shard.theta0[name]) for name in shard.tracker.shapes]
            for shard in server.shards
        ]
        for i in range(len(shard_layers)):
            for j in range(i + 1, len(shard_layers)):
                for a in shard_layers[i]:
                    for b in shard_layers[j]:
                        assert not np.shares_memory(a, b)

    def test_subframe_bytes_sum_to_whole_frame_bytes(self):
        """Fan-out adds headers, never payload: per-shard sub-frame payload
        bytes sum exactly to the whole-model payload bytes."""
        _, server, _ = _make_sharded_service(num_workers=1)
        payload = _payload_for(server, 0, 0)
        parts = server.partition.split(payload)
        whole = GradientMessage(0, payload, 0)
        subs = [GradientMessage(0, part, 0) for part in parts]
        assert sum(m.nbytes() for m in subs) == whole.nbytes()


class TestTrainerParity:
    """dict/arena x pipe/socket x serial/parallel: one result, bitwise."""

    ITERS = 8

    def _result(self, trainer_cls, tiny_dataset, tiny_model_factory, **kwargs):
        defaults = dict(
            num_workers=1,
            batch_size=16,
            iterations_per_worker=self.ITERS,
            hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0),
            seed=0,
        )
        defaults.update(kwargs)
        return trainer_cls("dgs", tiny_model_factory, tiny_dataset, **defaults).run()

    @pytest.mark.parametrize("arena", [False, True], ids=["dict", "arena"])
    @pytest.mark.parametrize("transport", ["pipe", "socket"])
    def test_parallel_matches_serial(
        self, tiny_dataset, tiny_model_factory, transport, arena
    ):
        from repro.ps.process import ProcessTrainer
        from repro.ps.socket import SocketTrainer

        trainer_cls = ProcessTrainer if transport == "pipe" else SocketTrainer
        serial = self._result(
            trainer_cls, tiny_dataset, tiny_model_factory,
            num_shards=NUM_SHARDS, arena=arena,
        )
        parallel = self._result(
            trainer_cls, tiny_dataset, tiny_model_factory,
            num_shards=NUM_SHARDS, arena=arena, shard_parallel=True,
        )
        assert parallel.errors == serial.errors == []
        assert parallel.final_loss == serial.final_loss
        assert parallel.final_accuracy == serial.final_accuracy
        assert parallel.loss_vs_step.ys == serial.loss_vs_step.ys
        assert parallel.upload_bytes == serial.upload_bytes
        assert parallel.total_iterations == serial.total_iterations == self.ITERS

    def test_sharded_parallel_matches_single_shard(
        self, tiny_dataset, tiny_model_factory
    ):
        """The single/sharded axis: one-lock serving and parallel sharded
        serving are the same algorithm on a deterministic schedule."""
        from repro.ps.process import ProcessTrainer

        single = self._result(
            ProcessTrainer, tiny_dataset, tiny_model_factory, num_shards=1
        )
        parallel = self._result(
            ProcessTrainer, tiny_dataset, tiny_model_factory,
            num_shards=NUM_SHARDS, shard_parallel=True,
        )
        assert parallel.final_loss == single.final_loss
        assert parallel.loss_vs_step.ys == single.loss_vs_step.ys
