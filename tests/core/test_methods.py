"""Method registry and strategy construction."""

import pytest

from repro.core import METHODS, Hyper, build_strategy, get_method, method_names
from repro.core.strategies import (
    DenseStrategy,
    DGCStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
)

SHAPES = {"w": (30,)}


class TestRegistry:
    def test_all_paper_methods_present(self):
        assert {"msgd", "asgd", "gd_async", "dgc_async", "dgs"} <= set(METHODS)
        # §6 extensions register on import as well
        assert {"terngrad", "random_dropping", "dgs_terngrad"} <= set(METHODS)

    def test_get_method(self):
        assert get_method("dgs").label == "DGS"

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            get_method("nope")

    def test_method_names_filter(self):
        assert "msgd" not in method_names(distributed_only=True)
        assert "msgd" in method_names()

    def test_msgd_is_single_node(self):
        assert not get_method("msgd").distributed

    def test_downstream_modes(self):
        assert get_method("asgd").downstream == "model"
        for name in ("gd_async", "dgc_async", "dgs"):
            assert get_method(name).downstream == "difference"

    def test_table5_flags(self):
        dgs = get_method("dgs")
        assert dgs.momentum == "SAMomentum"
        assert not dgs.momentum_correction
        assert not dgs.residual_accumulation
        dgc = get_method("dgc_async")
        assert dgc.momentum_correction and dgc.residual_accumulation


class TestBuildStrategy:
    def test_kinds(self):
        h = Hyper()
        assert isinstance(build_strategy("dense", SHAPES, h), DenseStrategy)
        assert isinstance(build_strategy("dropping", SHAPES, h), GradientDroppingStrategy)
        assert isinstance(build_strategy("dgc", SHAPES, h), DGCStrategy)
        assert isinstance(build_strategy("samomentum", SHAPES, h), SAMomentumStrategy)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_strategy("nope", SHAPES, Hyper())

    def test_spec_make_strategy(self):
        st = get_method("dgs").make_strategy(SHAPES, Hyper(ratio=0.2, momentum=0.5))
        assert isinstance(st, SAMomentumStrategy)
        assert st.momentum == 0.5

    def test_hyper_ratio_propagates(self):
        st = build_strategy("dropping", SHAPES, Hyper(ratio=0.25))
        assert st.sparsifier.ratio == 0.25
