"""One test per headline sentence of the paper — the claims as assertions.

Each test cites the sentence it operationalises. These run at tiny scale,
so they check *direction*, with the full-scale magnitudes living in
benchmarks/.
"""

import numpy as np
import pytest

from repro.core import Hyper
from repro.data import make_blobs
from repro.nn import MLP
from repro.sim import ClusterConfig, SimulatedTrainer

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.05, secondary_ratio=0.05, min_sparse_size=0)


@pytest.fixture(scope="module")
def ds():
    return make_blobs(n_samples=500, num_classes=5, dim=16, sep=1.8, noise=1.0, seed=6)


@pytest.fixture(scope="module")
def factory():
    return lambda: MLP(16, (32,), 5, seed=2)


def run(ds, factory, method, gbps=10.0, n=4, secondary=None, iters=160):
    return SimulatedTrainer(
        method, factory, ds,
        ClusterConfig.with_bandwidth(n, gbps, compute_mean_s=0.05),
        batch_size=16, total_iterations=iters, hyper=HYPER,
        secondary_compression=secondary, seed=0,
    ).run()


class TestAbstractClaims:
    def test_dual_way_communication_cost_significantly_reduced(self, ds, factory):
        """'the dual-way communication cost between server and workers can
        be significantly reduced' (abstract)."""
        asgd = run(ds, factory, "asgd")
        dgs = run(ds, factory, "dgs", secondary=True)
        assert dgs.upload_bytes < asgd.upload_bytes / 4
        assert dgs.download_bytes < asgd.download_bytes / 4

    def test_download_is_model_difference_not_model(self, ds, factory):
        """'our approach lets workers download model difference from the
        parameter server' (abstract) — downstream must be sparser than the
        dense model for sparse-upload methods."""
        dgs = run(ds, factory, "dgs")
        assert dgs.download_bytes < dgs.download_dense_bytes

    def test_samomentum_offers_optimization_boost(self, ds, factory):
        """'SAMomentum ... offers significant optimization boost' — with
        equal budgets, DGS (with SAMomentum) reaches lower loss than
        GD-async (without)."""
        gd = run(ds, factory, "gd_async", iters=200)
        dgs = run(ds, factory, "dgs", iters=200)
        # on an easy task both converge; the boost shows as at-least-equal
        # accuracy and near-zero loss (magnitudes in benchmarks/)
        assert dgs.final_loss < max(2 * gd.final_loss, 0.1)
        assert dgs.final_accuracy >= gd.final_accuracy - 0.05


class TestSection4Claims:
    def test_dgs_without_sparsification_is_asgd(self, ds, factory):
        """Eq. (5): 'DGS without sparsification is equivalent to ASGD' —
        R=100% upload through difference tracking equals dense ASGD."""
        dense_hyper = Hyper(lr=0.1, momentum=0.7, ratio=1.0, min_sparse_size=0)
        gd_full = SimulatedTrainer(
            "gd_async", factory, ds,
            ClusterConfig.with_bandwidth(3, 10, compute_mean_s=0.05),
            batch_size=16, total_iterations=90, hyper=dense_hyper, seed=0,
        ).run()
        asgd = SimulatedTrainer(
            "asgd", factory, ds,
            ClusterConfig.with_bandwidth(3, 10, compute_mean_s=0.05),
            batch_size=16, total_iterations=90, hyper=dense_hyper, seed=0,
        ).run()
        # identical data order + scheduling seed → identical final loss
        # rel covers float32 wire rounding of the tracked differences.
        assert gd_full.final_loss == pytest.approx(asgd.final_loss, rel=1e-5)

    def test_secondary_compression_bounds_downstream(self, ds, factory):
        """§4.2.2: 'Secondary compression guarantees the sparsity of the
        send-ready model difference ... no matter how many workers'."""
        per_msg = {}
        for n in (2, 8):
            r = run(ds, factory, "dgs", n=n, secondary=True, iters=40 * n)
            per_msg[n] = r.download_bytes / r.total_iterations
        assert per_msg[8] < per_msg[2] * 1.5  # bounded, not growing ∝ staleness


class TestSection5Claims:
    def test_works_well_with_low_bandwidth(self, ds, factory):
        """'our approach works well with a low network bandwidth of 1Gbps'
        — makespan within 2× of the 10 Gbps run (ASGD blows up instead)."""
        cluster10 = ClusterConfig.with_bandwidth(4, 10, compute_mean_s=0.05)
        cluster10.wire_scale = 3000
        cluster1 = ClusterConfig.with_bandwidth(4, 1.0, compute_mean_s=0.05)
        cluster1.wire_scale = 3000

        def time_of(method, cl, secondary=None):
            return SimulatedTrainer(
                method, factory, ds, cl, batch_size=16, total_iterations=80,
                hyper=HYPER, secondary_compression=secondary, seed=0,
            ).run().makespan_s

        dgs_ratio = time_of("dgs", cluster1, True) / time_of("dgs", cluster10, True)
        asgd_ratio = time_of("asgd", cluster1) / time_of("asgd", cluster10)
        assert dgs_ratio < 2.0
        assert asgd_ratio > 3.0
