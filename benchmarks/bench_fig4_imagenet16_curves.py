"""Figure 4 — learning curves on synthetic ImageNet, 16 workers."""

from repro.harness.experiments import fig4_imagenet16_curves
from repro.harness.config import is_fast_mode


def test_fig4_imagenet16_curves(run_experiment):
    report = run_experiment(fig4_imagenet16_curves, "fig4_imagenet16_curves")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    assert len(report.figures) == 2
    finals = {row[0]: float(row[1].rstrip("%")) for row in report.rows}
    # 16-worker micro-scale band is tight (see EXPERIMENTS.md deviation note).
    assert finals["DGS"] >= finals["ASGD"] - 2.5
