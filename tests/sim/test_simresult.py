"""SimResult / SyncResult derived-metric math."""

import pytest

from repro.metrics import Curve
from repro.sim.engine import SimResult
from repro.sim.sync import SyncResult


def make_simresult(**overrides):
    defaults = dict(
        method="dgs",
        num_workers=4,
        final_accuracy=0.9,
        final_loss=0.3,
        loss_vs_step=Curve("a"),
        loss_vs_time=Curve("b"),
        acc_vs_step=Curve("c"),
        makespan_s=10.0,
        total_iterations=100,
        samples_processed=3200,
        mean_staleness=3.0,
        upload_bytes=1000,
        download_bytes=2000,
        upload_dense_bytes=10000,
        download_dense_bytes=20000,
        uplink_utilisation=0.5,
        downlink_utilisation=0.5,
        server_state_bytes=0,
        worker_state_bytes=0,
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestSimResult:
    def test_throughput(self):
        assert make_simresult().throughput == pytest.approx(320.0)

    def test_throughput_zero_makespan(self):
        assert make_simresult(makespan_s=0.0).throughput == 0.0

    def test_compression_ratio(self):
        assert make_simresult().compression_ratio == pytest.approx(10.0)

    def test_compression_ratio_no_traffic(self):
        r = make_simresult(
            upload_bytes=0, download_bytes=0, upload_dense_bytes=0, download_dense_bytes=0
        )
        assert r.compression_ratio == 1.0

    def test_trace_default_none(self):
        assert make_simresult().trace is None


class TestSyncResult:
    def test_throughput(self):
        r = SyncResult(
            method="asgd", num_workers=2, final_accuracy=0.9, final_loss=0.1,
            loss_vs_step=Curve("a"), loss_vs_time=Curve("b"), makespan_s=4.0,
            rounds=10, samples_processed=400, upload_bytes=1, download_bytes=1,
            straggler_time_s=0.0,
        )
        assert r.throughput == pytest.approx(100.0)
