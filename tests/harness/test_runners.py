"""Runner wrappers (fast scale)."""

import pytest

from repro.harness import get_workload, run_all_methods, run_distributed, run_msgd
from repro.harness.local import LocalResult
from repro.sim import SimResult


@pytest.fixture(scope="module")
def wl():
    return get_workload("blobs")


class TestRunDistributed:
    def test_returns_simresult(self, wl):
        r = run_distributed("dgs", wl, 2, fast=True, epochs=1)
        assert isinstance(r, SimResult)
        assert r.num_workers == 2
        assert r.total_iterations == wl.dataset(fast=True).n_train // wl.batch_size

    def test_total_iterations_override(self, wl):
        r = run_distributed("asgd", wl, 2, fast=True, total_iterations=7)
        assert r.total_iterations == 7

    def test_batch_size_override(self, wl):
        r = run_distributed("asgd", wl, 2, fast=True, epochs=1, batch_size=8)
        assert r.samples_processed == r.total_iterations * 8

    def test_hyper_lr_reaches_schedule(self, wl):
        from dataclasses import replace

        # Sanity: overriding hyper.lr changes behaviour (different final loss).
        a = run_distributed("asgd", wl, 2, fast=True, epochs=1, seed=0)
        b = run_distributed(
            "asgd", wl, 2, fast=True, epochs=1, seed=0, hyper=replace(wl.hyper, lr=1e-5)
        )
        assert a.final_loss != b.final_loss


class TestRunMsgd:
    def test_returns_localresult(self, wl):
        r = run_msgd(wl, fast=True, epochs=1)
        assert isinstance(r, LocalResult)
        assert r.final_accuracy > 0.0


class TestRunAllMethods:
    def test_runs_everything(self, wl):
        res = run_all_methods(wl, 2, fast=True, epochs=1)
        assert set(res) == {"msgd", "asgd", "gd_async", "dgc_async", "dgs"}

    def test_methods_subset(self, wl):
        res = run_all_methods(wl, 2, methods=("dgs",), include_msgd=False, fast=True, epochs=1)
        assert set(res) == {"dgs"}
