"""Opt-in profiling hooks for the hot paths.

``profile_hot_paths()`` patches timed wrappers over the places every
training iteration pays for:

* **autograd** — op dispatch: ``conv2d`` / pooling functionals,
  ``Tensor.matmul`` and ``Tensor.backward`` (the whole reverse sweep);
* **compression** — top-k / adaptive-threshold selection and COO mask
  encoding (``encode_mask``);
* **codec** — wire ``encode_message`` / ``decode_message``
  (the process trainer's serialisation cost).

Hooks are strictly opt-in: nothing is patched at import time, so with
tracing disabled the hot paths run the original, unwrapped functions —
zero overhead (the ≤3% bench budget is spent only when profiling is on).
Wrapped functions emit spans to the *ambient* tracer
(:func:`repro.obs.tracer.current_tracer`), so one ``use_tracer`` block
captures every layer.  Patches are reference-tracked and fully restored
on exit, including module namespaces that re-bound the original name at
import time (``repro.nn.conv``'s ``conv2d``, ``repro.core.strategies``'s
``encode_mask``, …).
"""

from __future__ import annotations

import contextlib
import functools
from typing import Any, Callable, Iterator

from .tracer import current_tracer

__all__ = ["HOT_PATH_GROUPS", "profile_hot_paths"]

#: patchable hook groups accepted by :func:`profile_hot_paths`
HOT_PATH_GROUPS = ("autograd", "compression", "codec")


def _timed(fn: Callable, name: str, cat: str) -> Callable:
    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any):
        with current_tracer().span(name, cat=cat):
            return fn(*args, **kwargs)

    wrapper.__repro_obs_wrapped__ = fn  # type: ignore[attr-defined]
    return wrapper


class _PatchSet:
    """Applies attribute patches and restores them in reverse order."""

    def __init__(self) -> None:
        self._applied: list[tuple[Any, str, Any]] = []

    def patch_everywhere(self, holders: "list[Any]", attr: str, name: str, cat: str) -> None:
        """Wrap ``holders[0].attr`` and rebind in every namespace holding it."""
        original = getattr(holders[0], attr)
        if getattr(original, "__repro_obs_wrapped__", None) is not None:
            return  # already profiled (nested profile_hot_paths)
        wrapped = _timed(original, name, cat)
        for holder in holders:
            if getattr(holder, attr, None) is original:
                self._applied.append((holder, attr, original))
                setattr(holder, attr, wrapped)

    def restore(self) -> None:
        for holder, attr, original in reversed(self._applied):
            setattr(holder, attr, original)
        self._applied.clear()


def _patch_autograd(patches: _PatchSet) -> None:
    from .. import autograd as ag_pkg
    from ..autograd import ops as ag_ops
    from ..autograd.tensor import Tensor
    from ..nn import conv as nn_conv

    for fname in ("conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d"):
        patches.patch_everywhere([ag_ops, ag_pkg, nn_conv], fname, f"autograd.{fname}", "autograd")
    patches.patch_everywhere([Tensor], "backward", "autograd.backward", "autograd")
    original_matmul = Tensor.matmul
    patches.patch_everywhere([Tensor], "matmul", "autograd.matmul", "autograd")
    if Tensor.__matmul__ is original_matmul:
        patches.patch_everywhere([Tensor], "__matmul__", "autograd.matmul", "autograd")


def _patch_compression(patches: _PatchSet) -> None:
    from .. import compression as comp_pkg
    from ..compression import coding as comp_coding
    from ..compression.adaptive import AdaptiveThresholdSparsifier
    from ..compression.topk import TopKSparsifier
    from ..core import strategies as core_strategies

    patches.patch_everywhere([TopKSparsifier], "mask", "compression.topk.mask", "compression")
    # The arena hot path takes the fused select() kernel instead of
    # mask()+encode_mask(); hook it too or traced arena runs (the default)
    # lose the whole compression category.
    patches.patch_everywhere([TopKSparsifier], "select", "compression.topk.select", "compression")
    patches.patch_everywhere(
        [AdaptiveThresholdSparsifier], "mask", "compression.adaptive.mask", "compression"
    )
    patches.patch_everywhere(
        [comp_coding, comp_pkg, core_strategies], "encode_mask", "compression.encode_mask", "compression"
    )


def _patch_codec(patches: _PatchSet) -> None:
    from .. import ps as ps_pkg
    from ..comm import frames as comm_frames
    from ..ps import codec as ps_codec

    # comm.frames holds the only by-name copies of the codec functions now
    # that the trainers route every exchange through the channel layer.
    for fname in ("encode_message", "decode_message"):
        patches.patch_everywhere(
            [ps_codec, ps_pkg, comm_frames], fname, f"codec.{fname}", "codec"
        )


@contextlib.contextmanager
def profile_hot_paths(groups: "tuple[str, ...]" = HOT_PATH_GROUPS) -> "Iterator[None]":
    """Context manager installing the hot-path span wrappers.

    ``groups`` selects hook families from :data:`HOT_PATH_GROUPS`.
    Wrappers emit to whatever tracer is ambient *at call time*, so this
    composes with :func:`repro.obs.tracer.use_tracer` in either order.
    """
    unknown = set(groups) - set(HOT_PATH_GROUPS)
    if unknown:
        raise ValueError(f"unknown hot-path groups: {sorted(unknown)}")
    patches = _PatchSet()
    try:
        if "autograd" in groups:
            _patch_autograd(patches)
        if "compression" in groups:
            _patch_compression(patches)
        if "codec" in groups:
            _patch_codec(patches)
        yield
    finally:
        patches.restore()
