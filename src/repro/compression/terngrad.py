"""TernGrad quantisation (Wen et al. 2017) — future-work combination (§6).

Quantises each layer to {−1, 0, +1}·s where ``s = max|g|``, with stochastic
rounding so the quantised gradient is an unbiased estimator.  Wire cost is
2 bits per element plus one float scale per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coding import HEADER_BYTES, VALUE_BYTES

__all__ = ["TernGradQuantizer", "TernaryTensor"]


@dataclass(frozen=True)
class TernaryTensor:
    """A ternary-quantised layer: signs in {-1, 0, 1} and a scalar scale."""

    signs: np.ndarray  # int8, values in {-1, 0, 1}
    scale: float
    shape: tuple[int, ...]

    def to_dense(self) -> np.ndarray:
        return (self.signs * self.scale).astype(np.float64).reshape(self.shape)

    def nbytes(self) -> int:
        """2 bits/element packed, plus the scale and header."""
        n = int(np.prod(self.shape))
        return HEADER_BYTES + VALUE_BYTES + (2 * n + 7) // 8


class TernGradQuantizer:
    """Stochastic ternary quantisation with optional gradient clipping."""

    def __init__(self, seed: int = 0, clip_sigma: float | None = 2.5) -> None:
        self._rng = np.random.default_rng(seed)
        self.clip_sigma = clip_sigma

    def quantize(self, arr: np.ndarray) -> TernaryTensor:
        g = arr.astype(np.float64, copy=True)
        if self.clip_sigma is not None and g.size > 1:
            sigma = g.std()
            if sigma > 0:
                bound = self.clip_sigma * sigma
                np.clip(g, -bound, bound, out=g)
        scale = float(np.abs(g).max())
        if scale == 0.0:
            return TernaryTensor(np.zeros(g.size, dtype=np.int8), 0.0, arr.shape)
        prob = np.abs(g.reshape(-1)) / scale  # P(nonzero), unbiased
        bernoulli = self._rng.random(g.size) < prob
        signs = (np.sign(g.reshape(-1)) * bernoulli).astype(np.int8)
        return TernaryTensor(signs, scale, arr.shape)

    def dequantize(self, t: TernaryTensor) -> np.ndarray:
        return t.to_dense()
