PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint arch-check concurrency-smoke test bench-smoke bench-kernels bench-shards trace-smoke backend-matrix comm-smoke parallel-smoke run-report-smoke shard-smoke socket-smoke

## Static analysis: AST lint + lock discipline + lock graph + layering +
## sanitizer self-check.
lint:
	$(PYTHON) -m repro.analysis

## Architecture layering report: every package import edge vs the
## allowed-dependency matrix and the committed ARCH_baseline.json.
arch-check:
	$(PYTHON) -m repro.analysis arch

## Deadlock-detection smoke: the committed ABBA fixture must be caught
## statically (LCK004) AND dynamically (LockRegistry order inversion).
concurrency-smoke:
	$(PYTHON) -m repro.analysis abba-smoke tests/analysis/fixtures/abba.py

## Tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Quarter-scale pass over every paper table/figure (~2 min).
bench-smoke:
	REPRO_SCALE=fast $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

## Hot-path kernel regression gate: measured speedup ratios must stay
## within 1.3x of the committed benchmarks/BENCH_kernels.json baseline.
## Re-baseline after an intentional perf change with:
##   python benchmarks/check_regression.py --update
bench-kernels:
	$(PYTHON) benchmarks/check_regression.py

## One tiny workload on every registered execution backend; each result
## is validated against the unified TrainResult schema and must learn.
backend-matrix:
	$(PYTHON) -m repro.exec --iters 40 --workers 2

## Loopback smoke for the channel layer: every frame kind and payload
## type round-tripped over a real OS pipe.
comm-smoke:
	$(PYTHON) -m repro.comm

## Parallel serve-loop smoke: the per-shard executor lanes run under the
## dynamic lock-order recorder + race instrumentation; any lock-order
## inversion, lock cycle, or guarded-state access outside the owning
## lock exits non-zero.
parallel-smoke:
	$(PYTHON) -m repro.comm parallel-smoke

## Run-telemetry pipeline smoke: a traced 2-worker *process* run writes a
## run dir (manifest + metrics + merged multi-process trace), the report
## renders, the health gate passes on sane SLOs — and must FAIL on an
## impossible staleness SLO (the gate actually gates).
run-report-smoke:
	rm -rf .run-smoke
	$(PYTHON) -m repro.obs run-smoke --runs-dir .run-smoke --run-id ci --workers 2
	$(PYTHON) -m repro.obs report .run-smoke/ci
	$(PYTHON) -m repro.obs check .run-smoke/ci --max-staleness-p99 64 --min-samples-per-sec 1
	! $(PYTHON) -m repro.obs check .run-smoke/ci --max-staleness-p99 -1
	rm -rf .run-smoke

## Sharded parameter-server smoke: a 2-shard × 2-worker run on the
## threaded AND process backends, each writing a run dir with per-shard
## trace lanes and passing the health gate.  The process leg proves
## shard-routed frames cross a real OS pipe; the impossible-SLO check
## proves the gate still gates on sharded manifests.
shard-smoke:
	rm -rf .shard-smoke
	$(PYTHON) -m repro.obs run-smoke --runs-dir .shard-smoke --run-id threaded --backend threaded --shards 2 --workers 2
	$(PYTHON) -m repro.obs run-smoke --runs-dir .shard-smoke --run-id process --backend process --shards 2 --workers 2
	$(PYTHON) -m repro.obs check .shard-smoke/threaded --max-staleness-p99 64 --min-samples-per-sec 1
	$(PYTHON) -m repro.obs check .shard-smoke/process --max-staleness-p99 64 --min-samples-per-sec 1
	! $(PYTHON) -m repro.obs check .shard-smoke/process --max-staleness-p99 -1
	rm -rf .shard-smoke

## Socket-backend smoke: a 2-shard × 2-worker elastic run over real TCP
## loopback (forked workers connect + register through the membership
## handshake) writes a run dir and passes the health gate; then
## checkpoint → restore → continue must reproduce the uninterrupted
## run's loss curve bitwise (`python -m repro.ps smoke` exits non-zero
## on any float of divergence).
socket-smoke:
	rm -rf .socket-smoke
	$(PYTHON) -m repro.obs run-smoke --runs-dir .socket-smoke --run-id socket --backend socket --shards 2 --workers 2
	$(PYTHON) -m repro.obs check .socket-smoke/socket --max-staleness-p99 64 --min-samples-per-sec 1
	! $(PYTHON) -m repro.obs check .socket-smoke/socket --max-staleness-p99 -1
	$(PYTHON) -m repro.ps smoke --checkpoint .socket-smoke/smoke.ckpt
	rm -rf .socket-smoke

## Shard-contention gate: lock-wait p99 must stay non-increasing across
## the 1/2/4/8-shard sweep and throughput ratios must stay within
## tolerance of benchmarks/BENCH_shards.json.  Re-baseline after an
## intentional change with:
##   python benchmarks/bench_shard_contention.py --update
bench-shards:
	$(PYTHON) benchmarks/bench_shard_contention.py

## Traced 2-worker threaded + simulated runs, then validate the export
## (repro.obs convert exits non-zero on any schema violation).
trace-smoke:
	$(PYTHON) -m repro.obs smoke --jsonl .trace-smoke.jsonl --workers 2
	$(PYTHON) -m repro.obs convert .trace-smoke.jsonl .trace-smoke.json
	$(PYTHON) -m repro.obs summary .trace-smoke.jsonl
	rm -f .trace-smoke.jsonl .trace-smoke.json
