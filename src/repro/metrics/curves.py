"""Learning-curve containers (loss/accuracy vs iteration or virtual time)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Curve", "CurveSet"]


@dataclass
class Curve:
    """A named (x, y) series, e.g. training loss vs server timestamp."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        if self.xs and x < self.xs[-1]:
            raise ValueError(f"x values must be nondecreasing (got {x} after {self.xs[-1]})")
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)

    @property
    def final(self) -> float:
        if not self.ys:
            raise ValueError(f"curve {self.name!r} is empty")
        return self.ys[-1]

    def best(self, mode: str = "max") -> float:
        if not self.ys:
            raise ValueError(f"curve {self.name!r} is empty")
        return max(self.ys) if mode == "max" else min(self.ys)

    def y_at(self, x: float) -> float:
        """Linear interpolation of y at position x."""
        return float(np.interp(x, self.xs, self.ys))

    def x_reaching(self, target: float, mode: str = "below") -> float | None:
        """First x where y crosses ``target`` (``below`` for loss targets)."""
        for x, y in zip(self.xs, self.ys):
            if (mode == "below" and y <= target) or (mode == "above" and y >= target):
                return x
        return None

    def resample(self, xs: np.ndarray) -> np.ndarray:
        return np.interp(xs, self.xs, self.ys)

    def to_rows(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.ys))


@dataclass
class CurveSet:
    """Curves from one training run (loss/accuracy vs steps and time)."""

    loss_vs_step: Curve = field(default_factory=lambda: Curve("loss_vs_step"))
    loss_vs_time: Curve = field(default_factory=lambda: Curve("loss_vs_time"))
    acc_vs_step: Curve = field(default_factory=lambda: Curve("acc_vs_step"))
    acc_vs_epoch: Curve = field(default_factory=lambda: Curve("acc_vs_epoch"))
