"""RNG001 — no module-level ``np.random.*`` draws in library code.

Asynchronous runs are only reproducible when every source of randomness is
an explicitly seeded, explicitly *passed* ``np.random.Generator``.  Calls
through the legacy module-level singleton (``np.random.rand``,
``np.random.seed``, …) share hidden global state across workers and make
HOGWILD interleavings unreplayable.  Constructing generators
(``np.random.default_rng``) is allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..linter import LintConfig, ModuleInfo, Rule, numpy_aliases

__all__ = ["ModuleLevelRNGRule"]

#: attribute accesses on np.random that do not draw from the global RNG
_ALLOWED = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "default_rng",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "RandomState",  # constructing a private legacy stream, not the singleton
}


class ModuleLevelRNGRule(Rule):
    id = "RNG001"
    summary = "no np.random.* global-RNG use; pass a np.random.Generator"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterator[Finding]:
        aliases = numpy_aliases(module.tree)
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            # match <np-alias>.random.<name>
            inner = node.value
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr == "random"
                and isinstance(inner.value, ast.Name)
                and inner.value.id in aliases
                and node.attr not in _ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"np.random.{node.attr} uses the global RNG singleton; "
                    "accept and use a seeded np.random.Generator instead",
                )
