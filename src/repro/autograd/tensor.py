"""Reverse-mode automatic differentiation over NumPy arrays.

This is the computational substrate for the reproduction: the paper trains
deep networks with PyTorch; offline we provide an equivalent tape-based
autograd engine.  A :class:`Tensor` wraps an ``np.ndarray`` and records the
operations applied to it; :meth:`Tensor.backward` walks the tape in reverse
topological order accumulating gradients.

Design notes (following the HPC-Python guides):

* every op is vectorised — there are no per-element Python loops;
* gradients are accumulated **in place** (``+=``) into preallocated buffers;
* broadcasting is supported through :func:`_unbroadcast`, which sums a
  gradient back down to the shape of the input it flowed from.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables tape recording (for eval loops)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: "Tensor | np.ndarray | float | int | list", dtype=np.float64) -> np.ndarray:
    if isinstance(data, Tensor):
        return data.data
    arr = np.asarray(data, dtype=dtype)
    return arr


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    __array_priority__ = 1000  # make ndarray defer to Tensor in mixed ops

    def __init__(
        self,
        data: "np.ndarray | float | int | list | Tensor",
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy: the incoming buffer may be a read-only broadcast view or
            # shared with another consumer of the same upstream gradient.
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    def backward(self, grad: "np.ndarray | Tensor | None" = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            grad = grad.data
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Reverse topological order over the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate grads eagerly unless they are leaves.
                if node._parents and node is not self:
                    pass  # keep grads: some consumers (grad checks) inspect them

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-g, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data * other.data), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix / reduction ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                else:
                    ga = g @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a, g) if b.ndim == 2 else a[..., None] * g
                else:
                    gb = np.swapaxes(a, -1, -2) @ g
                other._accumulate(_unbroadcast(gb, other.shape))

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape))
            else:
                if not keepdims:
                    axes = (axis,) if isinstance(axis, int) else axis
                    g = np.expand_dims(g, tuple(a % self.ndim for a in axes))
                self._accumulate(np.broadcast_to(g, self.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            n = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == out_data).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(mask * g)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                gexp = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(mask * gexp)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data * out_data))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(in_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inv = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inv))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, g)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``pad``."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, width)
        sl = tuple([slice(None)] * (self.ndim - 2) + [slice(pad, -pad), slice(pad, -pad)])

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g[sl])

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t.data for t in tensors]
        out_data = np.concatenate(arrays, axis=axis)
        sizes = [a.shape[axis] for a in arrays]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[axis] = slice(int(start), int(stop))
                    t._accumulate(g[tuple(sl)])

        out = Tensor(out_data)
        if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
            out.requires_grad = True
            out._parents = tuple(tensors)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Composite helpers used by the NN layer library
    # ------------------------------------------------------------------
    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        m = self.max(axis=axis, keepdims=True).detach()
        shifted = self - m
        lse = shifted.exp().sum(axis=axis, keepdims=True).log() + m
        if not keepdims:
            lse = lse.reshape(tuple(s for i, s in enumerate(lse.shape) if i != axis % self.ndim))
        return lse

    def softmax(self, axis: int = -1) -> "Tensor":
        m = self.max(axis=axis, keepdims=True).detach()
        e = (self - m).exp()
        return e / e.sum(axis=axis, keepdims=True)


def _tensor_factory(fn):
    def wrapper(*args, requires_grad: bool = False, **kwargs) -> Tensor:
        return Tensor(fn(*args, **kwargs), requires_grad=requires_grad)

    wrapper.__name__ = fn.__name__
    return wrapper


zeros = _tensor_factory(np.zeros)
ones = _tensor_factory(np.ones)
