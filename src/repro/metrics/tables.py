"""Markdown/aligned-text table rendering for the benchmark reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_markdown_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    lines = []
    if title:
        lines.append(f"**{title}**\n")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
