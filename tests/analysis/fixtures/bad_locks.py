"""Deliberately broken lock discipline for the static-checker tests.

Never imported — parsed only.  Expected findings:

* ``put``        — 2 × LCK001 (``state`` and ``_hits`` touched unlocked)
* ``_orphan``    — 1 × LCK002 (private, touches state, never called)
* ``locked_get`` — 1 × LCK003 (calls a lock-taker while holding the lock)
"""

import threading


class BadServer:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = {}
        self._hits = 0

    def put(self, key, value):
        self.state[key] = value
        self._hits += 1

    def get_unsafe(self, key):
        with self._lock:
            return self.state.get(key)

    def locked_get(self, key):
        with self._lock:
            return self.get_unsafe(key)

    def _orphan(self):
        return self._hits
