"""§1/§6 — synchronous barrier vs asynchronous training."""

from repro.harness.experiments import ablation_sync_async
from repro.harness.config import is_fast_mode


def test_ablation_sync_async(run_experiment):
    report = run_experiment(ablation_sync_async, "ablation_sync_async")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    rows = {(r[0], r[1]): r for r in report.rows}
    straggler = "stragglers (×2 spread)"
    thr = lambda mode: float(rows[(straggler, mode)][3])
    # §1 claim: with stragglers, async beats the barrier on throughput.
    assert thr("ASGD") > thr("SSGD")
    assert thr("DGS") > thr("sync-SAM (§6)")
    # §6 claim: synchronous SAMomentum still trains well.
    acc = lambda mode: float(rows[(straggler, mode)][2].rstrip("%"))
    assert acc("sync-SAM (§6)") > acc("SSGD") - 3.0
