"""Figure 5 — loss vs wall-clock, 8 workers, 1 Gbps (paper speedup: 5.7×)."""

from repro.harness.experiments import fig5_low_bandwidth
from repro.harness.config import is_fast_mode


def test_fig5_low_bandwidth(run_experiment):
    report = run_experiment(fig5_low_bandwidth, "fig5_low_bandwidth")
    if is_fast_mode():
        return  # smoke pass: shape assertions hold at full scale only
    makespans = {row[0]: float(row[1]) for row in report.rows}
    speedup = makespans["ASGD"] / makespans["DGS"]
    # Shape: DGS several times faster to finish the same iteration budget
    # (paper: 5.7×; the exact factor depends on the compute:comm ratio).
    assert speedup > 2.5
