"""Synthetic datasets and sharded loading (CIFAR/ImageNet substitutes)."""

from .augment import Augmenter, random_flip, random_shift
from .cifar10 import CIFAR10_LABELS, load_cifar10, read_cifar10_batch
from .loader import BatchIterator, DataLoader
from .synthetic import (
    Dataset,
    make_blobs,
    make_image_classes,
    make_spirals,
    synthetic_cifar10,
    synthetic_imagenet,
)

__all__ = [
    "Dataset",
    "make_blobs",
    "make_spirals",
    "make_image_classes",
    "synthetic_cifar10",
    "synthetic_imagenet",
    "BatchIterator",
    "DataLoader",
    "Augmenter",
    "random_flip",
    "random_shift",
    "load_cifar10",
    "read_cifar10_batch",
    "CIFAR10_LABELS",
]
