"""Conv/pool layer modules (the op-level math is tested in tests/autograd)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import AvgPool2d, Conv2d, GlobalAvgPool2d, MaxPool2d


class TestConv2dLayer:
    def test_output_shape_same_padding(self, rng):
        conv = Conv2d(3, 8, 3, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_stride2(self, rng):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_bias_flag(self, rng):
        assert Conv2d(2, 2, 3, bias=False, rng=rng).bias is None
        assert Conv2d(2, 2, 3, bias=True, rng=rng).bias is not None

    def test_param_count(self, rng):
        conv = Conv2d(3, 8, 3, rng=rng)
        assert conv.num_parameters() == 8 * 3 * 9 + 8

    def test_repr(self, rng):
        assert "Conv2d(3, 8" in repr(Conv2d(3, 8, 3, rng=rng))


class TestPoolLayers:
    def test_max_pool_shape(self, rng):
        out = MaxPool2d(2)(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 3, 4, 4)

    def test_avg_pool_custom_stride(self, rng):
        out = AvgPool2d(2, stride=1)(Tensor(rng.normal(size=(1, 1, 4, 4))))
        assert out.shape == (1, 1, 3, 3)

    def test_global_avg_pool(self, rng):
        out = GlobalAvgPool2d()(Tensor(rng.normal(size=(2, 5, 4, 4))))
        assert out.shape == (2, 5)
