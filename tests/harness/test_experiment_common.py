"""Shared experiment helpers: batch scaling and momentum scaling rules."""

import pytest

from repro.harness import get_workload
from repro.harness.experiments.common import (
    METHOD_LABELS,
    resolve_fast,
    scaled_batch,
    scaling_hyper,
)


class TestScaledBatch:
    def test_halves_per_doubling(self):
        assert scaled_batch(1) == 128
        assert scaled_batch(4) == 32
        assert scaled_batch(8) == 16
        assert scaled_batch(16) == 8

    def test_floor(self):
        assert scaled_batch(32) == 8
        assert scaled_batch(256) == 8

    def test_custom_base(self):
        assert scaled_batch(4, base=256) == 64


class TestScalingHyper:
    def test_small_scale_unchanged(self):
        wl = get_workload("cifar10")
        assert scaling_hyper(wl, 4) == wl.hyper
        assert scaling_hyper(wl, 8) == wl.hyper

    def test_momentum_reduced_at_16(self):
        wl = get_workload("cifar10")
        h = scaling_hyper(wl, 16)
        assert h.momentum == pytest.approx(0.3)
        assert h.lr == wl.hyper.lr

    def test_lr_halved_at_32(self):
        wl = get_workload("cifar10")
        h = scaling_hyper(wl, 32)
        assert h.momentum == pytest.approx(0.3)
        assert h.lr == pytest.approx(wl.hyper.lr * 0.5)


class TestMisc:
    def test_labels_cover_paper_methods(self):
        assert set(METHOD_LABELS) == {"msgd", "asgd", "gd_async", "dgc_async", "dgs"}

    def test_resolve_fast_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        assert resolve_fast(None) is True
        assert resolve_fast(False) is False
        monkeypatch.delenv("REPRO_SCALE")
        assert resolve_fast(None) is False
