"""Per-layer vector helpers.

All distributed state in this reproduction — gradients, momenta, residuals,
the server's M and v_k — is a mapping ``layer name -> ndarray`` aligned with
``Module.named_parameters()``.  Sparsification is applied *per layer*
(Algorithms 1–3 iterate ``for j = 0..J``), so the layer structure must be
preserved end-to-end.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..nn.module import Module

__all__ = [
    "LayerMap",
    "layer_shapes",
    "zeros_like_layers",
    "clone_layers",
    "gradients_of",
    "parameters_of",
    "assign_parameters",
    "add_payload",
    "copy_payload",
    "scale_payload",
    "add_scaled",
    "total_size",
    "total_nbytes",
    "flatten_layers",
]

LayerMap = "OrderedDict[str, np.ndarray]"


def layer_shapes(model: Module) -> "OrderedDict[str, tuple[int, ...]]":
    return OrderedDict((name, p.shape) for name, p in model.named_parameters())


def zeros_like_layers(shapes: Mapping[str, tuple[int, ...]]) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((name, np.zeros(shape)) for name, shape in shapes.items())


def clone_layers(layers: Mapping[str, np.ndarray]) -> "OrderedDict[str, np.ndarray]":
    return OrderedDict((name, arr.copy()) for name, arr in layers.items())


def gradients_of(model: Module) -> "OrderedDict[str, np.ndarray]":
    """Collect gradients after backward(); missing grads become zeros."""
    out: OrderedDict[str, np.ndarray] = OrderedDict()
    for name, p in model.named_parameters():
        out[name] = p.grad if p.grad is not None else np.zeros_like(p.data)
    return out


def parameters_of(model: Module) -> "OrderedDict[str, np.ndarray]":
    """Copies of the model's parameter arrays."""
    return OrderedDict((name, p.data.copy()) for name, p in model.named_parameters())


def assign_parameters(model: Module, values: Mapping[str, np.ndarray]) -> None:
    """Copy ``values`` into the model's parameters in place."""
    for name, p in model.named_parameters():
        np.copyto(p.data, values[name])  # repro: noqa TEN001 — blessed mutation site


def add_payload(params: Mapping[str, object], payload: Mapping[str, object], scale: float = 1.0) -> None:
    """Accumulate a per-layer update into parameters, in place.

    ``params`` maps layer name → Parameter (anything with ``.data``);
    ``payload`` layers may be dense ``np.ndarray`` or any wire codec with
    ``add_into``/``to_dense``.  This (with :func:`copy_payload` and
    :func:`assign_parameters`) is the blessed mutation path for parameter
    data outside ``autograd/``/``optim/`` — see lint rule TEN001.
    """
    for name, layer in payload.items():
        dest = params[name].data
        if isinstance(layer, np.ndarray):
            if scale == 1.0:
                dest += layer
            else:
                dest += scale * layer
        elif scale == 1.0:
            layer.add_into(dest)
        else:
            dest += scale * layer.to_dense()


def copy_payload(params: Mapping[str, object], values: Mapping[str, np.ndarray]) -> None:
    """Overwrite parameters with ``values`` layerwise (dense replacement)."""
    for name, arr in values.items():
        np.copyto(params[name].data, arr)  # repro: noqa TEN001 — blessed mutation site


def scale_payload(payload: Mapping[str, object], factor: float) -> "OrderedDict[str, object]":
    """Scale a per-layer update by ``factor`` without mutating the original.

    Used by the server's staleness damping (gap-aware 1/(τ+1) scaling).
    Every codec type is scaled in its compressed form — quantised payloads
    fold the factor into their scalar scale/norm field — so damping never
    materialises a dense tensor or changes a payload's wire size.
    """
    from ..compression.coding import (
        BitmapTensor,
        DenseTensor,
        QuantizedSparseTensor,
        SparseTensor,
    )
    from ..compression.qsgd import QSGDTensor
    from ..compression.terngrad import TernaryTensor

    out: "OrderedDict[str, object]" = OrderedDict()
    for name, layer in payload.items():
        if isinstance(layer, SparseTensor):
            out[name] = SparseTensor(layer.indices, layer.values * factor, layer.shape)
        elif isinstance(layer, BitmapTensor):
            out[name] = BitmapTensor(layer.bitmap, layer.values * factor, layer.shape)
        elif isinstance(layer, QuantizedSparseTensor):
            out[name] = QuantizedSparseTensor(
                layer.indices, layer.signs, layer.scale * factor, layer.shape
            )
        elif isinstance(layer, TernaryTensor):
            out[name] = TernaryTensor(layer.signs, layer.scale * factor, layer.shape)
        elif isinstance(layer, QSGDTensor):
            out[name] = QSGDTensor(layer.levels, layer.norm * factor, layer.s, layer.shape)
        elif isinstance(layer, DenseTensor):
            out[name] = DenseTensor(layer.data * factor)
        elif isinstance(layer, np.ndarray):
            out[name] = layer * factor
        else:  # unknown payload type: dense is the only safe route left
            out[name] = layer.to_dense() * factor
    return out


def add_scaled(
    dest: Mapping[str, np.ndarray], src: Mapping[str, np.ndarray], scale: float = 1.0
) -> None:
    """``dest += scale * src`` layerwise, in place."""
    for name, arr in dest.items():
        arr += scale * src[name]


def total_size(layers: Mapping[str, np.ndarray]) -> int:
    return sum(arr.size for arr in layers.values())


def total_nbytes(layers: Mapping[str, np.ndarray]) -> int:
    return sum(arr.nbytes for arr in layers.values())


def flatten_layers(
    layers: Mapping[str, np.ndarray], dtype: "np.dtype | type | str" = np.float32
) -> np.ndarray:
    """Concatenate all layers into one flat vector (for norms/metrics).

    A :class:`~repro.core.arena.LayerArena` already *is* this vector —
    ``arena.flat`` returns it zero-copy, so prefer that on the hot path.
    ``dtype`` only determines the result for an **empty** mapping (the
    historical code returned float64 ``np.empty(0)`` while every non-empty
    result followed the layers' dtype — an inconsistency callers could
    trip over when reducing over zero layers).
    """
    from .arena import LayerArena  # local: layerops is imported by arena's peers

    if isinstance(layers, LayerArena):
        return layers.flat
    if not layers:
        return np.empty(0, dtype=dtype)
    return np.concatenate([arr.reshape(-1) for arr in layers.values()])
