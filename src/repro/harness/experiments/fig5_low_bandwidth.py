"""Figure 5 — training loss vs wall-clock time, 8 workers, 1 Gbps.

The paper trains ResNet-18 on CIFAR-10 over 1 Gbps Ethernet with secondary
compression at 99% and reports DGS finishing in 88 minutes vs 506 minutes
for ASGD — a 5.7× wall-clock speedup.  Here wall-clock is the simulator's
virtual time with the paper-matched cluster preset (46 MB dense wire size,
0.2 s compute per iteration, half-duplex 1 Gbps server link).
"""

from __future__ import annotations

from ...metrics.plots import ascii_plot
from ...metrics.svg import render_svg
from ..config import get_workload
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast

__all__ = [
    "run",
    "r_curve",
]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    num_workers = 4 if fast else 8
    wl = get_workload("cifar10")
    seed = seeds[0]

    asgd = run_distributed("asgd", wl, num_workers, gbps=1.0, fast=fast, seed=seed)
    # Secondary compression explicitly enabled, ratio 99% (paper §5.5).
    dgs = run_distributed(
        "dgs", wl, num_workers, gbps=1.0, secondary_compression=True, fast=fast, seed=seed
    )

    report = ExperimentReport(
        experiment_id="Figure 5",
        title=f"Time vs training loss on {num_workers} workers with 1 Gbps Ethernet",
        headers=("Method", "Makespan (min)", "Final loss", "Time to loss≤1.0 (min)", "Overall compression"),
        paper_rows=[
            ("ASGD", "506 (total training)", "-", "-", "1×"),
            ("DGS", "88 (total training)", "-", "-", "~50×"),
        ],
    )
    target = 1.0
    rows = []
    for label, r in (("ASGD", asgd), ("DGS", dgs)):
        t_target = r.loss_vs_time.x_reaching(target, mode="below")
        rows.append(
            (
                label,
                f"{r.makespan_s / 60:.1f}",
                f"{r.final_loss:.3f}",
                "n/a" if t_target is None else f"{t_target / 60:.1f}",
                f"{r.compression_ratio:.0f}x",
            )
        )
        report.add_row(*rows[-1])
    speedup = asgd.makespan_s / dgs.makespan_s
    report.add_note(f"DGS wall-clock speedup over ASGD at equal iterations: {speedup:.1f}× (paper: 5.7×).")
    report.figures.append(
        ascii_plot(
            {"ASGD": r_curve(asgd), "DGS": r_curve(dgs)},
            title=f"Figure 5: training loss vs virtual wall-clock time (1 Gbps, {num_workers} workers)",
            xlabel="time (s)",
            ylabel="training loss (EMA)",
        )
    )
    report.svgs["loss_vs_time"] = render_svg(
        {"ASGD": asgd.loss_vs_time, "DGS": dgs.loss_vs_time},
        title=f"Figure 5: loss vs wall-clock (1 Gbps, {num_workers} workers)",
        xlabel="virtual seconds", ylabel="training loss (EMA)", logy=True,
    )
    return report


def r_curve(result):
    return result.loss_vs_time
