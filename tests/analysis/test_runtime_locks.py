"""Dynamic lock-order recorder and generalized instrumentation tests."""

from __future__ import annotations

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.analysis.concurrency import LockRegistry, RegisteredLock, guarded_attrs_of
from repro.analysis.linter import load_module
from repro.analysis.locks import find_lock_classes
from repro.analysis.race import RaceMonitor, instrument_object, instrument_server

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def load_fixture(name: str):
    spec = importlib.util.spec_from_file_location(name[:-3], FIXTURES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLockRegistry:
    def test_register_is_idempotent(self):
        registry = LockRegistry()
        assert registry.register("ps") is registry.register("ps")
        assert registry.names == ("ps",)

    def test_registered_lock_is_with_able_and_checked(self):
        registry = LockRegistry()
        lock = registry.register("ps")
        assert isinstance(lock, RegisteredLock)
        with lock:
            assert lock.held_by_current_thread()
        assert not lock.locked()
        assert lock.acquisitions == 1

    def test_nesting_records_an_order_edge(self):
        registry = LockRegistry()
        a, b = registry.register("a"), registry.register("b")
        with a:
            with b:
                pass
        (edge,) = registry.order_edges()
        assert (edge.outer, edge.inner) == ("a", "b")
        assert registry.inversions() == []

    def test_both_orders_is_an_inversion_even_without_deadlock(self):
        # GoodLock property: sequential ABBA never deadlocks, but the
        # recorder still reports the inversion
        registry = LockRegistry()
        a, b = registry.register("a"), registry.register("b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (inv,) = registry.inversions()
        assert {inv.first.outer, inv.first.inner} == {"a", "b"}
        assert registry.cycles() == [["a", "b"]]
        assert "inversion" in registry.report()

    def test_three_lock_ring_is_a_cycle_but_not_a_pairwise_inversion(self):
        registry = LockRegistry()
        a, b, c = (registry.register(n) for n in "abc")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        assert registry.inversions() == []
        assert registry.cycles() == [["a", "b", "c"]]

    def test_per_thread_stacks_do_not_cross_talk(self):
        registry = LockRegistry()
        a, b = registry.register("a"), registry.register("b")
        barrier = threading.Barrier(2)

        def hold(lock):
            with lock:
                barrier.wait()
                barrier.wait()

        t1 = threading.Thread(target=hold, args=(a,))
        t2 = threading.Thread(target=hold, args=(b,))
        t1.start(), t2.start()
        t1.join(), t2.join()
        # concurrent but non-nested holds are not an ordering edge
        assert registry.order_edges() == []

    def test_attach_swaps_the_lock_in_place(self):
        class Owner:
            def __init__(self):
                self._lock = threading.Lock()

        owner = Owner()
        registry = LockRegistry()
        lock = registry.attach(owner, "owner")
        assert owner._lock is lock

    def test_attach_requires_a_lock_owning_object(self):
        registry = LockRegistry()
        with pytest.raises(AttributeError, match="not a lock-owning object"):
            registry.attach(object(), "nope")


class TestAbbaFixtureDynamic:
    def test_drive_produces_an_inversion(self):
        abba = load_fixture("abba.py")
        registry = LockRegistry()
        abba.drive(registry)
        (inv,) = registry.inversions()
        assert {inv.first.outer, inv.first.inner} == {"auditor", "ledger"}
        assert registry.cycles() == [["auditor", "ledger"]]

    def test_abba_smoke_cli_detects_both_ways(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["abba-smoke", str(FIXTURES / "abba.py")]) == 0
        out = capsys.readouterr().out
        assert "1 LCK004 finding(s)" in out
        assert "1 lock-order inversion(s)" in out
        assert "OK — deadlock potential detected both ways" in out


class TestInstrumentObject:
    def make_server(self):
        import numpy as np

        from repro.ps.server import ParameterServer

        theta0 = {"w": np.zeros(4, dtype=np.float32)}
        return ParameterServer(theta0, num_workers=1)

    def test_guarded_attrs_declaration_is_used(self):
        server = self.make_server()
        monitor = instrument_object(server)
        # unguarded touch while a second thread is alive → violation
        release = threading.Event()
        t = threading.Thread(target=release.wait)
        t.start()
        try:
            server.staleness_meter.update(1.0)
        finally:
            release.set()
            t.join()
        assert monitor.violations
        assert monitor.violations[0].attr == "staleness_meter"

    def test_registry_integration_enrolls_the_swapped_lock(self):
        server = self.make_server()
        registry = LockRegistry()
        monitor = instrument_object(server, registry=registry, name="ps")
        assert isinstance(monitor, RaceMonitor)
        assert registry.names == ("ps",)
        assert isinstance(server._lock, RegisteredLock)

    def test_rejects_lockless_objects(self):
        with pytest.raises(AttributeError, match="not a lock-owning object"):
            instrument_object(object())

    def test_instrument_server_wrapper_still_works(self):
        server = self.make_server()
        monitor = instrument_server(server)
        with server._lock:
            server.staleness_meter.update(1.0)  # guarded: no violation
        assert monitor.violations == []


class TestRegistrationHooks:
    def make_server(self):
        import numpy as np

        from repro.ps.server import ParameterServer

        theta0 = {"w": np.zeros(4, dtype=np.float32)}
        return ParameterServer(theta0, num_workers=1)

    def test_parameter_server_register_lock(self):
        server = self.make_server()
        registry = LockRegistry()
        server.register_lock(registry)
        assert registry.names == ("ps",)
        assert isinstance(server._lock, RegisteredLock)

    def test_server_service_register_locks(self):
        from repro.comm.channel import ServerService

        service = ServerService(self.make_server())
        registry = LockRegistry()
        service.register_locks(registry)
        assert registry.names == ("ps",)


class TestGuardedAttrsConsistency:
    def test_declaration_matches_static_inference_for_parameter_server(self):
        # the satellite contract: __guarded_attrs__ and what the static
        # checker infers as lock-guarded state must agree
        from repro.analysis.locks import _ClassAnalysis
        from repro.ps.server import ParameterServer

        declared = set(guarded_attrs_of(ParameterServer))
        module = load_module(SRC / "ps" / "server.py", root=SRC)
        ((cls, lock_attr),) = [
            (c, a) for c, a in find_lock_classes(module.tree) if c.name == "ParameterServer"
        ]
        inferred = _ClassAnalysis(cls, lock_attr).guarded
        assert declared <= inferred, (
            "declared guarded attrs the checker does not see as guarded: "
            f"{sorted(declared - inferred)}"
        )

    def test_declaration_is_inherited_by_test_doubles(self):
        from repro.ps.server import ParameterServer

        class Double(ParameterServer):
            pass

        assert guarded_attrs_of(Double) == ("tracker", "staleness_meter", "worker_staleness")

    def test_undeclared_classes_return_none(self):
        assert guarded_attrs_of(object) is None

    def test_legacy_alias_matches_declaration(self):
        from repro.analysis.race import SERVER_GUARDED_ATTRS
        from repro.ps.server import ParameterServer

        assert tuple(SERVER_GUARDED_ATTRS) == guarded_attrs_of(ParameterServer)
