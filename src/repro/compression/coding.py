"""Sparse/dense wire encoding with byte-accurate size accounting.

The paper's ``encode()`` packs nonzero gradients into coordinate (COO)
format; ``decode()`` unpacks them.  Wire sizes follow the deployment the
paper measures: 32-bit float values and 32-bit flat indices, so a sparse
layer costs ``nnz * 8`` bytes against ``n * 4`` dense — sparsification wins
whenever density < 50%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .workspace import KernelWorkspace

__all__ = [
    "VALUE_BYTES",
    "VALUE_DTYPE",
    "INDEX_BYTES",
    "HEADER_BYTES",
    "SparseTensor",
    "DenseTensor",
    "BitmapTensor",
    "QuantizedSparseTensor",
    "encode_sparse",
    "encode_mask",
    "encode_indices",
    "encode_best",
    "dense_nbytes",
    "sparse_nbytes",
    "bitmap_nbytes",
]

VALUE_BYTES = 4  # float32 on the wire
VALUE_DTYPE = np.dtype(np.float32)  # the dtype those 4 bytes hold
INDEX_BYTES = 4  # uint32 flat index
HEADER_BYTES = 16  # layer id, nnz, shape descriptor, dtype tag


@dataclass(frozen=True)
class SparseTensor:
    """COO encoding of one layer's update: flat indices + values + shape.

    Values produced by the ``encode_*`` functions are float32 — the wire
    dtype the ``VALUE_BYTES = 4`` accounting (and the byte codec) assume —
    so what a worker decodes is exactly what the byte counts claim.
    Hand-constructed instances may carry any float dtype.
    """

    indices: np.ndarray  # (nnz,) intp flat indices, strictly increasing
    values: np.ndarray  # (nnz,) float32 from the encoders (VALUE_DTYPE)
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.indices.ndim != 1 or self.values.ndim != 1:
            raise ValueError("indices and values must be 1-D")
        if len(self.indices) != len(self.values):
            raise ValueError("indices/values length mismatch")

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def density(self) -> float:
        n = int(np.prod(self.shape))
        return self.nnz / n if n else 0.0

    def nbytes(self) -> int:
        """Bytes on the wire for this layer (COO payload + header)."""
        return HEADER_BYTES + self.nnz * (VALUE_BYTES + INDEX_BYTES)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(int(np.prod(self.shape)), dtype=np.float64)
        out[self.indices] = self.values
        return out.reshape(self.shape)

    def add_into(self, dest: np.ndarray) -> None:
        """Accumulate this sparse update into ``dest`` in place."""
        if dest.shape != self.shape:
            raise ValueError(f"shape mismatch: {dest.shape} vs {self.shape}")
        dest.reshape(-1)[self.indices] += self.values


@dataclass(frozen=True)
class DenseTensor:
    """Dense fallback with the same payload interface as the sparse codecs.

    Returned by :func:`encode_best` when a layer is too dense for either
    sparse format — e.g. a model difference after very long staleness."""

    data: np.ndarray

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def density(self) -> float:
        return self.nnz / self.data.size if self.data.size else 0.0

    def nbytes(self) -> int:
        return dense_nbytes(self.data.size)

    def to_dense(self) -> np.ndarray:
        return self.data.copy()

    def add_into(self, dest: np.ndarray) -> None:
        if dest.shape != self.data.shape:
            raise ValueError(f"shape mismatch: {dest.shape} vs {self.data.shape}")
        dest += self.data


@dataclass(frozen=True)
class BitmapTensor:
    """Bitmap-coded sparse layer: one presence bit per element + values.

    COO pays 8 bytes per nonzero; a bitmap pays n/8 bytes up front and 4
    per nonzero, so it wins above ~3% density.  The server's model
    difference ``G_k`` *densifies* with staleness (it accumulates other
    workers' updates), which is exactly the regime where this matters —
    :func:`encode_best` picks the cheaper of the two per layer.
    """

    bitmap: np.ndarray  # packed uint8, ceil(n/8) bytes
    values: np.ndarray  # (nnz,) float64, in flat index order
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        n = int(np.prod(self.shape))
        if len(self.bitmap) != (n + 7) // 8:
            raise ValueError("bitmap length does not match shape")

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def density(self) -> float:
        n = int(np.prod(self.shape))
        return self.nnz / n if n else 0.0

    def nbytes(self) -> int:
        return bitmap_nbytes(int(np.prod(self.shape)), self.nnz)

    def _flat_indices(self) -> np.ndarray:
        bits = np.unpackbits(self.bitmap, bitorder="little")
        return np.flatnonzero(bits[: int(np.prod(self.shape))])

    def to_dense(self) -> np.ndarray:
        out = np.zeros(int(np.prod(self.shape)), dtype=np.float64)
        out[self._flat_indices()] = self.values
        return out.reshape(self.shape)

    def add_into(self, dest: np.ndarray) -> None:
        if dest.shape != self.shape:
            raise ValueError(f"shape mismatch: {dest.shape} vs {self.shape}")
        dest.reshape(-1)[self._flat_indices()] += self.values

    @staticmethod
    def from_mask(arr: np.ndarray, mask: np.ndarray) -> "BitmapTensor":
        flat_mask = mask.reshape(-1)
        packed = np.packbits(flat_mask.astype(np.uint8), bitorder="little")
        return BitmapTensor(packed, arr.reshape(-1)[flat_mask].astype(VALUE_DTYPE), arr.shape)


@dataclass(frozen=True)
class QuantizedSparseTensor:
    """Ternary-quantised sparse layer: COO indices + 2-bit signs + one scale.

    The §6 future-work combination of DGS and TernGrad: values at the
    selected coordinates are reduced to {−1, 0, +1}·scale, shrinking the
    per-element value cost from 32 bits to 2.
    """

    indices: np.ndarray  # (nnz,) flat indices
    signs: np.ndarray  # (nnz,) int8 in {-1, 0, 1}
    scale: float
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.signs):
            raise ValueError("indices/signs length mismatch")

    @property
    def nnz(self) -> int:
        return len(self.indices)

    def nbytes(self) -> int:
        return HEADER_BYTES + VALUE_BYTES + self.nnz * INDEX_BYTES + (2 * self.nnz + 7) // 8

    def to_dense(self) -> np.ndarray:
        out = np.zeros(int(np.prod(self.shape)), dtype=np.float64)
        out[self.indices] = self.signs * self.scale
        return out.reshape(self.shape)

    def add_into(self, dest: np.ndarray) -> None:
        if dest.shape != self.shape:
            raise ValueError(f"shape mismatch: {dest.shape} vs {self.shape}")
        dest.reshape(-1)[self.indices] += self.signs * self.scale


def _gather_values(
    flat: np.ndarray, idx: np.ndarray, workspace: "KernelWorkspace | None"
) -> np.ndarray:
    """``flat[idx]`` as a fresh float32 wire-value array.

    With a workspace, the pre-cast gather lands in reusable scratch so
    only the returned float32 array is allocated.
    """
    if workspace is None or flat.dtype == VALUE_DTYPE:
        return flat[idx].astype(VALUE_DTYPE)
    staged = workspace.scratch("enc.gather", idx.size, flat.dtype)
    np.take(flat, idx, out=staged)
    return staged.astype(VALUE_DTYPE)


def encode_sparse(arr: np.ndarray, workspace: "KernelWorkspace | None" = None) -> SparseTensor:
    """COO-encode the nonzeros of ``arr`` (the paper's ``encode()``).

    Values are cast to float32 — the wire dtype the byte accounting
    assumes — at encode time.
    """
    flat = arr.reshape(-1)
    idx = np.flatnonzero(flat)
    return SparseTensor(idx, _gather_values(flat, idx, workspace), arr.shape)


def encode_mask(
    arr: np.ndarray, mask: np.ndarray, workspace: "KernelWorkspace | None" = None
) -> SparseTensor:
    """COO-encode ``arr`` at the positions selected by boolean ``mask``."""
    if mask.shape != arr.shape:
        raise ValueError("mask shape must match array shape")
    flat = arr.reshape(-1)
    idx = np.flatnonzero(mask.reshape(-1))
    return SparseTensor(idx, _gather_values(flat, idx, workspace), arr.shape)


def encode_indices(
    arr: np.ndarray,
    indices: np.ndarray,
    workspace: "KernelWorkspace | None" = None,
    assume_sorted: bool = False,
) -> SparseTensor:
    """COO-encode ``arr`` at the given flat ``indices`` (fused-select extract).

    The extract half of ``topk_select``: when a selection kernel already
    holds the chosen flat indices (e.g. straight out of ``argpartition``),
    this builds the wire tensor in O(nnz·log nnz) — no boolean mask, no
    O(n) ``flatnonzero`` scan.  Indices are sorted ascending to match
    :func:`encode_mask` output exactly; pass ``assume_sorted=True`` to
    skip the sort (the array is then used as-is, not copied).
    """
    flat = arr.reshape(-1)
    idx = np.asarray(indices)
    if not assume_sorted:
        idx = np.sort(idx)
    return SparseTensor(idx, _gather_values(flat, idx, workspace), arr.shape)


def encode_best(
    arr: np.ndarray, workspace: "KernelWorkspace | None" = None
) -> "SparseTensor | BitmapTensor | DenseTensor":
    """Encode with the cheapest of COO / bitmap / dense for this density.

    Used for the downstream model difference, whose density grows with
    staleness; the per-layer break-evens are nnz·8 (COO) vs n/8 + nnz·4
    (bitmap) vs n·4 (dense).
    """
    flat = arr.reshape(-1)
    n = flat.size
    if workspace is None:
        mask = flat != 0
    else:
        mask = np.not_equal(flat, 0, out=workspace.scratch("enc.nzmask", n, bool))
    nnz = int(mask.sum())
    coo = sparse_nbytes(nnz)
    bmp = bitmap_nbytes(n, nnz)
    dense = dense_nbytes(n)
    best = min(coo, bmp, dense)
    if best == coo:
        idx = np.flatnonzero(mask)
        return SparseTensor(idx, _gather_values(flat, idx, workspace), arr.shape)
    if best == bmp:
        return BitmapTensor.from_mask(arr, mask.reshape(arr.shape))
    return DenseTensor(arr.astype(VALUE_DTYPE))


def dense_nbytes(shape_or_size) -> int:
    """Wire bytes for a dense float32 tensor (+ header)."""
    n = int(np.prod(shape_or_size)) if not np.isscalar(shape_or_size) else int(shape_or_size)
    return HEADER_BYTES + n * VALUE_BYTES


def sparse_nbytes(nnz: int) -> int:
    """Wire bytes for a COO tensor with ``nnz`` entries (+ header)."""
    return HEADER_BYTES + nnz * (VALUE_BYTES + INDEX_BYTES)


def bitmap_nbytes(n: int, nnz: int) -> int:
    """Wire bytes for a bitmap-coded tensor: 1 bit/element + values."""
    return HEADER_BYTES + (n + 7) // 8 + nnz * VALUE_BYTES
