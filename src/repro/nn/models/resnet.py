"""MicroResNet — the ResNet-18 stand-in (see DESIGN.md §2).

Same ingredients as the ResNet-18 the paper trains — 3×3 convolutions,
BatchNorm, identity/projection shortcuts, stage-wise stride-2 downsampling,
global average pooling — scaled down so an epoch of synthetic data trains in
seconds on one CPU core.  The sparsification algorithms only see per-layer
gradient tensors, so the code paths exercised are identical.
"""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ..conv import Conv2d, GlobalAvgPool2d
from ..layers import Identity, Linear, ReLU
from ..module import Module, Sequential
from ..norm import BatchNorm2d

__all__ = ["BasicBlock", "MicroResNet", "micro_resnet18", "micro_resnet_imagenet"]


class BasicBlock(Module):
    """Two 3×3 conv-BN pairs with a residual connection (ResNet 'basic' block)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            # Projection shortcut (1×1 conv), as in ResNet option B.
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + self.shortcut(x))


class MicroResNet(Module):
    """Configurable residual network.

    ``blocks_per_stage`` and ``widths`` control depth/width;
    ``micro_resnet18`` mirrors ResNet-18's 4-stage ×2-block layout at reduced
    width for CIFAR-like inputs.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        widths: tuple[int, ...] = (8, 16, 32),
        blocks_per_stage: int = 1,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = ReLU()

        stages: list[Module] = []
        prev = widths[0]
        for i, width in enumerate(widths):
            for b in range(blocks_per_stage):
                stride = 2 if (i > 0 and b == 0) else 1
                stages.append(BasicBlock(prev, width, stride=stride, rng=rng))
                prev = width
        self.stages = Sequential(*stages)
        self.gap = GlobalAvgPool2d()
        self.fc = Linear(prev, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.stem_bn(self.stem(x)))
        x = self.stages(x)
        return self.fc(self.gap(x))


def micro_resnet18(num_classes: int = 10, in_channels: int = 3, seed: int | None = None) -> MicroResNet:
    """ResNet-18-shaped network (4 stages × 2 blocks) at micro width."""
    return MicroResNet(
        in_channels=in_channels,
        num_classes=num_classes,
        widths=(8, 16, 32, 64),
        blocks_per_stage=2,
        seed=seed,
    )


def micro_resnet_imagenet(num_classes: int = 100, in_channels: int = 3, seed: int | None = None) -> MicroResNet:
    """Wider variant for the synthetic-ImageNet experiments."""
    return MicroResNet(
        in_channels=in_channels,
        num_classes=num_classes,
        widths=(16, 32, 64),
        blocks_per_stage=2,
        seed=seed,
    )
