"""Threshold and random-k sparsifiers, sparsify/unsparsify helpers."""

import numpy as np
import pytest

from repro.compression import (
    RandomKSparsifier,
    ThresholdSparsifier,
    sparsify,
    unsparsify,
)


class TestThresholdSparsifier:
    def test_fixed_threshold(self):
        sp = ThresholdSparsifier(1.0)
        arr = np.array([0.5, -1.5, 2.0, 0.9])
        np.testing.assert_array_equal(sp.mask(arr), [False, True, True, False])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdSparsifier(-1.0)

    def test_zero_threshold_sends_nonzeros(self):
        sp = ThresholdSparsifier(0.0)
        arr = np.array([0.0, 0.1, -0.1])
        np.testing.assert_array_equal(sp.mask(arr), [False, True, True])


class TestRandomK:
    def test_count(self, rng):
        sp = RandomKSparsifier(0.1, seed=0)
        assert sp.mask(rng.normal(size=1000)).sum() == 100

    def test_unbiased_with_rescale(self, rng):
        """E[sent] == arr elementwise when rescale=True."""
        arr = rng.normal(size=200)
        sp = RandomKSparsifier(0.25, seed=0, rescale=True)
        total = np.zeros_like(arr)
        n_trials = 1000
        for _ in range(n_trials):
            _, sent, _ = sp.split(arr)
            total += sent
        # std of the mean ≈ |arr|·sqrt(3)/sqrt(n_trials); 6σ bound for the worst case
        np.testing.assert_allclose(total / n_trials, arr, atol=6 * np.abs(arr).max() * np.sqrt(3 / n_trials))

    def test_no_rescale_preserves_values(self, rng):
        arr = rng.normal(size=100)
        sp = RandomKSparsifier(0.5, seed=0, rescale=False)
        mask, sent, kept = sp.split(arr)
        np.testing.assert_allclose(sent + kept, arr)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            RandomKSparsifier(0.0)


class TestSparsifyHelpers:
    def test_partition(self, rng):
        arr = rng.normal(size=20)
        mask = rng.random(20) > 0.5
        np.testing.assert_allclose(sparsify(arr, mask) + unsparsify(arr, mask), arr)

    def test_sparsify_zeroes_unmasked(self, rng):
        arr = rng.normal(size=10)
        mask = np.zeros(10, dtype=bool)
        np.testing.assert_array_equal(sparsify(arr, mask), np.zeros(10))
