"""Multi-layer perceptron — the fast model for unit/property tests."""

from __future__ import annotations

import numpy as np

from ...autograd import Tensor
from ..layers import Linear, ReLU
from ..module import Module, Sequential

__all__ = ["MLP"]


class MLP(Module):
    """Fully connected classifier with ReLU hidden layers."""

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...] = (64, 64),
        num_classes: int = 10,
        seed: int | None = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = (in_features, *hidden)
        layers: list[Module] = []
        for a, b in zip(dims[:-1], dims[1:]):
            layers.append(Linear(a, b, rng=rng))
            layers.append(ReLU())
        layers.append(Linear(dims[-1], num_classes, rng=rng))
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)
