"""Table and ASCII-plot rendering."""

import pytest

from repro.metrics import Curve, ascii_plot, format_markdown_table, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bbbb"), [(1, 2), (333, 4)])
        lines = out.split("\n")
        assert lines[0].startswith("a")
        assert len({len(l) for l in lines if l}) == 1  # all rows equal width

    def test_title(self):
        out = format_table(("a",), [(1,)], title="T")
        assert out.startswith("T\n")

    def test_float_formatting(self):
        out = format_table(("v",), [(0.123456,)])
        assert "0.1235" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(("a", "b"), [(1, 2)])
        lines = out.split("\n")
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_title_bold(self):
        out = format_markdown_table(("a",), [(1,)], title="T")
        assert out.startswith("**T**")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(("a",), [(1, 2)])


class TestAsciiPlot:
    def _curve(self, name, ys):
        c = Curve(name)
        for i, y in enumerate(ys):
            c.add(i, y)
        return c

    def test_contains_legend_and_markers(self):
        out = ascii_plot({"loss": self._curve("loss", [3, 2, 1])}, width=30, height=8)
        assert "legend" in out
        assert "o loss" in out

    def test_multiple_series_different_markers(self):
        out = ascii_plot(
            {"a": self._curve("a", [1, 2]), "b": self._curve("b", [2, 1])},
            width=20, height=6,
        )
        assert "o a" in out and "x b" in out

    def test_empty_input(self):
        assert "(no data)" in ascii_plot({}, title="t")

    def test_tuple_series_accepted(self):
        out = ascii_plot({"s": ([0, 1, 2], [5, 6, 7])}, width=20, height=5)
        assert "s" in out

    def test_constant_series_no_crash(self):
        out = ascii_plot({"c": self._curve("c", [1, 1, 1])}, width=20, height=5)
        assert "c" in out

    def test_title_present(self):
        out = ascii_plot({"a": self._curve("a", [0, 1])}, title="My Figure")
        assert out.startswith("My Figure")
