"""Flat-buffer parameter arena — one contiguous vector per logical LayerMap.

All distributed state in this reproduction (the server's ``M`` and ``v_k``,
worker residuals/momenta, dense update payloads) is a mapping ``layer name
-> ndarray``.  The reference representation is a dict of independently
allocated arrays, which makes every whole-state operation — apply an
update, advance ``v_k``, compute a model difference — a per-layer Python
loop that re-allocates temporaries, on the server *under the lock*.

:class:`LayerArena` stores the same state as **one contiguous buffer with
named per-layer views**.  It implements the ``Mapping[str, np.ndarray]``
protocol, so everything that walks layers (checkpointing, byte accounting,
the reference per-layer code paths) keeps working unchanged — but the
whole-state operations collapse to single vectorised in-place ops on
``flat``:

========================  =============================================
dict-of-arrays reference  arena equivalent
========================  =============================================
``add_scaled(d, s)``      ``d.add_(s, scale)`` — one fused axpy
``clone_layers(x)``       ``x.clone()`` — one memcpy
``copy_payload``-style    ``d.copy_(s)`` — one memcpy
``add_payload`` loop      ``d.add_payload(p)`` — one op for dense
                          arena payloads, per-layer scatter otherwise
``flatten_layers(x)``     ``x.flat`` — zero-copy view
========================  =============================================

Because elementwise IEEE arithmetic does not depend on how the operands
are batched, every arena op is **bitwise-identical** to the corresponding
per-layer reference loop at equal dtype (pinned by the property tests in
``tests/properties/test_prop_arena_parity.py``).

Dtype: the arena defaults to float32 — the wire dtype (``VALUE_BYTES = 4``)
and the dtype real deployments hold end-to-end — halving the memory
traffic of every whole-state op.  Pass ``dtype=np.float64`` to reproduce
the reference path bit-for-bit (that is what the parity tests and
``RunConfig(arena_dtype="float64")`` do).

Ownership rules are documented in ``docs/performance.md``: an arena
returned by a strategy's ``prepare()`` is valid until the *next*
``prepare()`` on the same strategy — safe under the strict request→reply
cycle every backend runs, because the server consumes the payload before
the worker computes again.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping as MappingABC
from typing import Mapping

import numpy as np

__all__ = ["LayerArena", "make_layer_buffers"]


class LayerArena(MappingABC):
    """One contiguous buffer holding a whole ``layer name -> ndarray`` map.

    ``arena.flat`` is the 1-D backing buffer; ``arena[name]`` is a
    zero-copy view of that buffer shaped like the layer.  Mutating either
    mutates the other — that aliasing is the point.
    """

    __slots__ = ("flat", "shapes", "_views", "_spans")

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        dtype: "np.dtype | type | str" = np.float32,
        _flat: "np.ndarray | None" = None,
    ) -> None:
        self.shapes: "OrderedDict[str, tuple[int, ...]]" = OrderedDict(
            (name, tuple(shape)) for name, shape in shapes.items()
        )
        sizes = [int(np.prod(shape)) for shape in self.shapes.values()]
        total = int(sum(sizes))
        if _flat is None:
            self.flat = np.zeros(total, dtype=dtype)
        else:
            if _flat.ndim != 1 or _flat.size != total:
                raise ValueError(
                    f"backing buffer has {_flat.size} elements, shapes need {total}"
                )
            self.flat = np.ascontiguousarray(_flat, dtype=dtype)
        self._spans: "dict[str, tuple[int, int]]" = {}
        self._views: "OrderedDict[str, np.ndarray]" = OrderedDict()
        offset = 0
        for (name, shape), size in zip(self.shapes.items(), sizes):
            self._spans[name] = (offset, offset + size)
            self._views[name] = self.flat[offset : offset + size].reshape(shape)
            offset += size

    # -- construction ---------------------------------------------------
    @classmethod
    def from_layers(
        cls, layers: "Mapping[str, np.ndarray]", dtype: "np.dtype | type | str | None" = None
    ) -> "LayerArena":
        """Pack an existing LayerMap into a fresh arena (copies the data).

        ``dtype=None`` keeps the layers' common dtype instead of forcing
        the float32 default — loading float64 reference state must not
        silently round it.
        """
        if dtype is None:
            arrays = list(layers.values())
            dtype = np.result_type(*arrays) if arrays else np.dtype(np.float32)
        arena = cls(OrderedDict((n, a.shape) for n, a in layers.items()), dtype=dtype)
        for name, arr in layers.items():
            np.copyto(arena._views[name], arr)
        return arena

    # -- Mapping protocol ----------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        return self._views[name]

    def __iter__(self):
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    # -- introspection --------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.flat.dtype

    @property
    def size(self) -> int:
        return self.flat.size

    @property
    def nbytes(self) -> int:
        return self.flat.nbytes

    def span(self, name: str) -> "tuple[int, int]":
        """``(start, end)`` of ``name``'s slice inside :attr:`flat`."""
        return self._spans[name]

    def same_layout(self, other: "LayerArena") -> bool:
        """True when both arenas map the same names to the same shapes in
        the same order — the precondition for flat-level fused ops."""
        return self.shapes == other.shapes  # OrderedDict ==: order-sensitive

    # -- vectorised whole-state ops ------------------------------------
    def zero_(self) -> "LayerArena":
        self.flat.fill(0)
        return self

    def clone(self) -> "LayerArena":
        """Deep copy (the arena counterpart of ``clone_layers``)."""
        return LayerArena(self.shapes, dtype=self.dtype, _flat=self.flat.copy())

    def as_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Materialise an independent dict-of-arrays copy (reference form)."""
        return OrderedDict((name, view.copy()) for name, view in self._views.items())

    def copy_(self, other: "LayerArena | Mapping[str, np.ndarray]") -> "LayerArena":
        """Overwrite this arena from ``other`` (one memcpy when fused)."""
        if isinstance(other, LayerArena) and self.same_layout(other):
            np.copyto(self.flat, other.flat)
            return self
        for name, view in self._views.items():
            np.copyto(view, other[name])
        return self

    def add_(
        self, other: "LayerArena | Mapping[str, np.ndarray]", scale: float = 1.0
    ) -> "LayerArena":
        """``self += scale * other`` — the arena form of ``add_scaled``."""
        if isinstance(other, LayerArena) and self.same_layout(other):
            _accumulate(self.flat, other.flat, scale)
            return self
        for name, view in self._views.items():
            _accumulate(view, other[name], scale)
        return self

    def scale_(self, factor: float) -> "LayerArena":
        self.flat *= factor
        return self

    def add_payload(self, payload: "Mapping[str, object]", scale: float = 1.0) -> "LayerArena":
        """Accumulate a per-layer update of any payload type, in place.

        Dense arena payloads with matching layout collapse to a single
        fused op over :attr:`flat`; everything else (codec payload objects,
        plain dicts of arrays) falls back to per-layer application with the
        same arithmetic as :func:`repro.core.layerops.add_payload`.
        """
        if isinstance(payload, LayerArena) and self.same_layout(payload):
            _accumulate(self.flat, payload.flat, scale)
            return self
        for name, layer in payload.items():
            dest = self._views[name]
            if isinstance(layer, np.ndarray):
                _accumulate(dest, layer, scale)
            elif scale == 1.0:
                layer.add_into(dest)
            elif scale == -1.0 and hasattr(layer, "indices") and hasattr(layer, "values"):
                # COO fast path: scatter-subtract, no dense materialisation.
                dest.reshape(-1)[layer.indices] -= layer.values
            else:
                dest += scale * layer.to_dense()
        return self

    # -- checkpointing --------------------------------------------------
    def state_dict(self) -> "dict[str, np.ndarray]":
        return {name: view.copy() for name, view in self._views.items()}

    def load_state_dict(self, state: "Mapping[str, np.ndarray]") -> None:
        for name, view in self._views.items():
            np.copyto(view, state[name])

    # -- pickling -------------------------------------------------------
    def __reduce__(self):
        # Default pickling of __slots__ + view-aliasing would either fail
        # or ship every view as an independent full copy; rebuild from the
        # flat buffer so the views re-alias it on the other side.
        return (_rebuild_arena, (dict(self.shapes), str(self.dtype), self.flat))

    def __repr__(self) -> str:
        return (
            f"LayerArena({len(self._views)} layers, size={self.size}, dtype={self.dtype})"
        )


def _accumulate(dest: np.ndarray, src: np.ndarray, scale: float) -> None:
    """``dest += scale * src`` without a temporary for the ±1 fast paths.

    ``dest - src`` and ``dest + (-1.0)*src`` are bitwise-identical in IEEE
    arithmetic, so the fast paths preserve parity with the reference loops.
    """
    if scale == 1.0:
        dest += src
    elif scale == -1.0:
        dest -= src
    else:
        dest += scale * src


def _rebuild_arena(shapes, dtype, flat) -> LayerArena:
    return LayerArena(OrderedDict(shapes), dtype=dtype, _flat=flat)


def make_layer_buffers(
    shapes: Mapping[str, tuple[int, ...]],
    arena: bool,
    dtype: "np.dtype | type | str | None" = None,
) -> "LayerArena | OrderedDict[str, np.ndarray]":
    """Zeroed per-layer state: an arena, or the dict-of-arrays reference.

    The single switch point every strategy and the tracker build their
    buffers through — ``arena=False`` reproduces the historical
    ``zeros_like_layers`` allocation exactly (float64 unless overridden).
    """
    if arena:
        return LayerArena(shapes, dtype=np.float32 if dtype is None else dtype)
    if dtype is None:
        return OrderedDict((name, np.zeros(shape)) for name, shape in shapes.items())
    return OrderedDict((name, np.zeros(shape, dtype=dtype)) for name, shape in shapes.items())
