"""§5.4 ablation — momentum at high worker counts.

The paper: "we reduce the momentum from 0.7 to 0.3 in the experiments of 32
workers. Surprisingly, the test accuracy increases to 93.7%."  This bench
sweeps the momentum coefficient for DGS at a high worker count and shows
the same non-monotone pattern: large momentum destabilises stale updates,
small momentum restores (and can exceed) the 0.7 accuracy.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import get_workload
from ..report import ExperimentReport
from .common import mean_accuracy, resolve_fast, scaled_batch

__all__ = ["run"]

MOMENTA = (0.3, 0.45, 0.6, 0.7)


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0, 1)) -> ExperimentReport:
    fast = resolve_fast(fast)
    num_workers = 4 if fast else 16
    if fast:
        seeds = seeds[:1]
    wl = get_workload("cifar10")
    bs = scaled_batch(num_workers)

    report = ExperimentReport(
        experiment_id="Sec 5.4 (momentum)",
        title=f"DGS accuracy vs momentum at {num_workers} workers",
        headers=("Momentum", "Top-1 Accuracy"),
    )
    for m in MOMENTA:
        hyper = replace(wl.hyper, momentum=m)
        acc, std = mean_accuracy("dgs", wl, num_workers, seeds, fast, batch_size=bs, hyper=hyper)
        report.add_row(f"{m:.2f}", f"{100 * acc:.2f}% ± {100 * std:.2f}")
    report.add_note(
        "Expected shape: accuracy degrades as momentum grows past ~0.45 at high worker "
        "counts (asynchrony adds implicit momentum — Mitliagkas et al., cited as [19])."
    )
    return report
