"""Training-method registry.

Bundles each approach the paper evaluates (§5, Table 5) into a declarative
spec: how the worker compresses upstream, how the server compresses
downstream, and which technique flags it carries.  The registry is the
single source of truth for the harness, the Table 5 bench, and the memory
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..compression.topk import TopKSparsifier
from .strategies import (
    DenseStrategy,
    DGCStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
    SparsityRamp,
    WorkerStrategy,
)

__all__ = ["MethodSpec", "Hyper", "build_strategy", "METHODS", "method_names", "get_method"]


@dataclass(frozen=True)
class Hyper:
    """Per-run hyper-parameters shared by all methods."""

    lr: float = 0.1
    momentum: float = 0.7  # the paper's CIFAR setting (§5.1)
    ratio: float = 0.01  # R = 1%: "we chose here as Top 1%" (§4.1)
    secondary_ratio: float = 0.01  # secondary compression ratio (§5.5: 99%)
    clip_norm: float | None = 5.0  # DGC's gradient clipping
    warmup_epochs: int = 4  # DGC's sparsity ramp length
    iterations_per_epoch: int = 1
    #: layers smaller than this are sent dense (see TopKSparsifier)
    min_sparse_size: int = 256


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one training approach."""

    name: str
    label: str
    strategy: str  # 'dense' | 'dropping' | 'dgc' | 'samomentum'
    downstream: str  # 'model' (dense download) | 'difference'
    secondary_default: bool = False  # secondary compression on by default?
    distributed: bool = True
    # Table 5 columns:
    sparsification: str = "N"
    momentum: str = "N"
    momentum_correction: bool = False
    residual_accumulation: bool = False

    def make_strategy(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        hyper: Hyper,
        arena: bool = False,
        arena_dtype: "object | None" = None,
    ) -> WorkerStrategy:
        return build_strategy(self.strategy, shapes, hyper, arena=arena, arena_dtype=arena_dtype)


def build_strategy(
    kind: str,
    shapes: Mapping[str, tuple[int, ...]],
    hyper: Hyper,
    arena: bool = False,
    arena_dtype: "object | None" = None,
) -> WorkerStrategy:
    """Instantiate the worker-side strategy named ``kind``.

    ``arena=True`` selects the flat-buffer/workspace hot path (see
    :mod:`repro.core.arena`); the default is the dict-of-float64 reference.
    """
    if kind == "dense":
        return DenseStrategy(shapes, arena=arena, dtype=arena_dtype)
    if kind == "dropping":
        return GradientDroppingStrategy(
            shapes,
            TopKSparsifier(hyper.ratio, min_sparse_size=hyper.min_sparse_size),
            arena=arena,
            dtype=arena_dtype,
        )
    if kind == "dgc":
        ramp = SparsityRamp(
            hyper.ratio,
            warmup_epochs=hyper.warmup_epochs,
            iterations_per_epoch=hyper.iterations_per_epoch,
        )
        return DGCStrategy(
            shapes,
            ratio=hyper.ratio,
            momentum=hyper.momentum,
            ramp=ramp,
            clip_norm=hyper.clip_norm,
            min_sparse_size=hyper.min_sparse_size,
            arena=arena,
            dtype=arena_dtype,
        )
    if kind == "samomentum":
        return SAMomentumStrategy(
            shapes,
            TopKSparsifier(hyper.ratio, min_sparse_size=hyper.min_sparse_size),
            hyper.momentum,
            arena=arena,
            dtype=arena_dtype,
        )
    # Extension strategies (§6 future-work combinations) register here.
    from .extensions import build_extension_strategy  # late import: avoids cycle

    strategy = build_extension_strategy(kind, shapes, hyper, arena=arena, arena_dtype=arena_dtype)
    if strategy is not None:
        return strategy
    raise ValueError(f"unknown strategy kind {kind!r}")


_DUAL = "Model Difference Tracking based Dual-way Gradient Sparsification"

METHODS: dict[str, MethodSpec] = {
    "msgd": MethodSpec(
        name="msgd",
        label="MSGD",
        strategy="dense",
        downstream="model",
        distributed=False,
        sparsification="N",
        momentum="vanilla momentum",
    ),
    "asgd": MethodSpec(
        name="asgd",
        label="ASGD",
        strategy="dense",
        downstream="model",
        sparsification="N",
        momentum="N",
    ),
    "gd_async": MethodSpec(
        name="gd_async",
        label="GD-async",
        strategy="dropping",
        downstream="difference",
        sparsification=_DUAL,
        momentum="N",
        residual_accumulation=True,
    ),
    "dgc_async": MethodSpec(
        name="dgc_async",
        label="DGC-async",
        strategy="dgc",
        downstream="difference",
        sparsification=_DUAL,
        momentum="vanilla momentum",
        momentum_correction=True,
        residual_accumulation=True,
    ),
    "dgs": MethodSpec(
        name="dgs",
        label="DGS",
        strategy="samomentum",
        downstream="difference",
        sparsification=_DUAL,
        momentum="SAMomentum",
        momentum_correction=False,
        residual_accumulation=False,
    ),
}


def method_names(distributed_only: bool = False) -> list[str]:
    return [n for n, s in METHODS.items() if s.distributed or not distributed_only]


def get_method(name: str) -> MethodSpec:
    try:
        return METHODS[name]
    except KeyError:
        raise KeyError(f"unknown method {name!r}; known: {sorted(METHODS)}") from None
