"""Whole-program concurrency contracts.

Three pillars, one subpackage:

* :mod:`.lockgraph` — static whole-program lock-acquisition graph.
  **LCK004** flags cycles (potential ABBA deadlock); **LCK005** flags a
  channel ``send``/``recv`` reachable while a lock is held.
* :mod:`.runtime` — dynamic GoodLock-style order recorder.
  :class:`LockRegistry` timestamps per-thread nesting and reports
  inversions even when no deadlock manifested.
* :mod:`.arch` — architecture layering.  **ARC001** flags import edges
  outside the allowed-dependency matrix / committed baseline; **ARC002**
  flags module-level import cycles.

See ``docs/analysis.md`` for the rule catalog and the layering matrix.
"""

from __future__ import annotations

from .arch import (
    ALLOWED_DEPS,
    ArchConfig,
    ImportEdge,
    baseline_path,
    build_import_graph,
    check_architecture,
    load_baseline,
    matrix_is_acyclic,
    package_edges,
    write_baseline,
)
from .lockgraph import LockEdge, LockGraph, build_lock_graph, check_lock_graph
from .registry import LOCK_CLASS_REGISTRY, LockClassEntry, guarded_attrs_of, registry_entry
from .runtime import LockOrderEdge, LockOrderInversion, LockRegistry, RegisteredLock

__all__ = [
    "ALLOWED_DEPS",
    "ArchConfig",
    "ImportEdge",
    "LOCK_CLASS_REGISTRY",
    "LockClassEntry",
    "LockEdge",
    "LockGraph",
    "LockOrderEdge",
    "LockOrderInversion",
    "LockRegistry",
    "RegisteredLock",
    "baseline_path",
    "build_import_graph",
    "build_lock_graph",
    "check_architecture",
    "check_lock_graph",
    "guarded_attrs_of",
    "load_baseline",
    "matrix_is_acyclic",
    "package_edges",
    "registry_entry",
    "write_baseline",
]
