"""The unified result schema of the execution layer.

Every backend — real threads, real processes, the event-driven simulator
and the synchronous barrier reference — returns one :class:`TrainResult`.
The schema is the superset of what the four engines historically reported
(``ThreadedResult`` / ``ProcessResult`` / ``SimResult`` / ``SyncResult``,
which are now aliases of this class), with explicit *not measured*
semantics:

* ``None`` — the backend cannot measure the quantity at all (e.g. the
  process backend cannot see worker-side strategy buffers of a crashed
  child, the sync barrier has no parameter server, the wall-clock backends
  have no modelled network link);
* ``NaN`` — the quantity is defined but no samples were observed (e.g.
  ``mean_staleness`` before any exchange).

Field-by-field semantics are documented in ``docs/execution.md``; each
backend declares the optional fields it guarantees to populate in its
``measures`` set, and :func:`validate_result` enforces the contract (used
by ``make backend-matrix`` and the schema tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Iterable

from ..metrics.curves import Curve

__all__ = ["TrainResult", "validate_result"]


@dataclass
class TrainResult:
    """Outcome of one distributed training run, on any backend."""

    #: method registry name ("asgd", "dgs", ...)
    method: str = ""
    #: backend registry name ("threaded", "process", "simulated", "sync")
    backend: str = ""
    num_workers: int = 0
    #: parameter-server shards the run actually used (1 = single-lock
    #: server; stays 1 on backends without a PS, e.g. the sync barrier)
    num_shards: int = 1
    final_accuracy: float = float("nan")
    final_loss: float = float("nan")
    #: training loss against applied server updates (sync: against rounds)
    loss_vs_step: Curve = field(default_factory=lambda: Curve("loss_vs_step"))
    #: gradient computations applied at the server (== final server
    #: timestamp; sync: rounds × workers, one aggregate per round)
    total_iterations: int = 0
    #: training samples consumed across all workers
    samples_processed: int = 0
    #: mean server-side staleness (0.0 under the synchronous barrier)
    mean_staleness: float = float("nan")
    #: exact staleness percentiles across all updates (NaN before any
    #: exchange; 0.0 under the synchronous barrier, where staleness is
    #: defined by construction)
    staleness_p50: float = float("nan")
    staleness_p99: float = float("nan")
    #: actual payload bytes shipped worker→server (codec-level accounting)
    upload_bytes: int = 0
    #: actual payload bytes shipped server→worker
    download_bytes: int = 0

    # -- fields a backend may be unable to measure (None = not measured) --
    #: training loss against the run clock (virtual backends only)
    loss_vs_time: "Curve | None" = None
    #: periodic validation accuracy (simulated backend with ``eval_every``)
    acc_vs_step: "Curve | None" = None
    #: end-to-end run time in seconds, in this backend's clock domain
    makespan_s: "float | None" = None
    #: clock domain of ``makespan_s``/``loss_vs_time``: "wall" | "virtual"
    clock: "str | None" = None
    #: dense-equivalent bytes for the same exchanges (compression baseline)
    upload_dense_bytes: "int | None" = None
    download_dense_bytes: "int | None" = None
    #: bytes that crossed a real OS pipe (process backend only)
    wire_bytes_up: "int | None" = None
    wire_bytes_down: "int | None" = None
    #: fraction of the makespan the modelled links were busy (virtual only)
    uplink_utilisation: "float | None" = None
    downlink_utilisation: "float | None" = None
    #: server memory: M + all v_k + θ0 (backends with a parameter server)
    server_state_bytes: "int | None" = None
    #: total strategy buffer memory across workers (§5.6.2 accounting)
    worker_state_bytes: "int | None" = None
    #: barrier rounds (sync backend only)
    rounds: "int | None" = None
    #: virtual seconds lost waiting at the barrier (sync backend only)
    straggler_time_s: "float | None" = None
    #: per-worker staleness summary, worker id → {count, mean, p50, p99}
    #: (None on backends without a staleness-observing server, e.g. sync)
    worker_staleness: "dict[int, dict[str, float]] | None" = None
    #: metric snapshots (``type: "metric"`` records) gathered at run end —
    #: the server's staleness/lock-contention series plus anything the
    #: run's registry accumulated (None = backend has no registry)
    metrics: "list[dict] | None" = None
    #: per-exchange timeline (simulated backend with ``record_trace``)
    trace: "list | None" = None
    #: worker exceptions surfaced without crashing the run
    errors: list = field(default_factory=list)

    # -- derived metrics ----------------------------------------------------
    @property
    def throughput(self) -> float:
        """Samples per second of this backend's clock (NaN if unmeasured)."""
        if self.makespan_s is None:
            return float("nan")
        return self.samples_processed / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def compression_ratio(self) -> float:
        """Dense-equivalent over actual bytes, both ways (NaN if unmeasured)."""
        if self.upload_dense_bytes is None or self.download_dense_bytes is None:
            return float("nan")
        dense = self.upload_dense_bytes + self.download_dense_bytes
        actual = self.upload_bytes + self.download_bytes
        return dense / actual if actual else 1.0

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> "dict[str, object]":
        """JSON-serialisable view of the result (the run-manifest schema).

        Curves become ``[[x, y], ...]`` row lists, the raw ``trace`` (a
        list of engine-native event objects) is reduced to its length, and
        derived metrics are materialised so a manifest is self-contained.
        """
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Curve):
                value = [[float(x), float(y)] for x, y in value.to_rows()]
            elif f.name == "trace":
                value = None if value is None else len(value)
            elif f.name == "worker_staleness" and value is not None:
                value = {str(w): dict(summary) for w, summary in value.items()}
            out[f.name] = value
        out["throughput"] = self.throughput
        out["compression_ratio"] = self.compression_ratio
        return out

    # -- legacy aliases (pre-unification result field names) ---------------
    @property
    def server_timestamp(self) -> int:
        """Alias of ``total_iterations`` (``ThreadedResult``/``ProcessResult``)."""
        return self.total_iterations

    @property
    def loss_curve(self) -> Curve:
        """Alias of ``loss_vs_step`` (``ThreadedResult``/``ProcessResult``)."""
        return self.loss_vs_step


def validate_result(
    result: TrainResult, measures: Iterable[str] = ()
) -> "list[str]":
    """Check ``result`` against the unified schema contract.

    ``measures`` lists optional field names the producing backend claims to
    populate; they must then be non-``None``.  Returns a list of violation
    descriptions (empty = valid) so callers can aggregate across backends.
    """
    problems: list[str] = []
    for name in ("method", "backend"):
        if not getattr(result, name):
            problems.append(f"{name} is empty")
    if result.num_workers < 1:
        problems.append(f"num_workers={result.num_workers} < 1")
    if result.num_shards < 1:
        problems.append(f"num_shards={result.num_shards} < 1")
    if result.total_iterations < 1:
        problems.append(f"total_iterations={result.total_iterations} < 1")
    if result.samples_processed < 1:
        problems.append(f"samples_processed={result.samples_processed} < 1")
    if not len(result.loss_vs_step):
        problems.append("loss_vs_step is empty")
    if math.isnan(result.final_accuracy) or not 0.0 <= result.final_accuracy <= 1.0:
        problems.append(f"final_accuracy={result.final_accuracy} outside [0, 1]")
    if math.isnan(result.final_loss):
        problems.append("final_loss is NaN")
    if result.upload_bytes <= 0 or result.download_bytes <= 0:
        problems.append("byte accounting missing (upload/download_bytes <= 0)")
    if not math.isnan(result.mean_staleness) and result.mean_staleness < 0:
        problems.append(f"mean_staleness={result.mean_staleness} < 0")
    for name in ("staleness_p50", "staleness_p99"):
        value = getattr(result, name)
        if not math.isnan(value) and value < 0:
            problems.append(f"{name}={value} < 0")
    if (
        not math.isnan(result.staleness_p50)
        and not math.isnan(result.staleness_p99)
        and result.staleness_p99 < result.staleness_p50
    ):
        problems.append(
            f"staleness_p99={result.staleness_p99} < staleness_p50={result.staleness_p50}"
        )
    if result.clock not in (None, "wall", "virtual"):
        problems.append(f"clock={result.clock!r} not in (None, 'wall', 'virtual')")
    if result.makespan_s is not None:
        if result.makespan_s <= 0:
            problems.append(f"makespan_s={result.makespan_s} <= 0")
        if result.clock is None:
            problems.append("makespan_s measured but clock domain unset")
    for name in measures:
        if getattr(result, name) is None:
            problems.append(f"backend claims to measure {name!r} but it is None")
    return problems
