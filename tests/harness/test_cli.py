"""The python -m repro CLI."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig6" in out

    def test_all_experiment_ids_registered(self):
        assert {"table2", "table3", "table4", "table5", "fig2", "fig3", "fig4",
                "fig5", "fig6", "memory"} <= set(EXPERIMENTS)

    def test_run_table5(self, capsys):
        assert main(["run", "table5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "SAMomentum" in out

    def test_run_with_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["run", "table5", "--fast", "--out", str(out_file)]) == 0
        assert "SAMomentum" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])
