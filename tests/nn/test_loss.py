"""Loss functions: value and gradient correctness."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, numerical_gradient
from repro.nn import CrossEntropyLoss, MSELoss, accuracy, cross_entropy


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(5, 4))
        y = np.array([0, 1, 2, 3, 0])
        z = logits - logits.max(axis=1, keepdims=True)
        logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(5), y].mean()
        out = cross_entropy(Tensor(logits, requires_grad=True), y)
        assert float(out.data) == pytest.approx(expected, rel=1e-12)

    def test_uniform_logits_give_log_c(self):
        logits = Tensor(np.zeros((3, 10)), requires_grad=True)
        out = cross_entropy(logits, np.array([1, 5, 9]))
        assert float(out.data) == pytest.approx(np.log(10))

    def test_fused_backward_matches_numerical(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        y = np.array([0, 2, 1, 1])
        assert gradcheck(lambda l: cross_entropy(l, y), [logits], atol=1e-5)

    def test_stable_for_huge_logits(self):
        logits = Tensor(np.array([[1e4, -1e4]]), requires_grad=True)
        out = cross_entropy(logits, np.array([0]))
        assert np.isfinite(float(out.data))
        out.backward()
        assert np.isfinite(logits.grad).all()

    def test_rejects_2d_targets(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), np.zeros((2, 3), dtype=int))

    def test_module_wrapper(self, rng):
        loss = CrossEntropyLoss()
        logits = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = loss(logits, np.array([0, 1]))
        assert out.data.size == 1

    def test_no_grad_when_input_constant(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        out = cross_entropy(logits, np.array([0, 1]))
        assert not out.requires_grad


class TestMSE:
    def test_value(self, rng):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        target = np.array([0.0, 0.0])
        out = MSELoss()(pred, target)
        assert float(out.data) == pytest.approx(2.5)

    def test_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        target = rng.normal(size=(3, 2))
        assert gradcheck(lambda p: MSELoss()(p, target), [pred])


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(3) * 10
        assert accuracy(logits, np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        logits = np.array([[2.0, 1.0], [2.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_tensor_input(self, rng):
        logits = Tensor(np.array([[0.0, 5.0]]))
        assert accuracy(logits, np.array([1])) == 1.0
