"""Layer→shard partition map — the state-splitting side of a sharded PS.

A sharded parameter server divides the model's layers across N shards so
each shard owns a disjoint slice of ``M``/``v_k`` state behind its own
lock.  The split must be *whole layers* (a layer's sparse encoding and
secondary compression are per-layer, Eq. 6), deterministic (every process
of a run must agree on the assignment without negotiation), and balanced
(the largest shard bounds the longest lock hold).

:class:`PartitionMap` implements the classic greedy multiway number
partitioning: layers are placed largest-first into the currently
lightest shard.  That yields the standard LPT bound — no shard exceeds
``total_bytes / num_shards + max_layer_bytes`` — which the property tests
pin (``tests/properties/test_prop_partition.py``).

Within a shard, layers keep their *original* model order, so per-shard
sub-arenas (:class:`~repro.core.arena.LayerArena` over the shard's
shapes) lay out and reassemble deterministically: splitting a payload by
shard and merging the parts back is the identity on both keys and order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

__all__ = ["PartitionMap"]


class PartitionMap:
    """Deterministic greedy assignment of whole layers to shards.

    ``num_shards`` is clamped to the number of layers so no shard is ever
    empty — a shard with no state would still cost a lock acquisition per
    update while protecting nothing.
    """

    __slots__ = ("shapes", "num_shards", "itemsize", "_shard_of", "_layers", "_bytes")

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        num_shards: int,
        itemsize: int = 4,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not shapes:
            raise ValueError("cannot partition an empty layer map")
        if itemsize < 1:
            raise ValueError("itemsize must be >= 1")
        self.shapes: "OrderedDict[str, tuple[int, ...]]" = OrderedDict(
            (name, tuple(shape)) for name, shape in shapes.items()
        )
        self.itemsize = int(itemsize)
        self.num_shards = min(int(num_shards), len(self.shapes))

        sizes = {
            name: int(np.prod(shape, dtype=np.int64)) * self.itemsize
            for name, shape in self.shapes.items()
        }
        # Largest-first greedy (LPT): stable order index breaks byte ties,
        # lowest shard id breaks load ties — fully deterministic.
        order = {name: i for i, name in enumerate(self.shapes)}
        ranked = sorted(self.shapes, key=lambda n: (-sizes[n], order[n]))
        loads = [0] * self.num_shards
        self._shard_of: "dict[str, int]" = {}
        for name in ranked:
            shard = min(range(self.num_shards), key=lambda s: (loads[s], s))
            self._shard_of[name] = shard
            loads[shard] += sizes[name]
        self._bytes = tuple(loads)
        # Per-shard layer lists in ORIGINAL model order (sub-arena layout
        # and payload reassembly both key off this).
        grouped: "list[list[str]]" = [[] for _ in range(self.num_shards)]
        for name in self.shapes:
            grouped[self._shard_of[name]].append(name)
        self._layers = tuple(tuple(names) for names in grouped)

    # ------------------------------------------------------------------
    def shard_of(self, name: str) -> int:
        """The shard owning layer ``name``."""
        return self._shard_of[name]

    def layers(self, shard: int) -> "tuple[str, ...]":
        """Layer names owned by ``shard``, in original model order."""
        return self._layers[shard]

    def shard_shapes(self, shard: int) -> "OrderedDict[str, tuple[int, ...]]":
        """The shape map of one shard (sub-arena construction input)."""
        return OrderedDict((name, self.shapes[name]) for name in self._layers[shard])

    def shard_bytes(self, shard: int) -> int:
        """Greedy load of ``shard`` at :attr:`itemsize` bytes per element."""
        return self._bytes[shard]

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes)

    @property
    def max_layer_bytes(self) -> int:
        return max(
            int(np.prod(shape, dtype=np.int64)) * self.itemsize
            for shape in self.shapes.values()
        )

    # ------------------------------------------------------------------
    def split(self, payload: "Mapping[str, object]") -> "list[OrderedDict[str, object]]":
        """Fan a whole-model payload into per-shard sub-payloads.

        Layers absent from ``payload`` are simply absent from their
        shard's part (sparse upstream payloads may skip empty layers).
        """
        parts: "list[OrderedDict[str, object]]" = [
            OrderedDict() for _ in range(self.num_shards)
        ]
        for name, layer in payload.items():
            parts[self._shard_of[name]][name] = layer
        return parts

    def merge(self, parts: "Sequence[Mapping[str, object]]") -> "OrderedDict[str, object]":
        """Reassemble per-shard payloads into original model order.

        Inverse of :meth:`split`: ``merge(split(p))`` preserves keys,
        order, and the layer objects themselves.
        """
        if len(parts) != self.num_shards:
            raise ValueError(f"expected {self.num_shards} parts, got {len(parts)}")
        out: "OrderedDict[str, object]" = OrderedDict()
        for name in self.shapes:
            part = parts[self._shard_of[name]]
            if name in part:
                out[name] = part[name]
        return out

    def __repr__(self) -> str:
        return (
            f"PartitionMap({len(self.shapes)} layers -> {self.num_shards} shards, "
            f"loads={list(self._bytes)})"
        )
