"""ASCII line plots — the figure renderer for a terminal-only environment."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .curves import Curve

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    curves: "Mapping[str, Curve] | Mapping[str, tuple[Sequence[float], Sequence[float]]]",
    width: int = 72,
    height: int = 18,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render one or more curves as an ASCII chart with a legend."""
    series: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, c in curves.items():
        if isinstance(c, Curve):
            xs, ys = np.asarray(c.xs, dtype=float), np.asarray(c.ys, dtype=float)
        else:
            xs, ys = np.asarray(c[0], dtype=float), np.asarray(c[1], dtype=float)
        if len(xs):
            series[name] = (xs, ys)
    if not series:
        return f"{title}\n(no data)"

    xmin = min(s[0].min() for s in series.values())
    xmax = max(s[0].max() for s in series.values())
    ymin = min(s[1].min() for s in series.values())
    ymax = max(s[1].max() for s in series.values())
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        # Resample each series at every column so lines look continuous.
        cols = np.arange(width)
        col_x = xmin + cols / (width - 1) * (xmax - xmin)
        in_range = (col_x >= xs.min()) & (col_x <= xs.max())
        col_y = np.interp(col_x, xs, ys)
        rows = ((ymax - col_y) / (ymax - ymin) * (height - 1)).round().astype(int)
        for c in cols[in_range]:
            r = min(max(rows[c], 0), height - 1)
            grid[r][c] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        yval = ymax - r / (height - 1) * (ymax - ymin)
        lines.append(f"{yval:>10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11} {xmin:<12.4g}{xlabel:^{max(width - 26, 1)}}{xmax:>12.4g}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"  legend: {legend}   (y: {ylabel})")
    return "\n".join(lines)
