"""Property tests for the layer→shard PartitionMap.

The sharded server's correctness rests on three structural facts: the
partition is exact (every layer to exactly one shard), balanced (greedy
LPT bound), and self-consistent (``shard_of`` ↔ per-shard layer lists ↔
split/merge round-trip).  Hypothesis drives arbitrary layer-name/shape
sets through all three.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PartitionMap

layer_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="._/"),
    min_size=1,
    max_size=12,
)

shapes_strategy = st.dictionaries(
    keys=layer_names,
    values=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=3).map(tuple),
    min_size=1,
    max_size=12,
)


@given(shapes=shapes_strategy, num_shards=st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_every_layer_assigned_exactly_once(shapes, num_shards):
    pm = PartitionMap(shapes, num_shards)
    seen: list[str] = []
    for s in range(pm.num_shards):
        seen.extend(pm.layers(s))
    assert sorted(seen) == sorted(shapes)  # exactly once, no shard overlap
    for s in range(pm.num_shards):
        for name in pm.layers(s):
            assert pm.shard_of(name) == s


@given(shapes=shapes_strategy, num_shards=st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_no_shard_exceeds_greedy_bound(shapes, num_shards):
    """Largest-first greedy keeps every shard within total/N + max layer."""
    pm = PartitionMap(shapes, num_shards, itemsize=8)
    sizes = {n: int(np.prod(shape)) * 8 for n, shape in shapes.items()}
    total = sum(sizes.values())
    bound = total / pm.num_shards + max(sizes.values())
    for s in range(pm.num_shards):
        assert pm.shard_bytes(s) == sum(sizes[n] for n in pm.layers(s))
        assert pm.shard_bytes(s) <= bound
    assert pm.total_bytes == total
    # no shard is empty: num_shards is clamped to the layer count
    assert pm.num_shards == min(num_shards, len(shapes))
    assert all(pm.layers(s) for s in range(pm.num_shards))


@given(shapes=shapes_strategy, num_shards=st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_split_merge_round_trip_preserves_order_and_identity(shapes, num_shards):
    pm = PartitionMap(shapes, num_shards)
    payload = OrderedDict((n, np.full(shape, i, dtype=np.float64))
                          for i, (n, shape) in enumerate(shapes.items()))
    parts = pm.split(payload)
    assert len(parts) == pm.num_shards
    # each part holds exactly its shard's layers, in original model order
    for s, part in enumerate(parts):
        assert tuple(part) == tuple(n for n in pm.layers(s) if n in payload)
    merged = pm.merge(parts)
    assert list(merged) == list(payload)  # keys AND order
    for name in payload:
        assert merged[name] is payload[name]  # identity, no copies


@given(shapes=shapes_strategy, num_shards=st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_partition_is_deterministic(shapes, num_shards):
    a = PartitionMap(shapes, num_shards)
    b = PartitionMap(OrderedDict(shapes), num_shards)
    assert all(a.layers(s) == b.layers(s) for s in range(a.num_shards))


@given(shapes=shapes_strategy)
@settings(max_examples=50, deadline=None)
def test_single_shard_is_the_whole_model(shapes):
    pm = PartitionMap(shapes, 1)
    assert pm.num_shards == 1
    assert pm.layers(0) == tuple(shapes)


def test_split_tolerates_sparse_payloads_missing_layers():
    pm = PartitionMap({"a": (4,), "b": (4,), "c": (4,)}, 2)
    payload = {"a": np.ones(4)}
    parts = pm.split(payload)
    assert sum(len(p) for p in parts) == 1
    assert list(pm.merge(parts)) == ["a"]
