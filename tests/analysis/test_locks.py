"""Static lock-discipline checker tests against the lock fixtures."""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.analysis.linter import load_module
from repro.analysis.locks import (
    check_lock_discipline,
    check_lock_discipline_module,
    find_lock_classes,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def check_fixture(name: str):
    return check_lock_discipline_module(load_module(FIXTURES / name, root=FIXTURES))


class TestBadServer:
    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in check_fixture("bad_locks.py"))
        assert counts == {"LCK001": 2, "LCK002": 1, "LCK003": 1}

    def test_unguarded_touches_name_attr_and_method(self):
        lck001 = [f for f in check_fixture("bad_locks.py") if f.rule == "LCK001"]
        messages = " | ".join(f.message for f in lck001)
        assert "'state'" in messages and "'_hits'" in messages
        assert all("put" in f.message for f in lck001)

    def test_orphan_private_method_flagged(self):
        (f,) = [f for f in check_fixture("bad_locks.py") if f.rule == "LCK002"]
        assert "_orphan" in f.message

    def test_nested_acquire_deadlock_flagged(self):
        (f,) = [f for f in check_fixture("bad_locks.py") if f.rule == "LCK003"]
        assert "get_unsafe" in f.message and "deadlock" in f.message


class TestGoodServer:
    def test_zero_findings(self):
        findings = check_fixture("good_locks.py")
        assert findings == [], [f.format() for f in findings]

    def test_private_under_lock_pattern_is_understood(self):
        # _put_locked touches guarded state with no lock of its own; the
        # call-graph fixpoint must prove every caller holds the lock.
        source = (FIXTURES / "good_locks.py").read_text()
        assert "_put_locked" in source


class TestBareAcquire:
    """LCK006: bare .acquire()/.release() instead of ``with``."""

    def test_exact_finding_counts(self):
        counts = Counter(f.rule for f in check_fixture("bare_acquire.py"))
        assert counts == {"LCK006": 2}

    def test_release_outside_finally_flagged(self):
        findings = [f for f in check_fixture("bare_acquire.py") if "finally" in f.message]
        (f,) = findings
        assert "add" in f.message and "leaks the lock" in f.message

    def test_acquire_never_released_flagged(self):
        findings = [f for f in check_fixture("bare_acquire.py") if "never releases" in f.message]
        (f,) = findings
        assert "leak" in f.message

    def test_try_finally_pattern_accepted(self):
        # Tally.safe acquires bare but releases in a finally: no finding,
        # and the guarded mutation between acquire/release is not LCK001.
        rules = {f.rule for f in check_fixture("bare_acquire.py")}
        assert rules == {"LCK006"}
        assert all("safe" not in f.message for f in check_fixture("bare_acquire.py"))


class TestDiscovery:
    def test_only_lock_owning_classes_enroll(self):
        module = load_module(FIXTURES / "bad_locks.py", root=FIXTURES)
        names = [cls.name for cls, _ in find_lock_classes(module.tree)]
        assert names == ["BadServer"]

    def test_parameter_server_is_enrolled(self):
        module = load_module(SRC / "ps" / "server.py", root=SRC)
        names = [cls.name for cls, _ in find_lock_classes(module.tree)]
        assert "ParameterServer" in names

    def test_narrow_locks_do_not_enroll(self):
        # ThreadedTrainer's _loss_lock guards one curve, not the object;
        # the `_lock` naming convention keeps it out of the checker.
        module = load_module(SRC / "ps" / "threaded.py", root=SRC)
        assert find_lock_classes(module.tree) == []


def test_src_tree_is_clean():
    findings = check_lock_discipline(SRC)
    assert findings == [], [f.format() for f in findings]
