"""Registered span and metric names — the telemetry vocabulary.

Every span and metric series the instrumented layers emit is named here,
once, as a module constant.  Two invariants make cross-run tooling (the
Chrome exporter, `repro.obs report` / `compare`, the health checker)
reliable:

* **Format** — names are ``dot.separated`` lowercase ASCII
  (``worker.compute``, ``server.lock_wait_s``), so they group naturally
  in flamegraphs and survive the Prometheus name mangling predictably.
* **Registration** — call sites outside ``repro/obs`` must reference
  these constants instead of spelling the string inline (enforced by the
  ``OBS001`` lint rule in :mod:`repro.analysis.rules.obs`).  A renamed
  span then breaks at one definition site, not silently in a dashboard.

Instrumentation internal to ``repro/obs`` (e.g. the hot-path hooks that
derive ``autograd.<op>`` names from the functions they wrap) may build
names dynamically; :func:`is_valid_name` is the format contract they
must still satisfy.
"""

from __future__ import annotations

import re

__all__ = [
    "COMM_RECV",
    "COMM_SEND",
    "METRIC_DOWNLOAD_BYTES",
    "METRIC_SERVER_LOCK_HOLD_S",
    "METRIC_SERVER_LOCK_WAIT_S",
    "METRIC_SERVER_STALENESS",
    "METRIC_UPLOAD_BYTES",
    "SERVE_LANE",
    "SERVER_FANOUT",
    "SERVER_HANDLE",
    "SERVER_LOCK_WAIT",
    "WORKER_APPLY",
    "WORKER_COMPUTE",
    "WORKER_STEP",
    "is_valid_name",
    "registered_names",
]

# -- span names ---------------------------------------------------------
#: one protocol-loop iteration: compute + exchange + apply
WORKER_STEP = "worker.step"
#: forward/backward pass producing one gradient message
WORKER_COMPUTE = "worker.compute"
#: applying the server reply to the local replica
WORKER_APPLY = "worker.apply"
#: one frame travelling worker → server (any transport)
COMM_SEND = "comm.send"
#: one frame travelling server → worker (any transport)
COMM_RECV = "comm.recv"
#: the server applying one update while holding its lock
SERVER_HANDLE = "server.handle"
#: the request waiting for the server lock (contention signal)
SERVER_LOCK_WAIT = "server.lock_wait"
#: a sharded front-end splitting one update across shards and merging
#: the replies (covers split + per-shard handles + merge; the per-shard
#: work shows up as ``server.handle`` spans on ``shard-<n>`` lanes)
SERVER_FANOUT = "server.fanout"
#: one shard-addressed frame's full lane trip on a parallel serve loop:
#: payload decode (outside any lock) + shard handle + reply encode — the
#: demux and reply-writer threads are deliberately spanless (they only
#: move bytes), so lane spans ARE the parallel loop's work profile
SERVE_LANE = "serve.lane"

# -- metric series names ------------------------------------------------
#: per-worker staleness distribution at the server (histogram)
METRIC_SERVER_STALENESS = "server.staleness"
#: per-worker seconds spent waiting for the server lock (histogram)
METRIC_SERVER_LOCK_WAIT_S = "server.lock_wait_s"
#: per-worker seconds the server lock was held (histogram)
METRIC_SERVER_LOCK_HOLD_S = "server.lock_hold_s"
#: analytic payload bytes shipped worker → server (counter)
METRIC_UPLOAD_BYTES = "comm.upload_bytes"
#: analytic payload bytes shipped server → worker (counter)
METRIC_DOWNLOAD_BYTES = "comm.download_bytes"

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


def is_valid_name(name: str) -> bool:
    """True iff ``name`` is ``dot.separated`` lowercase (≥ two segments)."""
    return bool(_NAME_RE.match(name))


def registered_names() -> "frozenset[str]":
    """Every registered span/metric name constant in this module."""
    return frozenset(
        value
        for key, value in globals().items()
        if key.isupper() and isinstance(value, str)
    )
