"""Multi-process parameter-server trainer (the "process" execution backend).

The closest offline stand-in for the paper's multi-machine deployment:
workers are separate OS processes (true parallel gradient computation, no
GIL sharing), and every exchange travels as *actual bytes* through an OS
pipe using the binary wire codec (``repro.ps.codec``) — the same
``encode()``/``decode()`` path the paper's gloo transport performs.

Frame format on the pipe, upstream (worker → server):

* gradient frame: ``b"G"`` + little-endian ``f64 loss`` + codec message;
* close frame: ``b"S"`` + little-endian ``i64 samples_processed`` +
  ``i64 worker_state_bytes`` — the worker's final local accounting, so the
  unified result can report per-worker fields the parent cannot observe.

Downstream frames are bare codec message bytes.  An empty frame also
closes a worker (crash path: no final accounting available).

Notes
-----
* Requires the ``fork`` start method (Linux default): workers inherit the
  model factory and dataset by address-space copy, so no pickling of
  closures is needed.
* Values cross the wire as float32 (as on the paper's testbed), so worker
  replicas drift from the server model at float32 resolution — real
  deployments hold float32 end-to-end, making this exact in practice.
* BatchNorm running statistics stay local to each worker process; the
  final evaluation uses a fresh replica's statistics (prefer BN-free
  models for exact numbers here, e.g. MLP).

Prefer the unified front-end (``repro.exec.Trainer`` with
``backend="process"``); this class remains the underlying engine and a
thin public adapter.
"""

from __future__ import annotations

import multiprocessing as mp
import struct
import time
from multiprocessing.connection import Connection, wait
from typing import Callable

from ..core.layerops import parameters_of
from ..core.methods import Hyper, MethodSpec
from ..data.loader import DataLoader
from ..data.synthetic import Dataset
from ..exec.common import (
    build_server,
    build_worker,
    resolve_hyper,
    resolve_method,
    resolve_schedule,
)
from ..exec.result import TrainResult
from ..metrics.curves import Curve
from ..metrics.evaluation import evaluate_params
from ..nn.module import Module
from ..optim.schedules import Schedule
from .codec import decode_message, encode_message

__all__ = ["ProcessTrainer", "ProcessResult"]

#: deprecated alias — the process engine now returns the unified schema
ProcessResult = TrainResult

_LOSS = struct.Struct("<d")
_WORKER_STATS = struct.Struct("<qq")  # samples_processed, worker_state_bytes
_GRADIENT_FRAME = b"G"
_CLOSE_FRAME = b"S"


def _worker_main(
    conn: Connection,
    worker_id: int,
    num_workers: int,
    model_factory: Callable[[], Module],
    dataset: Dataset,
    theta0,
    batch_size: int,
    iterations: int,
    method: MethodSpec,
    hyper: Hyper,
    schedule: Schedule,
    seed: int,
) -> None:
    loader = DataLoader(dataset, batch_size, seed=seed)
    node = build_worker(
        worker_id, num_workers, model_factory(), loader, method, hyper, schedule, theta0=theta0
    )
    try:
        for _ in range(iterations):
            msg = node.compute_step()
            conn.send_bytes(
                _GRADIENT_FRAME + _LOSS.pack(node.last_loss) + encode_message(msg)
            )
            reply = decode_message(conn.recv_bytes())
            node.apply_reply(reply)
    finally:
        conn.send_bytes(
            _CLOSE_FRAME
            + _WORKER_STATS.pack(node.samples_processed, node.worker_state_bytes())
        )
        conn.close()


class ProcessTrainer:
    """PS training with one OS process per worker, bytes on real pipes."""

    def __init__(
        self,
        method: "MethodSpec | str",
        model_factory: Callable[[], Module],
        dataset: Dataset,
        num_workers: int,
        batch_size: int,
        iterations_per_worker: int,
        hyper: Hyper | None = None,
        schedule: Schedule | None = None,
        secondary_compression: bool | None = None,
        staleness_damping: bool = False,
        seed: int = 0,
    ) -> None:
        self.method = resolve_method(method)
        self.hyper = resolve_hyper(hyper)
        self.schedule = resolve_schedule(schedule, self.hyper)
        self.model_factory = model_factory
        self.dataset = dataset
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.iterations_per_worker = iterations_per_worker
        self.seed = seed

        self.eval_model = model_factory()
        self.theta0 = parameters_of(self.eval_model)
        self.server = build_server(
            self.method,
            self.theta0,
            num_workers,
            self.hyper,
            secondary_compression=secondary_compression,
            staleness_damping=staleness_damping,
        )

    def run(self) -> TrainResult:
        t_start = time.perf_counter()
        ctx = mp.get_context("fork")
        conns: list[Connection] = []
        procs: list[mp.Process] = []
        for w in range(self.num_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child,
                    w,
                    self.num_workers,
                    self.model_factory,
                    self.dataset,
                    self.theta0,
                    self.batch_size,
                    self.iterations_per_worker,
                    self.method,
                    self.hyper,
                    self.schedule,
                    self.seed,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        loss_curve = Curve("loss_vs_server_step")
        wire_up = wire_down = 0
        samples = worker_state = 0
        open_conns = {id(c): c for c in conns}
        try:
            while open_conns:
                for conn in wait(list(open_conns.values())):
                    try:
                        raw = conn.recv_bytes()
                    except EOFError:
                        open_conns.pop(id(conn), None)
                        continue
                    kind = raw[:1]
                    if kind != _GRADIENT_FRAME:  # close frame (or crash: empty)
                        if kind == _CLOSE_FRAME:
                            w_samples, w_state = _WORKER_STATS.unpack_from(raw, 1)
                            samples += w_samples
                            worker_state += w_state
                        open_conns.pop(id(conn), None)
                        continue
                    (loss,) = _LOSS.unpack_from(raw, 1)
                    msg = decode_message(memoryview(raw)[1 + _LOSS.size :])
                    wire_up += len(raw) - 1 - _LOSS.size
                    reply = self.server.handle(msg)
                    out = encode_message(reply)
                    wire_down += len(out)
                    conn.send_bytes(out)
                    loss_curve.add(len(loss_curve) + 1, loss)
        finally:
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
        elapsed = time.perf_counter() - t_start

        global_params = self.server.global_model()
        acc, loss = evaluate_params(
            self.eval_model, global_params, self.dataset.x_val, self.dataset.y_val
        )
        stats = self.server.stats
        return TrainResult(
            method=self.method.name,
            backend="process",
            num_workers=self.num_workers,
            final_accuracy=acc,
            final_loss=loss,
            loss_vs_step=loss_curve,
            total_iterations=self.server.timestamp,
            samples_processed=samples,
            mean_staleness=self.server.staleness_meter.avg,
            upload_bytes=stats.upload_bytes,
            download_bytes=stats.download_bytes,
            upload_dense_bytes=stats.upload_dense_bytes,
            download_dense_bytes=stats.download_dense_bytes,
            wire_bytes_up=wire_up,
            wire_bytes_down=wire_down,
            makespan_s=elapsed,
            clock="wall",
            server_state_bytes=self.server.server_state_bytes(),
            worker_state_bytes=worker_state,
        )
