"""Unit tests for the sharded parameter server (front-end + shards).

The structural invariant under test everywhere: a sharded server is the
*same algorithm* as the single-lock server — state partitioned, never
changed — so deterministic update sequences produce bitwise-identical
global models, and the accounting surfaces compose per the documented
semantics (staleness counts sum across shards, state bytes sum back to
the whole model).
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.analysis.concurrency import LockRegistry
from repro.comm.channel import ServerService
from repro.comm.frames import GradientFrame
from repro.obs import names as obs_names
from repro.obs.tracer import Tracer, use_tracer
from repro.ps.messages import GradientMessage
from repro.ps.server import ParameterServer
from repro.ps.sharded import ParameterShard, ShardedParameterServer

SHAPES = OrderedDict([("w1", (6, 4)), ("b1", (4,)), ("w2", (4, 3)), ("b2", (3,))])


def _theta0(seed=0):
    rng = np.random.default_rng(seed)
    return OrderedDict((k, rng.normal(size=s)) for k, s in SHAPES.items())


def _update(rng):
    return OrderedDict((k, rng.normal(size=s).astype(np.float64)) for k, s in SHAPES.items())


def _drive(server, num_workers=2, steps=12, seed=3):
    """Deterministic single-threaded update schedule; returns the replies."""
    rng = np.random.default_rng(seed)
    replies = []
    for i in range(steps):
        w = i % num_workers
        replies.append(server.handle(GradientMessage(w, _update(rng), i)))
    return replies


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_global_model_bitwise_matches_unsharded(self, num_shards):
        plain = ParameterServer(_theta0(), 2, downstream="difference")
        sharded = ShardedParameterServer(_theta0(), 2, num_shards, downstream="difference")
        _drive(plain)
        _drive(sharded)
        a, b = plain.global_model(), sharded.global_model()
        assert list(a) == list(b)  # original layer order preserved
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
        assert plain.timestamp == sharded.timestamp
        assert plain.server_state_bytes() == sharded.server_state_bytes()

    def test_replies_merge_in_original_layer_order(self):
        sharded = ShardedParameterServer(_theta0(), 1, 3)
        (reply,) = _drive(sharded, num_workers=1, steps=1)
        assert list(reply.payload) == list(SHAPES)

    def test_model_downstream_mode(self):
        plain = ParameterServer(_theta0(), 2, downstream="model")
        sharded = ShardedParameterServer(_theta0(), 2, 3, downstream="model")
        r_plain = _drive(plain)
        r_sharded = _drive(sharded)
        for a, b in zip(r_plain, r_sharded):
            assert list(a.payload) == list(b.payload)
            for name in a.payload:
                np.testing.assert_array_equal(a.payload[name], b.payload[name])

    def test_staleness_matches_unsharded_on_deterministic_schedule(self):
        plain = ParameterServer(_theta0(), 2)
        sharded = ShardedParameterServer(_theta0(), 2, 2)
        r_plain = _drive(plain)
        r_sharded = _drive(sharded)
        assert [r.staleness for r in r_plain] == [r.staleness for r in r_sharded]
        assert [r.server_timestamp for r in r_plain] == [
            r.server_timestamp for r in r_sharded
        ]

    def test_num_shards_clamped_to_layer_count(self):
        sharded = ShardedParameterServer(_theta0(), 1, 32)
        assert sharded.num_shards == len(SHAPES)
        assert all(shard.tracker.shapes for shard in sharded.shards)


class TestShardedAccounting:
    def test_staleness_counts_sum_across_shards(self):
        """Merged per-worker counts are updates × num_shards; the location
        statistics are unchanged (documented accounting semantics)."""
        plain = ParameterServer(_theta0(), 2)
        sharded = ShardedParameterServer(_theta0(), 2, 3)
        _drive(plain)
        _drive(sharded)
        s_plain = plain.staleness_summary()
        s_sharded = sharded.staleness_summary()
        for w, summary in s_plain["per_worker"].items():
            merged = s_sharded["per_worker"][w]
            assert merged["count"] == summary["count"] * sharded.num_shards
            assert merged["mean"] == summary["mean"]
            assert merged["p50"] == summary["p50"]
        assert s_sharded["p50"] == s_plain["p50"]
        assert sharded.staleness_meter.avg == plain.staleness_meter.avg

    def test_metrics_snapshot_concatenates_shard_labeled_series(self):
        sharded = ShardedParameterServer(_theta0(), 2, 2)
        _drive(sharded)
        records = sharded.metrics.snapshot()
        lock_waits = [
            r for r in records if r["name"] == obs_names.METRIC_SERVER_LOCK_WAIT_S
        ]
        shards_seen = {r["labels"]["shard"] for r in lock_waits}
        assert shards_seen == {"0", "1"}
        # every series from a shard registry carries its shard label
        assert all("shard" in r["labels"] for r in records)

    def test_unsharded_series_carry_no_shard_label(self):
        plain = ParameterServer(_theta0(), 1)
        _drive(plain, num_workers=1, steps=2)
        for record in plain.metrics.snapshot():
            assert "shard" not in record["labels"]

    def test_state_bytes_cached_and_partitioned(self):
        plain = ParameterServer(_theta0(), 2)
        sharded = ShardedParameterServer(_theta0(), 2, 3)
        before = sharded.server_state_bytes()
        _drive(sharded)
        assert sharded.server_state_bytes() == before == plain.server_state_bytes()
        # per-shard figures are proper partitions, not copies
        assert sum(s.server_state_bytes() for s in sharded.shards) == before


class TestShardRoutingAndLocks:
    def test_handle_shard_touches_only_that_shard(self):
        sharded = ShardedParameterServer(_theta0(), 1, 2)
        rng = np.random.default_rng(0)
        part = OrderedDict(
            (k, rng.normal(size=SHAPES[k])) for k in sharded.partition.layers(1)
        )
        sharded.handle_shard(1, GradientMessage(0, part, 0))
        assert sharded.shards[0].timestamp == 0
        assert sharded.shards[1].timestamp == 1

    def test_server_service_routes_shard_frames(self):
        sharded = ShardedParameterServer(_theta0(), 1, 2)
        service = ServerService(sharded)
        rng = np.random.default_rng(0)
        part = OrderedDict(
            (k, rng.normal(size=SHAPES[k])) for k in sharded.partition.layers(0)
        )
        frame = GradientFrame(GradientMessage(0, part, 0), loss=0.0, shard=0)
        reply = service(frame)
        assert reply.shard == 0
        assert sharded.shards[0].timestamp == 1
        assert sharded.shards[1].timestamp == 0

    def test_register_lock_enrolls_one_lock_per_shard(self):
        sharded = ShardedParameterServer(_theta0(), 1, 3)
        registry = LockRegistry()
        sharded.register_lock(registry)
        assert registry.names == ("ps.shard0", "ps.shard1", "ps.shard2")
        # sequential fan-out never nests shard locks
        _drive(sharded, num_workers=1, steps=4)
        assert registry.inversions() == []

    def test_parameter_shard_inherits_guarded_attrs(self):
        assert ParameterShard.__guarded_attrs__ == ParameterServer.__guarded_attrs__


class TestShardedTelemetry:
    def test_shard_spans_land_on_shard_lanes(self):
        tracer = Tracer()
        sharded = ShardedParameterServer(_theta0(), 1, 2)
        with use_tracer(tracer):
            _drive(sharded, num_workers=1, steps=2)
        records = tracer.records()
        handle_tids = {
            r["tid"] for r in records if r["name"] == obs_names.SERVER_HANDLE
        }
        assert handle_tids == {"shard-0", "shard-1"}
        fanouts = [r for r in records if r["name"] == obs_names.SERVER_FANOUT]
        assert len(fanouts) == 2
        assert all(r["args"]["shards"] == 2 for r in fanouts)
