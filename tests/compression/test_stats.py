"""Compression statistics accounting."""

import pytest

from repro.compression import CompressionStats


class TestStats:
    def test_ratios(self):
        s = CompressionStats()
        s.record_upload(100, 1000)
        s.record_download(50, 1000)
        assert s.upload_ratio == pytest.approx(10.0)
        assert s.download_ratio == pytest.approx(20.0)
        assert s.overall_ratio == pytest.approx(2000 / 150)

    def test_empty_ratios_are_one(self):
        s = CompressionStats()
        assert s.upload_ratio == 1.0 and s.overall_ratio == 1.0

    def test_message_counts(self):
        s = CompressionStats()
        s.record_upload(1, 1)
        s.record_upload(1, 1)
        s.record_download(1, 1)
        assert s.upload_messages == 2 and s.download_messages == 1

    def test_negative_rejected(self):
        s = CompressionStats()
        with pytest.raises(ValueError):
            s.record_upload(-1, 0)

    def test_merge(self):
        a, b = CompressionStats(), CompressionStats()
        a.record_upload(10, 100)
        b.record_upload(20, 200)
        b.record_download(5, 50)
        a.merge(b)
        assert a.upload_bytes == 30
        assert a.download_bytes == 5
        assert a.total_bytes == 35
        assert a.upload_messages == 2
