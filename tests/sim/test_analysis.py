"""Analytical model vs the event-driven simulator: they must agree."""

import numpy as np
import pytest

from repro.core import Hyper
from repro.data import make_blobs
from repro.nn import MLP
from repro.sim import ClusterConfig, ComputeModel, LinkModel, SimulatedTrainer
from repro.sim.analysis import predict


@pytest.fixture(scope="module")
def ds():
    return make_blobs(n_samples=400, num_classes=4, dim=12, seed=1)


@pytest.fixture(scope="module")
def factory():
    return lambda: MLP(12, (24,), 4, seed=7)


def cluster(n, gbps, mean=0.05, duplex="half", wire_scale=1.0):
    return ClusterConfig(
        num_workers=n,
        compute=ComputeModel(mean_s=mean, jitter=0.0, heterogeneity=0.0),
        uplink=LinkModel.gbps(gbps),
        downlink=LinkModel.gbps(gbps),
        duplex=duplex,
        wire_scale=wire_scale,
        seed=0,
    )


def simulate(ds, factory, cl, method="asgd", iters=200):
    r = SimulatedTrainer(
        method, factory, ds, cl, batch_size=16, total_iterations=iters,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0), seed=0,
    ).run()
    per_up = r.upload_bytes / r.total_iterations
    per_down = r.download_bytes / r.total_iterations
    measured_rate = r.total_iterations / r.makespan_s
    return r, predict(cl, per_up, per_down), measured_rate


class TestModelVsSimulator:
    def test_compute_bound_regime(self, ds, factory):
        """Plenty of bandwidth: throughput ≈ N / cycle, not saturated."""
        cl = cluster(4, 10)
        _, pred, measured = simulate(ds, factory, cl)
        assert not pred.saturated
        assert measured == pytest.approx(pred.throughput_updates_per_s, rel=0.1)

    def test_saturated_regime(self, ds, factory):
        """Starved link: throughput ≈ 1/L, independent of N."""
        cl = cluster(8, 10, mean=0.05, wire_scale=10000.0)
        _, pred, measured = simulate(ds, factory, cl)
        assert pred.saturated
        assert measured == pytest.approx(pred.throughput_updates_per_s, rel=0.15)

    def test_saturation_throughput_independent_of_workers(self, ds, factory):
        cl8 = cluster(8, 10, wire_scale=10000.0)
        cl16 = cluster(16, 10, wire_scale=10000.0)
        _, _, m8 = simulate(ds, factory, cl8)
        _, _, m16 = simulate(ds, factory, cl16, iters=320)
        assert m16 == pytest.approx(m8, rel=0.1)

    def test_speedup_prediction_matches_fig6_shape(self, ds, factory):
        """The min(N, cycle/occupancy) law reproduces the measured speedup."""
        base_cl = cluster(1, 10, wire_scale=10000.0)
        _, _, rate1 = simulate(ds, factory, base_cl, iters=60)
        for n in (2, 4, 8):
            cl = cluster(n, 10, wire_scale=10000.0)
            _, pred, measured = simulate(ds, factory, cl, iters=60 * n)
            measured_speedup = measured / rate1
            assert measured_speedup == pytest.approx(pred.speedup_vs_one_worker, rel=0.2)


class TestPredictValidation:
    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            predict(cluster(2, 10), -1, 0)

    def test_full_duplex_higher_cap(self):
        half = predict(cluster(4, 1, duplex="half"), 10**6, 10**6)
        full = predict(cluster(4, 1, duplex="full"), 10**6, 10**6)
        assert full.max_update_rate_per_s > half.max_update_rate_per_s

    def test_sparser_messages_higher_cap(self):
        big = predict(cluster(4, 1), 10**7, 10**7)
        small = predict(cluster(4, 1), 10**5, 10**5)
        assert small.max_update_rate_per_s > big.max_update_rate_per_s
