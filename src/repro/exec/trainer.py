"""The one trainer front-end.

``Trainer(config, backend=...)`` — or the one-shot :func:`train` — is the
single entry point over the pluggable execution backends.  Any method ×
backend × workload combination runs through here and comes back as one
unified :class:`~repro.exec.result.TrainResult`::

    from repro.exec import RunConfig, Trainer

    cfg = RunConfig("dgs", model_factory, dataset,
                    num_workers=4, batch_size=32, total_iterations=400)
    result = Trainer(cfg, backend="threaded").run()   # or "process",
    print(result.final_accuracy, result.throughput)   # "simulated", "sync"
"""

from __future__ import annotations

from .backend import Backend, get_backend
from .config import RunConfig
from .result import TrainResult

__all__ = ["Trainer", "train"]


class Trainer:
    """Run one :class:`RunConfig` on a named (or ambient default) backend."""

    def __init__(self, config: RunConfig, backend: "str | Backend | None" = None) -> None:
        self.config = config
        self.backend = get_backend(backend)
        #: the underlying engine, built eagerly so callers can instrument
        #: pre-run state (e.g. ``trainer.engine.server``) before ``run()``.
        self.engine = self.backend.create(config)

    def run(self) -> TrainResult:
        return self.engine.run()


def train(config: RunConfig, backend: "str | Backend | None" = None) -> TrainResult:
    """One-shot convenience: build the backend's engine and run it."""
    return Trainer(config, backend=backend).run()
