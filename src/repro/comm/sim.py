"""Virtual-clock channels: frames cost link time instead of wall time.

:class:`SimTransport` binds the comm layer to the simulator's network
model: one shared uplink/downlink pair (``repro.sim.network.SharedLink``),
the testbed's ``wire_scale`` factor, and the run's byte-accounting sink.
Frame sizes are the same analytic ``frame.nbytes()`` every other backend
accounts, so a message occupies the modelled server NIC for exactly the
bytes the codec would produce.

:class:`SimChannel` is one worker's channel on that transport.  Because
the event-driven engine owns the chronology, the channel exposes a single
:meth:`~SimChannel.exchange` that performs the whole
upload → server → download round-trip at a given virtual ready-time and
returns the reply frame plus the :class:`SimTransfer` timing breakdown the
engine needs for its event heap, trace records and loggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..compression.stats import CompressionStats
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .channel import ServerService
from .frames import DiffFrame, GradientFrame, ModelFrame

if TYPE_CHECKING:
    from ..sim.network import SharedLink

__all__ = ["SimTransfer", "SimTransport", "SimChannel"]


@dataclass(frozen=True)
class SimTransfer:
    """Virtual-clock timing of one worker↔server exchange."""

    up_start: float
    up_end: float
    server_start: float
    server_end: float
    down_end: float
    up_bytes: int
    down_bytes: int


class SimTransport:
    """Shared server link pair + byte accounting on the virtual clock."""

    def __init__(
        self,
        uplink: SharedLink,
        downlink: SharedLink,
        wire_scale: float = 1.0,
        server_overhead_s: float = 0.0,
        stats: "CompressionStats | None" = None,
        tracer: "object | None" = None,
    ) -> None:
        self.uplink = uplink
        self.downlink = downlink
        self.wire_scale = wire_scale
        self.server_overhead_s = server_overhead_s
        self.stats = stats if stats is not None else CompressionStats()
        #: explicit tracer; None ⇒ the ambient repro.obs tracer at call time
        self.tracer = tracer
        #: when the (serialised) server is next free to apply an update
        self.server_free = 0.0

    # ------------------------------------------------------------------
    def _tracer(self):
        return self.tracer if self.tracer is not None else current_tracer()

    def send_frame(
        self, ready_t: float, frame: GradientFrame, worker: "int | None" = None
    ) -> "tuple[float, float]":
        """Reserve uplink time for ``frame``; returns (start, end)."""
        nbytes = frame.nbytes()
        start, end = self.uplink.reserve(ready_t, int(nbytes * self.wire_scale))
        self.stats.record_upload(nbytes, frame.dense_nbytes())
        tracer = self._tracer()
        if tracer.enabled:
            tracer.add_span(
                obs_names.COMM_SEND,
                start,
                end,
                tid=f"worker-{worker}" if worker is not None else "worker",
                cat="comm",
                domain="virtual",
                args={"worker": worker, "bytes": nbytes},
            )
        return start, end

    def recv_frame(
        self, ready_t: float, frame: "DiffFrame | ModelFrame", worker: "int | None" = None
    ) -> "tuple[float, float]":
        """Reserve downlink time for ``frame``; returns (start, end)."""
        nbytes = frame.nbytes()
        start, end = self.downlink.reserve(ready_t, int(nbytes * self.wire_scale))
        self.stats.record_download(nbytes, frame.dense_nbytes())
        tracer = self._tracer()
        if tracer.enabled:
            tracer.add_span(
                obs_names.COMM_RECV,
                start,
                end,
                tid=f"worker-{worker}" if worker is not None else "worker",
                cat="comm",
                domain="virtual",
                args={"worker": worker, "bytes": nbytes},
            )
        return start, end


class SimChannel:
    """Worker ``k``'s channel through the shared virtual server link."""

    def __init__(self, transport: SimTransport, service: ServerService, worker_id: int) -> None:
        self.transport = transport
        self.service = service
        self.worker_id = worker_id

    def exchange(
        self, ready_t: float, frame: GradientFrame
    ) -> "tuple[DiffFrame | ModelFrame, SimTransfer]":
        """One full upload → server apply → download round-trip.

        The uplink is FIFO and the engine pops ready-events in time order,
        so updates are applied in wire-arrival order — the chronology that
        makes simulated staleness match the paper's testbed.
        """
        transport = self.transport
        up_start, up_end = transport.send_frame(ready_t, frame, worker=self.worker_id)
        server_start = max(up_end, transport.server_free)
        server_end = server_start + transport.server_overhead_s
        transport.server_free = server_end
        reply = self.service(frame)
        tracer = transport._tracer()
        if tracer.enabled:
            tracer.add_span(
                obs_names.SERVER_HANDLE,
                server_start,
                server_end,
                tid="server",
                cat="server",
                domain="virtual",
                args={
                    "worker": self.worker_id,
                    "staleness": reply.message.staleness,
                    "up_bytes": frame.nbytes(),
                    "down_bytes": reply.nbytes(),
                },
            )
        _, down_end = transport.recv_frame(server_end, reply, worker=self.worker_id)
        return reply, SimTransfer(
            up_start=up_start,
            up_end=up_end,
            server_start=server_start,
            server_end=server_end,
            down_end=down_end,
            up_bytes=frame.nbytes(),
            down_bytes=reply.nbytes(),
        )
