"""Workload dataset calibration sanity: difficulty bands and determinism."""

import numpy as np
import pytest

from repro.harness import WORKLOADS, get_workload


class TestWorkloadDatasets:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_dataset_deterministic(self, name):
        wl = get_workload(name)
        a, b = wl.dataset(fast=True), wl.dataset(fast=True)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_val_split_nonempty_and_disjoint_len(self, name):
        wl = get_workload(name)
        ds = wl.dataset(fast=True)
        assert ds.n_val > 0
        assert ds.n_train > ds.n_val

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_model_matches_dataset(self, name):
        """The workload's model accepts the workload's inputs and emits
        one logit per class."""
        from repro.autograd import Tensor

        wl = get_workload(name)
        ds = wl.dataset(fast=True)
        model = wl.model_factory(seed=0)()
        out = model(Tensor(ds.x_train[:4]))
        assert out.shape == (4, ds.num_classes)

    def test_cifar_noise_calibration_band(self):
        """Calibration guard: the noise-to-signal ratio must sit in the band
        where trained models land at ~85–95% — high enough that optimiser
        differences show, low enough that training succeeds.  (The datasets
        are template+noise by construction, so they discriminate
        *optimisers*, not representations — see DESIGN.md §2.)"""
        ds = get_workload("cifar10").dataset(fast=False)
        flat = ds.x_train.reshape(len(ds.x_train), -1)
        centroids = np.stack(
            [flat[ds.y_train == c].mean(axis=0) for c in range(ds.num_classes)]
        )
        # within-class noise vs between-class separation
        within = np.mean(
            [np.linalg.norm(flat[ds.y_train == c] - centroids[c], axis=1).mean()
             for c in range(ds.num_classes)]
        )
        pair = [np.linalg.norm(centroids[i] - centroids[j])
                for i in range(10) for j in range(i + 1, 10)]
        ratio = within / np.mean(pair)
        assert 0.8 < ratio < 3.0  # calibrated regime (difficulty=4.0)

    def test_classes_balanced_enough(self):
        ds = get_workload("cifar10").dataset(fast=True)
        counts = np.bincount(ds.y_train, minlength=ds.num_classes)
        assert counts.min() > 0.5 * counts.mean()
