"""End-to-end algorithmic equivalences from §4 of the paper.

These are the claims the whole approach rests on:

1. Eq. (5): DGS's model-difference download (no secondary compression)
   leaves every worker with *bit-identical* parameters to vanilla ASGD's
   download-the-whole-model, for any interleaving of workers.
2. Eq. (16)/(17): DGS at R=100% equals momentum-ASGD; and a DGS run where
   the upstream is never sparsified matches the corresponding dense run.
"""

import random
from collections import OrderedDict

import numpy as np
import pytest

from repro.core import Hyper
from repro.core.layerops import layer_shapes, parameters_of
from repro.core.strategies import DenseStrategy, SAMomentumStrategy
from repro.compression import TopKSparsifier
from repro.data import DataLoader
from repro.nn import MLP
from repro.ps.server import ParameterServer
from repro.ps.worker import WorkerNode


def build_workers(server, factory, theta0, loader, strategy_fn, n=3):
    shapes = {k: v.shape for k, v in theta0.items()}
    workers = []
    for w in range(n):
        model = factory()
        for (name, p) in model.named_parameters():
            np.copyto(p.data, theta0[name])
        workers.append(WorkerNode(w, model, loader.worker_iterator(w, n), strategy_fn(shapes)))
    return workers


@pytest.mark.parametrize("seed", [0, 1])
def test_difference_tracking_equals_model_download(tiny_dataset, tiny_model_factory, seed):
    """Same gradient stream through both downstream modes → identical workers."""
    factory = tiny_model_factory
    theta0 = parameters_of(factory())
    # Two separate loaders with identical seeds → identical batch streams.
    loader_a = DataLoader(tiny_dataset, 16, seed=seed)
    loader_b = DataLoader(tiny_dataset, 16, seed=seed)

    srv_diff = ParameterServer(theta0, 3, downstream="difference")
    srv_model = ParameterServer(theta0, 3, downstream="model")
    wa = build_workers(srv_diff, factory, theta0, loader_a, DenseStrategy)
    wb = build_workers(srv_model, factory, theta0, loader_b, DenseStrategy)

    order = random.Random(seed)
    for _ in range(40):
        w = order.randrange(3)
        wa[w].apply_reply(srv_diff.handle(wa[w].compute_step()))
        wb[w].apply_reply(srv_model.handle(wb[w].compute_step()))

    for w in range(3):
        pa, pb = parameters_of(wa[w].model), parameters_of(wb[w].model)
        for name in pa:
            # atol covers float32 wire rounding of the exchanged payloads.
            np.testing.assert_allclose(pa[name], pb[name], atol=1e-5, err_msg=f"worker {w} {name}")


def test_dgs_r100_equals_momentum_asgd(tiny_dataset, tiny_model_factory):
    """SAMomentum with R=100% sends the dense velocity — the T=1 case of
    Eq. (16), i.e. plain momentum ASGD through the same server."""
    factory = tiny_model_factory
    theta0 = parameters_of(factory())
    m = 0.7

    loader_a = DataLoader(tiny_dataset, 16, seed=0)
    loader_b = DataLoader(tiny_dataset, 16, seed=0)
    srv_a = ParameterServer(theta0, 2, downstream="difference")
    srv_b = ParameterServer(theta0, 2, downstream="difference")

    sam = lambda shapes: SAMomentumStrategy(shapes, TopKSparsifier(1.0, min_sparse_size=0), m)
    wa = build_workers(srv_a, factory, theta0, loader_a, sam, n=2)

    # Reference: dense strategy whose payload is a manually tracked velocity.
    class DenseMomentum(DenseStrategy):
        def __init__(self, shapes):
            super().__init__(shapes)
            self.u = OrderedDict((k, np.zeros(s)) for k, s in shapes.items())

        def prepare(self, grads, lr):
            out = OrderedDict()
            for k, g in grads.items():
                self.u[k] = m * self.u[k] + lr * g
                out[k] = self.u[k].copy()
            return out

    wb = build_workers(srv_b, factory, theta0, loader_b, DenseMomentum, n=2)

    order = random.Random(3)
    for _ in range(30):
        w = order.randrange(2)
        wa[w].apply_reply(srv_a.handle(wa[w].compute_step()))
        wb[w].apply_reply(srv_b.handle(wb[w].compute_step()))

    for w in range(2):
        pa, pb = parameters_of(wa[w].model), parameters_of(wb[w].model)
        for name in pa:
            # atol covers float32 wire rounding of the exchanged payloads.
            np.testing.assert_allclose(pa[name], pb[name], atol=1e-5)


def test_workers_stay_in_sync_with_server_model(tiny_dataset, tiny_model_factory):
    """After every exchange (no secondary compression), the worker's local
    model equals θ0 + M — the Eq. (5) identity, live during training."""
    factory = tiny_model_factory
    theta0 = parameters_of(factory())
    loader = DataLoader(tiny_dataset, 16, seed=0)
    srv = ParameterServer(theta0, 2, downstream="difference")
    workers = build_workers(srv, factory, theta0, loader, DenseStrategy, n=2)

    order = random.Random(1)
    for _ in range(25):
        w = order.randrange(2)
        workers[w].apply_reply(srv.handle(workers[w].compute_step()))
        global_model = srv.global_model()
        local = parameters_of(workers[w].model)
        for name in local:
            # atol covers float32 wire rounding of the exchanged payloads.
            np.testing.assert_allclose(local[name], global_model[name], atol=1e-5)
