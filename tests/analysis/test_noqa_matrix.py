"""``# repro: noqa`` suppression works across every rule family.

One parametrized matrix: for each family (style, comm, perf, locks, the
new lock-graph rules, layering) build a minimal offending tree, confirm
the rule fires without the pragma and is silenced with it.  Plus the
pragma-hygiene rule itself: unknown rule codes and malformed rule lists in
pragmas are reported (NOQ001) and are *not* self-suppressible.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_analysis
from repro.analysis.concurrency import ArchConfig, check_architecture
from repro.analysis.linter import LintConfig, lint_file, load_module
from repro.analysis.rules import known_rule_ids
from repro.analysis.rules.pragma import PragmaHygieneRule

#: (rule id, relpath, offending source with {noqa} hook on the flagged line)
CASES = [
    (
        "RNG001",  # style/randomness family
        "mod.py",
        "import numpy as np\nstate = np.random.rand(3){noqa}\n",
    ),
    (
        "MUT001",  # style family
        "mod.py",
        "def f(x=[]){noqa}:\n    return x\n",
    ),
    (
        "EXC001",  # style family
        "mod.py",
        "try:\n    pass\nexcept{noqa}:\n    pass\n",
    ),
    (
        "COM001",  # comm family: framing outside comm/
        "ps/mod.py",
        "import struct{noqa}\nHDR = struct.pack('<I', 1)\n",
    ),
    (
        "PERF001",  # perf family: per-layer python loop in hot scope
        "core/mod.py",
        (
            "def apply(model, other):\n"
            "    for name, p in parameters_of(model).items(){noqa}:\n"
            "        p.data += other[name]\n"
        ),
    ),
    (
        "DTY001",  # hot-path dtype hygiene
        "ps/mod.py",
        "import numpy as np\nbuf = np.zeros(8){noqa}\n",
    ),
    (
        "LCK001",  # per-class lock discipline
        "mod.py",
        (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.state = {}\n"
            "        self._lock = threading.Lock()\n"
            "    def put(self, k):\n"
            "        self.state[k] = 1{noqa}\n"
            "    def get(self, k):\n"
            "        with self._lock:\n"
            "            return self.state.get(k)\n"
        ),
    ),
    (
        "LCK006",  # bare acquire/release (new)
        "mod.py",
        (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.state = {}\n"
            "        self._lock = threading.Lock()\n"
            "    def put(self, k):\n"
            "        self._lock.acquire()\n"
            "        self.state[k] = 1\n"
            "        self._lock.release(){noqa}\n"
        ),
    ),
]


def write_tree(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    if path.parent != root:
        (path.parent / "__init__.py").write_text("")
    return path


@pytest.mark.parametrize("rule,relpath,template", CASES, ids=[c[0] for c in CASES])
def test_rule_fires_and_is_suppressible(tmp_path, rule, relpath, template):
    write_tree(tmp_path, relpath, template.replace("{noqa}", ""))
    findings = run_analysis(root=tmp_path, sanitizer=False)
    assert rule in {f.rule for f in findings}, f"{rule} did not fire on its fixture"

    suppressed_dir = tmp_path / "suppressed"
    suppressed_dir.mkdir()
    write_tree(suppressed_dir, relpath, template.replace("{noqa}", f"  # repro: noqa {rule}"))
    findings = run_analysis(root=suppressed_dir, sanitizer=False)
    assert rule not in {f.rule for f in findings}, f"noqa did not silence {rule}"


@pytest.mark.parametrize("rule", ["LCK004", "LCK005"])
def test_lockgraph_rules_fire_and_are_suppressible(tmp_path, rule):
    # covered in depth by test_lockgraph.py; here just the matrix property
    from repro.analysis.concurrency import check_lock_graph

    source = {
        "LCK004": (
            "import threading\n"
            "class A:\n"
            "    def __init__(self, b: 'B'):\n"
            "        self.b = b\n"
            "        self._lock = threading.Lock()\n"
            "    def fa(self):\n"
            "        with self._lock:\n"
            "            self.b.fb(){noqa}\n"
            "class B:\n"
            "    def __init__(self, a: 'A'):\n"
            "        self.a = a\n"
            "        self._lock = threading.Lock()\n"
            "    def fb(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "    def back(self):\n"
            "        with self._lock:\n"
            "            self.a.fa()\n"
        ),
        "LCK005": (
            "import threading\n"
            "class P:\n"
            "    def __init__(self, ch):\n"
            "        self.ch = ch\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            self.ch.send(b'x'){noqa}\n"
        ),
    }[rule]
    path = tmp_path / "mod.py"
    path.write_text(source.replace("{noqa}", ""))
    assert rule in {f.rule for f in check_lock_graph(tmp_path, paths=[path])}
    path.write_text(source.replace("{noqa}", f"  # repro: noqa {rule}"))
    assert rule not in {f.rule for f in check_lock_graph(tmp_path, paths=[path])}


def test_arc001_fires_and_is_suppressible(tmp_path):
    config = ArchConfig(allowed={"low": frozenset(), "high": frozenset()}, baseline=set())
    for noqa, expected in (("", ["ARC001"]), ("  # repro: noqa ARC001", [])):
        root = tmp_path / ("plain" if not noqa else "noqa")
        (root / "low").mkdir(parents=True)
        (root / "high").mkdir()
        (root / "__init__.py").write_text("")
        (root / "low" / "__init__.py").write_text("")
        (root / "high" / "__init__.py").write_text("")
        (root / "high" / "engine.py").write_text("x = 1\n")
        (root / "low" / "util.py").write_text(f"from ..high import engine{noqa}\n")
        findings = check_architecture(root, config=config)
        assert [f.rule for f in findings] == expected


class TestPragmaHygiene:
    def run_rule(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source)
        module = load_module(path, root=tmp_path)
        return list(PragmaHygieneRule().check(module, LintConfig()))

    def test_unknown_rule_code_is_reported(self, tmp_path):
        findings = self.run_rule(tmp_path, "x = 1  # repro: noqa ABC999\n")
        assert [f.rule for f in findings] == ["NOQ001"]
        assert "'ABC999'" in findings[0].message

    def test_malformed_rule_list_is_reported(self, tmp_path):
        # lowercase code fails the grammar → silently a bare noqa
        findings = self.run_rule(tmp_path, "x = 1  # repro: noqa lck001\n")
        assert [f.rule for f in findings] == ["NOQ001"]
        assert "bare noqa" in findings[0].message

    def test_valid_pragmas_and_docstring_mentions_pass(self, tmp_path):
        source = (
            '"""Docs may say ``# repro: noqa RULE1,RULE2`` freely."""\n'
            "x = 1  # repro: noqa DTY001\n"
            "y = 2  # repro: noqa TEN001 — prose after the code is fine\n"
            "z = 3  # repro: noqa\n"
        )
        assert self.run_rule(tmp_path, source) == []

    def test_noq001_is_not_self_suppressible(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1  # repro: noqa lck001\n")
        findings = lint_file(path, [PragmaHygieneRule()], root=tmp_path)
        assert [f.rule for f in findings] == ["NOQ001"]

    def test_every_known_rule_id_is_well_formed(self):
        import re

        # the grammar _NOQA_RE accepts — a rule id outside it would be
        # silently unsuppressable (this caught PERF001 vs the old 3-letter
        # pattern, which turned its pragmas into bare suppress-everything)
        for rule in known_rule_ids():
            assert re.fullmatch(r"[A-Z]{3,4}\d{3}", rule), rule
