"""Workload and cluster presets for the paper's experiments.

Workloads pair a synthetic dataset with a model (DESIGN.md §2 substitutions)
and carry the paper's hyper-parameter conventions: momentum 0.7, Top-1%
sparsification, LR ×0.1 step decay at 60%/80% of training (the paper decays
at 30/40 of 50 CIFAR epochs and 30/60 of 90 ImageNet epochs).

Cluster presets mirror the testbed of §5.2: per-iteration compute time of a
V100 ResNet-18 step (~0.2 s), a shared server link at 10 or 1 Gbps, and a
``wire_scale`` that makes the dense model cost 46 MB on the wire — the
ResNet-18 size the paper quotes in §5.6.2 — so comm:compute ratios match
the deployment even though the compute model is micro-sized.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from ..core.methods import Hyper
from ..data.synthetic import Dataset, make_blobs, synthetic_cifar10, synthetic_imagenet
from ..nn.models import MLP, MicroResNet, SimpleCNN
from ..nn.module import Module
from ..optim.schedules import Schedule, StepDecay
from ..sim.cluster import ClusterConfig, ComputeModel
from ..sim.network import LinkModel

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "paper_cluster",
    "RESNET18_WIRE_BYTES",
    "is_fast_mode",
]

#: dense wire size of ResNet-18 (46 MB, §5.6.2 footnote)
RESNET18_WIRE_BYTES = 46 * 1024 * 1024


def is_fast_mode() -> bool:
    """Small problem sizes for CI/tests (set REPRO_SCALE=fast)."""
    return os.environ.get("REPRO_SCALE", "").lower() == "fast"


@dataclass(frozen=True)
class WorkloadSpec:
    """A dataset + model + training-length recipe."""

    name: str
    make_dataset: Callable[[int], Dataset]  # arg: scale divisor (1=full)
    make_model: Callable[[int], Module]  # arg: seed
    batch_size: int
    epochs: int
    hyper: Hyper

    def dataset(self, fast: bool | None = None) -> Dataset:
        fast = is_fast_mode() if fast is None else fast
        return self.make_dataset(4 if fast else 1)

    def model_factory(self, seed: int = 0) -> Callable[[], Module]:
        return lambda: self.make_model(seed)

    def schedule(self, epochs: int | None = None, lr: float | None = None) -> Schedule:
        """The paper's step schedule, scaled to this run's epoch budget."""
        total = self.epochs if epochs is None else epochs
        base = self.hyper.lr if lr is None else lr
        return StepDecay(base, milestones=(0.6 * total, 0.8 * total), factor=0.1)

    def total_iterations(self, num_workers: int, epochs: int | None = None, fast: bool | None = None) -> int:
        """Global iteration count covering ``epochs`` passes over the data."""
        ds = self.dataset(fast)
        total = self.epochs if epochs is None else epochs
        return max(1, (total * ds.n_train) // self.batch_size)


def _cifar_dataset(div: int) -> Dataset:
    return synthetic_cifar10(n_samples=4000 // div, size=8, difficulty=4.0, seed=7)


def _imagenet_dataset(div: int) -> Dataset:
    return synthetic_imagenet(
        n_samples=6000 // div, num_classes=25, size=8, difficulty=4.5, seed=11
    )


def _blobs_dataset(div: int) -> Dataset:
    return make_blobs(n_samples=1600 // div, num_classes=10, dim=32, sep=1.6, noise=1.1, seed=3)


WORKLOADS: dict[str, WorkloadSpec] = {
    # Fast unit-test workload: linear-ish problem, MLP.
    "blobs": WorkloadSpec(
        name="blobs",
        make_dataset=_blobs_dataset,
        make_model=lambda seed: MLP(32, (48,), 10, seed=seed),
        batch_size=32,
        epochs=4,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.01),
    ),
    # CIFAR-10 stand-in with a small CNN (default for tables/figures).
    # Ratio 0.05: the paper's R=1% of 11M params keeps the heavy tail of the
    # gradient; on a ~7k-param model the same regime needs R≈5% (DESIGN.md §2).
    "cifar10": WorkloadSpec(
        name="cifar10",
        make_dataset=_cifar_dataset,
        make_model=lambda seed: SimpleCNN(3, 10, width=16, seed=seed),
        batch_size=32,
        epochs=6,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.05, secondary_ratio=0.05),
    ),
    # CIFAR-10 stand-in with the ResNet-18-shaped model (slower, Fig. 2).
    "cifar10-resnet": WorkloadSpec(
        name="cifar10-resnet",
        make_dataset=_cifar_dataset,
        make_model=lambda seed: MicroResNet(3, 10, widths=(12, 24), blocks_per_stage=1, seed=seed),
        batch_size=32,
        epochs=6,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.05, secondary_ratio=0.05),
    ),
    # ImageNet stand-in: more classes, more data, wider model.
    "imagenet": WorkloadSpec(
        name="imagenet",
        make_dataset=_imagenet_dataset,
        make_model=lambda seed: SimpleCNN(3, 25, width=16, seed=seed),
        batch_size=32,
        epochs=6,
        hyper=Hyper(lr=0.1, momentum=0.7, ratio=0.05, secondary_ratio=0.05),
    ),
}


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None


def paper_cluster(
    num_workers: int,
    gbps: float,
    model: Module,
    compute_mean_s: float = 0.2,
    jitter: float = 0.1,
    heterogeneity: float = 0.05,
    seed: int = 0,
) -> ClusterConfig:
    """Cluster preset mirroring §5.2's testbed at ``gbps`` Gb/s.

    ``wire_scale`` is chosen so that this model's dense wire size equals
    ResNet-18's 46 MB; the server link is half-duplex (see ClusterConfig).
    """
    dense_bytes = 4 * model.num_parameters()
    return ClusterConfig(
        num_workers=num_workers,
        compute=ComputeModel(mean_s=compute_mean_s, jitter=jitter, heterogeneity=heterogeneity),
        uplink=LinkModel.gbps(gbps),
        downlink=LinkModel.gbps(gbps),
        wire_scale=RESNET18_WIRE_BYTES / dense_bytes,
        duplex="half",
        seed=seed,
    )
