"""Cross-engine consistency: the same algorithm through different engines.

The threaded, process, and simulated engines share WorkerNode /
ParameterServer / strategies; these tests pin down that the *algorithmic*
state evolution is engine-independent where determinism allows.
"""

import numpy as np
import pytest

from repro.core import Hyper
from repro.data import DataLoader, make_blobs
from repro.exec import RunConfig, Trainer, get_backend, list_backends, train, validate_result
from repro.nn import MLP
from repro.sim import ClusterConfig, SimulatedTrainer

HYPER = Hyper(lr=0.1, momentum=0.7, ratio=0.1, min_sparse_size=0)
#: dense ASGD — no sparsification, so 1-worker runs are scheduling-free
DENSE_HYPER = Hyper(lr=0.1, momentum=0.7)


@pytest.fixture(scope="module")
def ds():
    return make_blobs(n_samples=400, num_classes=4, dim=12, sep=2.0, noise=0.9, seed=9)


@pytest.fixture(scope="module")
def factory():
    return lambda: MLP(12, (20,), 4, seed=5)


def sim(ds, factory, n_workers, **kw):
    defaults = dict(
        cluster=ClusterConfig.with_bandwidth(n_workers, 10, compute_mean_s=0.02),
        batch_size=16,
        total_iterations=40 * n_workers,
        hyper=HYPER,
        seed=0,
    )
    defaults.update(kw)
    return SimulatedTrainer("dgs", factory, ds, **defaults)


class TestSingleWorkerDeterminism:
    def test_sim_single_worker_matches_manual_loop(self, ds, factory):
        """With 1 worker there is no scheduling freedom: the simulated run
        must equal a hand-driven compute→handle→apply loop exactly."""
        from repro.core.layerops import layer_shapes, parameters_of
        from repro.core.methods import get_method
        from repro.ps.server import ParameterServer
        from repro.ps.worker import WorkerNode
        from repro.optim.schedules import ConstantLR

        trainer = sim(ds, factory, 1, total_iterations=30)
        result = trainer.run()

        model = factory()
        theta0 = parameters_of(model)
        shapes = layer_shapes(model)
        server = ParameterServer(theta0, 1, downstream="difference")
        loader = DataLoader(ds, 16, seed=0)
        node = WorkerNode(
            0, model, loader.worker_iterator(0, 1),
            get_method("dgs").make_strategy(shapes, HYPER),
            schedule=ConstantLR(HYPER.lr),
        )
        for _ in range(30):
            node.apply_reply(server.handle(node.compute_step()))

        manual = server.global_model()
        simulated = trainer.server.global_model()
        for name in manual:
            np.testing.assert_allclose(manual[name], simulated[name], atol=1e-12)

    def test_engine_loss_sequence_matches(self, ds, factory):
        a = sim(ds, factory, 1, total_iterations=25).run()
        b = sim(ds, factory, 1, total_iterations=25).run()
        np.testing.assert_array_equal(a.loss_vs_step.ys, b.loss_vs_step.ys)


class TestEngineAgreementStatistics:
    def test_threaded_and_sim_reach_similar_accuracy(self, ds, factory):
        """Different interleavings, same algorithm — final quality agrees."""
        from repro.ps import ThreadedTrainer

        s = sim(ds, factory, 3, total_iterations=120).run()
        t = ThreadedTrainer(
            "dgs", factory, ds, num_workers=3, batch_size=16,
            iterations_per_worker=40, hyper=HYPER, seed=0,
        ).run()
        assert abs(s.final_accuracy - t.final_accuracy) < 0.2

    def test_process_engine_agrees(self, ds, factory):
        from repro.ps import ProcessTrainer

        s = sim(ds, factory, 2, total_iterations=60).run()
        p = ProcessTrainer(
            "dgs", factory, ds, num_workers=2, batch_size=16,
            iterations_per_worker=30, hyper=HYPER, seed=0,
        ).run()
        assert abs(s.final_accuracy - p.final_accuracy) < 0.2
        assert p.server_timestamp == s.total_iterations


class TestCrossBackendParity:
    """One RunConfig through the registry: the substrate must not change
    the math.  Dense ASGD with one worker has no scheduling freedom and no
    sparsification ties, so the final server model is substrate-independent
    (exactly on in-process backends; float32-close through the wire codec).
    """

    def _run(self, backend, ds, factory):
        config = RunConfig(
            "asgd",
            factory,
            ds,
            num_workers=1,
            batch_size=16,
            total_iterations=30,
            hyper=DENSE_HYPER,
            seed=0,
        )
        trainer = Trainer(config, backend=backend)
        result = trainer.run()
        return trainer.engine.server.global_model(), result

    def test_threaded_identical_to_simulated(self, ds, factory):
        t_params, t_res = self._run("threaded", ds, factory)
        s_params, s_res = self._run("simulated", ds, factory)
        assert t_params.keys() == s_params.keys()
        for name in t_params:
            np.testing.assert_array_equal(t_params[name], s_params[name])
        assert t_res.total_iterations == s_res.total_iterations == 30
        assert t_res.final_accuracy == s_res.final_accuracy

    def test_process_float32_close_to_simulated(self, ds, factory):
        """The process backend casts every exchange to float32 on the wire,
        so replicas drift from the in-process runs at float32 resolution."""
        p_params, p_res = self._run("process", ds, factory)
        s_params, _ = self._run("simulated", ds, factory)
        for name in s_params:
            np.testing.assert_allclose(p_params[name], s_params[name], rtol=1e-4, atol=1e-5)
        assert p_res.total_iterations == 30

    def test_byte_accounting_identical_across_backends(self, ds, factory):
        """The channel layer accounts analytic payload bytes on every
        substrate, so an identical dense-ASGD config must report identical
        byte totals whether frames crossed a thread boundary, an OS pipe,
        or a simulated link."""
        totals = {}
        for backend in ("threaded", "process", "simulated"):
            config = RunConfig(
                "asgd",
                factory,
                ds,
                num_workers=2,
                batch_size=16,
                total_iterations=24,
                hyper=DENSE_HYPER,
                seed=0,
            )
            result = Trainer(config, backend=backend).run()
            totals[backend] = (
                result.upload_bytes,
                result.download_bytes,
                result.upload_dense_bytes,
                result.download_dense_bytes,
            )
        assert totals["threaded"] == totals["process"] == totals["simulated"]
        assert all(v > 0 for v in totals["threaded"])

    def test_sharding_bitwise_identical_dense_asgd_float64(self, ds, factory):
        """The tentpole invariant: partitioning the server across shards
        must not change the math.  Dense ASGD with one worker at float64
        has no scheduling freedom and no rounding headroom, so sharded
        threaded ≡ unsharded threaded ≡ simulated — bitwise."""
        runs = {}
        for backend, shards in (
            ("threaded", 4),
            ("threaded", 1),
            ("simulated", 1),
            ("simulated", 4),
        ):
            config = RunConfig(
                "asgd",
                factory,
                ds,
                num_workers=1,
                batch_size=16,
                total_iterations=30,
                hyper=DENSE_HYPER,
                seed=0,
                num_shards=shards,
                arena=True,
                arena_dtype="float64",
            )
            trainer = Trainer(config, backend=backend)
            result = trainer.run()
            assert result.num_shards == shards
            runs[(backend, shards)] = dict(trainer.engine.server.global_model())
        reference = runs[("threaded", 1)]
        for key, params in runs.items():
            assert list(params) == list(reference)
            for name in reference:
                np.testing.assert_array_equal(
                    params[name], reference[name], err_msg=f"{key}/{name}"
                )

    def test_sharding_preserves_dgs_loss_curve_on_simulator(self, ds, factory):
        """DGS with secondary compression, multiple workers: the simulated
        backend is fully deterministic, so the sharded run must reproduce
        the unsharded loss curve and final model exactly — top-k selection
        is per-layer and never crosses a shard boundary."""
        curves = {}
        models = {}
        for shards in (1, 3):
            config = RunConfig(
                "dgs",
                factory,
                ds,
                num_workers=3,
                batch_size=16,
                total_iterations=60,
                hyper=HYPER,
                secondary_compression=True,
                seed=0,
                num_shards=shards,
            )
            trainer = Trainer(config, backend="simulated")
            result = trainer.run()
            curves[shards] = list(result.loss_vs_step.ys)
            models[shards] = dict(trainer.engine.server.global_model())
        assert curves[1] == curves[3]
        for name in models[1]:
            np.testing.assert_array_equal(models[1][name], models[3][name])

    def test_every_registered_backend_returns_valid_unified_result(self, ds, factory):
        config = RunConfig(
            "dgs",
            factory,
            ds,
            num_workers=2,
            batch_size=16,
            total_iterations=24,
            hyper=HYPER,
            seed=0,
        )
        for name in list_backends():
            backend = get_backend(name)
            result = train(config, backend=backend)
            problems = validate_result(result, measures=backend.measures)
            assert not problems, f"{name}: {problems}"
            assert result.backend == name
