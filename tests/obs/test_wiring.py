"""End-to-end wiring: trainers + server + hooks emit one unified stream."""

import json

import pytest

from repro.core.methods import Hyper
from repro.data.synthetic import make_blobs
from repro.nn.models.mlp import MLP
from repro.obs import (
    Tracer,
    check_stream,
    profile_hot_paths,
    summarize,
    to_chrome_trace,
    use_tracer,
    validate_chrome_trace,
)
from repro.ps.threaded import ThreadedTrainer
from repro.sim.cluster import ClusterConfig
from repro.sim.engine import SimulatedTrainer


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(n_samples=256, num_classes=4, dim=12, seed=1)


HYPER = Hyper(ratio=0.1, min_sparse_size=0)


def _model():
    return MLP(12, (24,), 4, seed=7)


@pytest.fixture(scope="module")
def threaded_run(dataset):
    """One traced 2-worker threaded run shared by the assertions below."""
    tracer = Tracer()
    trainer = ThreadedTrainer(
        "dgs",
        _model,
        dataset,
        num_workers=2,
        batch_size=16,
        iterations_per_worker=4,
        hyper=HYPER,
        seed=0,
        tracer=tracer,
    )
    with use_tracer(tracer), profile_hot_paths():
        result = trainer.run()
    return tracer, trainer, result


@pytest.fixture(scope="module")
def sim_run(dataset):
    tracer = Tracer()
    trainer = SimulatedTrainer(
        "dgs",
        _model,
        dataset,
        ClusterConfig.with_bandwidth(2, 10, compute_mean_s=0.01),
        batch_size=16,
        total_iterations=8,
        hyper=HYPER,
        tracer=tracer,
        seed=0,
    )
    with use_tracer(tracer), profile_hot_paths():
        result = trainer.run()
    return tracer, trainer, result


class TestThreadedWiring:
    def test_all_three_layers_present(self, threaded_run):
        tracer, _, _ = threaded_run
        cats = {r["cat"] for r in tracer.records()}
        # worker loop + server + hot-path hooks = all layers
        assert {"worker", "server", "autograd", "compression"} <= cats

    def test_spans_per_worker_thread(self, threaded_run):
        tracer, _, _ = threaded_run
        steps = [r for r in tracer.records() if r["name"] == "worker.step"]
        assert len(steps) == 2 * 4
        assert {r["tid"] for r in steps} == {"worker-0", "worker-1"}

    def test_stream_and_chrome_trace_valid(self, threaded_run):
        tracer, _, _ = threaded_run
        records = tracer.records()
        assert check_stream(records) == []
        trace = to_chrome_trace(records)
        assert validate_chrome_trace(trace) == []

    def test_server_span_bytes_match_compression_stats(self, threaded_run):
        """`summary` bytes tie back to CompressionStats totals."""
        tracer, trainer, result = threaded_run
        handle = [r for r in tracer.records() if r["name"] == "server.handle"]
        up = sum(r["args"]["up_bytes"] for r in handle)
        down = sum(r["args"]["down_bytes"] for r in handle)
        assert up == result.upload_bytes == trainer.server.stats.upload_bytes
        assert down == result.download_bytes == trainer.server.stats.download_bytes
        rows = {(r["domain"], r["phase"]): r for r in summarize(tracer.records())}
        assert rows[("wall", "server")]["bytes"] == up + down

    def test_lock_meters_populated(self, threaded_run):
        tracer, trainer, _ = threaded_run
        server = trainer.server
        assert server.lock_wait_meter.count == 8
        assert server.lock_hold_meter.count == 8
        assert server.lock_hold_meter.avg > 0
        assert set(server.worker_lock_wait) == {0, 1}
        assert all(m.count == 4 for m in server.worker_lock_wait.values())
        waits = [r for r in tracer.records() if r["name"] == "server.lock_wait"]
        assert len(waits) == 8

    def test_handle_span_outside_lock_wait(self, threaded_run):
        tracer, _, _ = threaded_run
        spans = tracer.records()
        waits = sorted(
            (r for r in spans if r["name"] == "server.lock_wait"), key=lambda r: r["ts"]
        )
        handles = sorted(
            (r for r in spans if r["name"] == "server.handle"), key=lambda r: r["ts"]
        )
        for wait, handle in zip(waits, handles):
            # handle starts where the lock was acquired (wait end)
            assert handle["ts"] == pytest.approx(wait["ts"] + wait["dur"], abs=1e-6)


class TestSimWiring:
    def test_virtual_spans_emitted(self, sim_run):
        tracer, _, _ = sim_run
        virt = [r for r in tracer.records() if r["domain"] == "virtual"]
        names = {r["name"] for r in virt}
        assert {"worker.compute", "comm.send", "server.handle", "comm.recv"} <= names

    def test_virtual_bytes_match_result(self, sim_run):
        tracer, _, result = sim_run
        virt = [r for r in tracer.records() if r["domain"] == "virtual"]
        up = sum(r["args"].get("bytes", 0) for r in virt if r["name"] == "comm.send")
        down = sum(
            r["args"].get("bytes", 0) for r in virt if r["name"] == "comm.recv"
        )
        assert up == result.upload_bytes
        assert down == result.download_bytes

    def test_virtual_timeline_consistent(self, sim_run):
        tracer, _, _ = sim_run
        virt = [r for r in tracer.records() if r["domain"] == "virtual"]
        # spans live on the virtual clock: all inside the simulated makespan
        horizon = max(r["ts"] + r["dur"] for r in virt)
        assert all(r["ts"] >= 0 for r in virt)
        assert horizon > 0

    def test_hot_path_spans_are_wall_domain(self, sim_run):
        tracer, _, _ = sim_run
        auto = [r for r in tracer.records() if r["cat"] == "autograd"]
        assert auto and all(r["domain"] == "wall" for r in auto)

    def test_combined_trace_valid_with_both_domains(self, sim_run):
        tracer, _, _ = sim_run
        records = tracer.records()
        assert check_stream(records) == []
        trace = to_chrome_trace(records)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1}


class TestCli:
    def test_convert_and_summary_roundtrip(self, threaded_run, tmp_path, capsys):
        from repro.obs.__main__ import main

        tracer, _, _ = threaded_run
        jsonl = tmp_path / "run.jsonl"
        tracer.dump_jsonl(jsonl, meta={"kind": "test"})
        out = tmp_path / "trace.json"
        assert main(["convert", str(jsonl), str(out)]) == 0
        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace) == []
        assert main(["summary", str(jsonl)]) == 0
        text = capsys.readouterr().out
        assert "per-phase span totals" in text
        assert main(["top", str(jsonl), "-n", "5"]) == 0

    def test_convert_rejects_bad_stream(self, tmp_path):
        from repro.obs.__main__ import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "x"}\n')
        assert main(["convert", str(bad), str(tmp_path / "o.json")]) == 1


def test_run_cli_trace_flag(tmp_path, capsys):
    """python -m repro run <exp> --fast --trace writes a valid Chrome trace."""
    from repro.__main__ import main

    out = tmp_path / "run-trace.json"
    assert main(["run", "memory", "--fast", "--trace", str(out)]) == 0
    capsys.readouterr()
    trace = json.loads(out.read_text())
    assert validate_chrome_trace(trace) == []


def test_disabled_tracing_leaves_hot_paths_unwrapped():
    """Acceptance: tracing off ⇒ original functions on the hot path."""
    from repro.autograd import ops
    from repro.compression.topk import TopKSparsifier
    from repro.ps import codec

    for fn in (ops.conv2d, TopKSparsifier.mask, codec.encode_message):
        assert not hasattr(fn, "__repro_obs_wrapped__")
