"""Loss functions."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, is_grad_enabled
from .module import Module

__all__ = ["CrossEntropyLoss", "MSELoss", "cross_entropy", "accuracy"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy with integer class targets.

    Implemented with a fused analytic backward (softmax − one-hot) / N, which
    is both faster and numerically stabler than composing primitives.
    """
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be a 1-D class-index array, got shape {targets.shape}")
    n, c = logits.shape
    z = logits.data
    zmax = z.max(axis=1, keepdims=True)
    shifted = z - zmax
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True)) + zmax
    logp = z - logsumexp
    loss_val = -logp[np.arange(n), targets].mean()

    out = Tensor(np.asarray(loss_val))
    if is_grad_enabled() and logits.requires_grad:

        def backward(g: np.ndarray) -> None:
            probs = np.exp(logp)
            probs[np.arange(n), targets] -= 1.0
            logits._accumulate(g * probs / n)

        out.requires_grad = True
        out._parents = (logits,)
        out._backward = backward
    return out


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over logits (N, C) and integer targets (N,)."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, pred: Tensor, target: "Tensor | np.ndarray") -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = pred - target
        return (diff * diff).mean()


def accuracy(logits: "Tensor | np.ndarray", targets: np.ndarray) -> float:
    """Top-1 accuracy of logits (N, C) against class indices (N,)."""
    z = logits.data if isinstance(logits, Tensor) else logits
    return float((z.argmax(axis=1) == np.asarray(targets)).mean())
