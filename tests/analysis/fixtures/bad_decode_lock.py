"""Deliberately bad module for PERF002: payload decodes under a held lock.

Never imported — parsed only.  Each flagged line pays O(payload) decode
cost while holding a mutex, which is exactly the hold-time stretch the
parallel serve lanes were built to avoid; the tests assert exact finding
counts against this file.
"""

import threading

__all__ = ["module_level", "Server"]

_lock = threading.Lock()


def module_level(raw, decode_frame):
    with _lock:
        return decode_frame(raw)  # PERF002


class Server:
    def __init__(self):
        self._lock = threading.Lock()
        self._mu = threading.Lock()
        self._shard_locks = [threading.Lock()]

    def handle(self, raw, decode_frame):
        with self._lock:
            frame = decode_frame(raw)  # PERF002
            return self.apply(frame)

    def record(self, raw, codec):
        with self._mu:
            msg = codec.decode_message(raw)  # PERF002
        return msg

    def handle_shard(self, shard, raw, decode_frame):
        with self._shard_locks[shard]:
            if raw:
                return decode_frame(raw)  # PERF002 — nested block, still held
        return None

    def clean(self, raw, decode_frame):
        frame = decode_frame(raw)  # decoded outside: the right shape
        with self._lock:
            return self.apply(frame)

    def unrelated_context(self, raw, decode_frame, path):
        with open(path) as fh:  # not a lock: no finding
            fh.read()
        return decode_frame(raw)

    def apply(self, frame):
        return frame
