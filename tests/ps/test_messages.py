"""Wire messages and byte accounting."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import dense_nbytes, encode_sparse, sparse_nbytes
from repro.ps import DiffMessage, GradientMessage, ModelMessage, payload_dense_nbytes, payload_nbytes


@pytest.fixture
def sparse_payload(rng):
    arr = rng.normal(size=100)
    arr[np.abs(arr) < 1.0] = 0.0
    return OrderedDict([("w", encode_sparse(arr))])


@pytest.fixture
def dense_payload(rng):
    return OrderedDict([("w", rng.normal(size=100))])


class TestPayloadBytes:
    def test_sparse(self, sparse_payload):
        nnz = sparse_payload["w"].nnz
        assert payload_nbytes(sparse_payload) == sparse_nbytes(nnz)

    def test_dense(self, dense_payload):
        assert payload_nbytes(dense_payload) == dense_nbytes(100)

    def test_dense_equiv_same_for_both(self, sparse_payload, dense_payload):
        assert payload_dense_nbytes(sparse_payload) == payload_dense_nbytes(dense_payload)

    def test_multi_layer_sums(self, rng):
        payload = OrderedDict([("a", rng.normal(size=10)), ("b", rng.normal(size=20))])
        assert payload_nbytes(payload) == dense_nbytes(10) + dense_nbytes(20)


class TestMessages:
    def test_gradient_message(self, sparse_payload):
        msg = GradientMessage(0, sparse_payload, 5)
        assert msg.nbytes() == payload_nbytes(sparse_payload)
        assert msg.dense_nbytes() == dense_nbytes(100)

    def test_diff_message_fields(self, sparse_payload):
        msg = DiffMessage(1, sparse_payload, server_timestamp=7, staleness=3)
        assert msg.worker_id == 1 and msg.staleness == 3

    def test_model_message_is_dense_both_ways(self, dense_payload):
        msg = ModelMessage(0, dense_payload, 1, 0)
        assert msg.nbytes() == msg.dense_nbytes() == dense_nbytes(100)

    def test_sparse_smaller_than_dense_at_low_density(self, sparse_payload):
        msg = GradientMessage(0, sparse_payload, 0)
        assert msg.nbytes() < msg.dense_nbytes()
