"""Weight initialisation schemes."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (F, C, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init (the ResNet default)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
