"""Deliberately bad module for PERF001: per-layer loops on the hot path.

Never imported — parsed only.  Each loop below iterates whole-model state
layer by layer where the arena path should run one fused op; the tests
assert exact finding counts against this file.
"""

import numpy as np

from repro.core.layerops import gradients_of, parameters_of

__all__ = ["apply_all", "grad_norms", "decay", "collect"]


def apply_all(model, update, lr):
    for name, p in parameters_of(model).items():  # PERF001
        p -= lr * update[name]


def grad_norms(model):
    return [float(np.linalg.norm(g)) for g in gradients_of(model).values()]  # PERF001


def decay(model, factor):
    for name in parameters_of(model):  # PERF001
        _ = name, factor


def collect(model):
    return {n: g.copy() for n, g in gradients_of(model).items()}  # PERF001
