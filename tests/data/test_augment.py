"""Image augmentation."""

import numpy as np
import pytest

from repro.data import Augmenter, BatchIterator, random_flip, random_shift


@pytest.fixture
def images(rng):
    return rng.normal(size=(32, 3, 8, 8))


class TestRandomFlip:
    def test_p0_is_identity(self, images, rng):
        np.testing.assert_array_equal(random_flip(images, rng, p=0.0), images)

    def test_p1_flips_all(self, images, rng):
        out = random_flip(images, rng, p=1.0)
        np.testing.assert_array_equal(out, images[:, :, :, ::-1])

    def test_flip_is_involution(self, images, rng):
        out = random_flip(images, rng, p=1.0)
        again = random_flip(out, rng, p=1.0)
        np.testing.assert_array_equal(again, images)

    def test_preserves_pixel_multiset(self, images, rng):
        out = random_flip(images, rng, p=0.5)
        np.testing.assert_allclose(np.sort(out.reshape(-1)), np.sort(images.reshape(-1)))

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            random_flip(rng.normal(size=(4, 8)), rng)


class TestRandomShift:
    def test_zero_shift_identity(self, images, rng):
        assert random_shift(images, rng, max_shift=0) is images

    def test_shape_preserved(self, images, rng):
        assert random_shift(images, rng, max_shift=2).shape == images.shape

    def test_content_is_translated_window(self, rng):
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 1, 1] = 7.0
        out = random_shift(x, rng, max_shift=1)
        # the marked pixel moved at most 1 step (or fell off the edge)
        pos = np.argwhere(out[0, 0] == 7.0)
        if len(pos):
            assert np.abs(pos[0] - np.array([1, 1])).max() <= 1

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            random_shift(rng.normal(size=(4, 8)), rng)


class TestAugmenter:
    def test_deterministic_per_seed(self, images):
        a1, a2 = Augmenter(seed=5), Augmenter(seed=5)
        np.testing.assert_array_equal(a1(images), a2(images))

    def test_different_seeds_differ(self, images):
        assert not np.array_equal(Augmenter(seed=1)(images), Augmenter(seed=2)(images))

    def test_non_image_passthrough(self, rng):
        flat = rng.normal(size=(16, 10))
        aug = Augmenter()
        np.testing.assert_array_equal(aug(flat), flat)

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            Augmenter(max_shift=-1)

    def test_plugged_into_batch_iterator(self, rng):
        x = rng.normal(size=(40, 3, 8, 8))
        y = np.zeros(40)
        plain = BatchIterator(x, y, 8, seed=0)
        augmented = BatchIterator(x, y, 8, seed=0, transform=Augmenter(seed=0))
        xa, _ = plain.next_batch()
        xb, _ = augmented.next_batch()
        assert xa.shape == xb.shape
        assert not np.array_equal(xa, xb)  # flip/shift happened

    def test_plugged_into_dataloader(self, rng):
        from repro.data import DataLoader, make_image_classes

        ds = make_image_classes(n_samples=60, num_classes=3, size=8, seed=0)
        loader = DataLoader(ds, 8, seed=0, make_transform=lambda sid: Augmenter(seed=sid + 10))
        it = loader.worker_iterator(0, 2)
        xb, yb = it.next_batch()
        assert xb.shape[0] == 8
