"""Benchmark harness plumbing.

Every bench:
 * regenerates one paper table/figure via its ``repro.harness.experiments``
   runner (timed once with ``benchmark.pedantic`` — these are end-to-end
   training campaigns, not micro-benchmarks);
 * prints the rendered table/figure to the real terminal (so
   ``pytest benchmarks/ --benchmark-only | tee ...`` records it);
 * writes the markdown rendering to ``benchmarks/results/<id>.md`` for
   EXPERIMENTS.md.

Set ``REPRO_SCALE=fast`` for a ~2-minute smoke pass; the default full pass
takes ~15–25 minutes single-core.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run one experiment module once, print + persist its report."""

    def runner(module, slug: str, **kwargs):
        report = benchmark.pedantic(module.run, kwargs=kwargs, rounds=1, iterations=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{slug}.md").write_text(report.markdown() + "\n")
        (RESULTS_DIR / f"{slug}.txt").write_text(report.render() + "\n")
        for name, svg in report.svgs.items():
            (RESULTS_DIR / f"{slug}_{name}.svg").write_text(svg)
        with capsys.disabled():
            print("\n" + report.render() + "\n")
        return report

    return runner
