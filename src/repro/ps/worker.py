"""Worker node: local model replica + gradient computation + strategy.

Implements the worker loops of Algorithms 1 and 3: download → apply →
sample → backward → compress → upload.  The same class is driven by both
the threaded trainer (real time) and the event-driven simulator (virtual
time) — only the scheduling differs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autograd import Tensor
from ..core.layerops import add_payload, copy_payload, gradients_of
from ..core.methods import Hyper, MethodSpec
from ..core.strategies import WorkerStrategy
from ..data.loader import BatchIterator
from ..nn.loss import cross_entropy
from ..nn.module import Module
from ..optim.schedules import ConstantLR, Schedule
from .messages import DiffMessage, GradientMessage, ModelMessage

__all__ = ["WorkerNode"]


class WorkerNode:
    """One asynchronous training worker (worker ``k`` of the paper)."""

    def __init__(
        self,
        worker_id: int,
        model: Module,
        batches: BatchIterator,
        strategy: WorkerStrategy,
        schedule: "Schedule | None" = None,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
    ) -> None:
        self.worker_id = worker_id
        self.model = model
        self.batches = batches
        self.strategy = strategy
        self.schedule = schedule if schedule is not None else ConstantLR(0.1)
        self.loss_fn = loss_fn
        self.iteration = 0
        self.last_loss: float = float("nan")
        self.samples_processed = 0
        self._params = dict(model.named_parameters())

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> float:
        """Local epoch (fractional) — drives the LR schedule."""
        return self.batches.batches_served / max(self.batches.batches_per_epoch, 1)

    def current_lr(self) -> float:
        return self.schedule(self.epoch)

    # ------------------------------------------------------------------
    def compute_step(self) -> GradientMessage:
        """Run one forward/backward pass and build the upload message."""
        x, y = self.batches.next_batch()
        logits = self.model(Tensor(x))
        loss = self.loss_fn(logits, y)
        self.model.zero_grad()
        loss.backward()
        self.last_loss = float(loss.data)
        self.samples_processed += len(x)

        grads = gradients_of(self.model)
        lr = self.current_lr()
        payload = self.strategy.prepare(grads, lr)
        self.strategy.on_iteration()
        msg = GradientMessage(self.worker_id, payload, self.iteration)
        self.iteration += 1
        return msg

    def apply_reply(self, reply: "DiffMessage | ModelMessage") -> None:
        """Update the local model from the server's answer.

        * :class:`DiffMessage`: ``θ ← θ + G`` (the ``SGD(θ, decode(G))`` of
          Algorithms 1/3 — G is a ready-to-apply delta);
        * :class:`ModelMessage`: replace the local model (vanilla ASGD).
        """
        if isinstance(reply, DiffMessage):
            add_payload(self._params, reply.payload)
        elif isinstance(reply, ModelMessage):
            copy_payload(self._params, reply.payload)
        else:
            raise TypeError(f"unexpected reply type {type(reply).__name__}")

    # ------------------------------------------------------------------
    def worker_state_bytes(self) -> int:
        """Strategy buffer memory at this worker (§5.6.2 accounting)."""
        return self.strategy.state_bytes()
