"""Scalar tracking utilities."""

from __future__ import annotations

import math

__all__ = ["AverageMeter", "EMAMeter"]


class AverageMeter:
    """Running mean/min/max/count of a scalar series."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def update(self, value: float, n: int = 1) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        value = float(value)
        self.count += n
        self.total += value * n
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def avg(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"AverageMeter({self.name}: avg={self.avg:.4f}, n={self.count})"


class EMAMeter:
    """Exponential moving average (used to smooth training-loss curves)."""

    def __init__(self, beta: float = 0.9) -> None:
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = beta
        self.value: float | None = None

    def update(self, x: float) -> float:
        x = float(x)
        self.value = x if self.value is None else self.beta * self.value + (1 - self.beta) * x
        return self.value
