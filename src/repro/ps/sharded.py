"""Sharded parameter server: partitioned state behind per-shard locks.

The single-lock :class:`~repro.ps.server.ParameterServer` serialises
*every* DGS update — gradient apply, model-difference tracking, secondary
compression — behind one mutex.  This module splits that critical section
N ways:

* a :class:`~repro.core.partition.PartitionMap` assigns whole layers to
  shards greedily by byte size (whole layers, because sparse encodings
  and secondary compression are per-layer, Eq. 6);
* each :class:`ParameterShard` is a full :class:`ParameterServer` over
  its layer subset — its own lock, its own sub-arena, its own per-worker
  ``v_k`` slices — so the Eq. 5 ASGD-equivalence invariant holds *per
  shard* and, because the shards' layer sets are disjoint and exhaustive,
  composes bitwise into the global invariant;
* :class:`ShardedParameterServer` is a lock-free front-end that fans one
  gradient message into per-shard sub-messages and reassembles the
  per-shard replies into a single downstream message in original layer
  order.

``num_shards=1`` collapses to today's path: :func:`repro.exec.common.
build_server` constructs a plain :class:`ParameterServer` then, so the
front-end never sits between a single lock and its callers.

Concurrency contract: the front-end owns **no** lock.  Shard locks are
acquired strictly one at a time (fan-out is sequential per request), so
no lock nests inside another and the LCK004 lock graph stays a set of
isolated shard nodes.  ``ParameterShard`` does not assign ``self._lock``
in its own ``__init__`` (it inherits the parent's), so static discovery
comes from its ``LOCK_CLASS_REGISTRY`` entry
(:mod:`repro.analysis.concurrency.registry`).
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from ..compression.stats import CompressionStats
from ..core.partition import PartitionMap
from ..obs import names as obs_names
from ..obs.tracer import current_tracer
from .messages import DiffMessage, GradientMessage, ModelMessage
from .server import ParameterServer, summarize_staleness

__all__ = ["ParameterShard", "ShardedParameterServer"]


class ParameterShard(ParameterServer):
    """One partition of a sharded server: a full PS over a layer subset.

    Everything — lock, tracker, meters, metrics — is inherited; the only
    specialisation is carrying the shard id (which the parent stamps onto
    its telemetry labels and trace lanes) and a shard-scoped default name
    for lock-registry enrollment.
    """

    def __init__(
        self,
        theta0: "Mapping[str, np.ndarray]",
        num_workers: int,
        shard_id: int,
        **kwargs: object,
    ) -> None:
        super().__init__(theta0, num_workers, shard=shard_id, **kwargs)

    def register_lock(self, registry, name: str | None = None) -> None:
        super().register_lock(registry, name or f"ps.shard{self.shard}")


class _MergedMeter:
    """Read-only ``.avg`` view over the shards' staleness meters.

    Every update fans to every shard, so each shard's meter holds exactly
    one observation per applied update and the mean of the shard means is
    the mean over all observations.
    """

    __slots__ = ("_meters",)

    def __init__(self, meters) -> None:
        self._meters = tuple(meters)

    @property
    def avg(self) -> float:
        return float(np.mean([m.avg for m in self._meters]))


class _MergedMetrics:
    """Read-only ``.snapshot()`` view concatenating the shards' registries.

    Series carry a ``shard`` label (stamped by the shard's own emit path),
    so concatenation cannot collide and downstream tooling can both slice
    per shard and aggregate across shards.
    """

    __slots__ = ("_shards",)

    def __init__(self, shards) -> None:
        self._shards = tuple(shards)

    def snapshot(self) -> "list[dict[str, object]]":
        return [rec for shard in self._shards for rec in shard.metrics.snapshot()]


class ShardedParameterServer:
    """Lock-free front-end fanning updates across :class:`ParameterShard` s.

    Presents the same surface the execution backends consume from a plain
    :class:`ParameterServer` (``handle`` / ``stats`` / ``staleness_summary``
    / ``metrics.snapshot`` / ``timestamp`` / ``global_model`` /
    ``server_state_bytes`` / ``register_lock``), so trainers are agnostic
    to sharding.

    Accounting semantics (see docs/execution.md): per-shard observations
    are *summed* — merged per-worker staleness counts are ``updates ×
    num_shards`` while means/percentiles are unchanged, and
    ``server_state_bytes`` sums the shards' disjoint slices back to the
    whole-model figure.
    """

    def __init__(
        self,
        theta0: "Mapping[str, np.ndarray]",
        num_workers: int,
        num_shards: int,
        downstream: str = "difference",
        **kwargs: object,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        itemsize = next(iter(theta0.values())).itemsize
        self.partition = PartitionMap(
            {k: v.shape for k, v in theta0.items()}, num_shards, itemsize=itemsize
        )
        self.num_shards = self.partition.num_shards
        self.downstream = downstream
        self.shards = [
            ParameterShard(
                dict((k, theta0[k]) for k in self.partition.layers(s)),
                num_workers,
                s,
                downstream=downstream,
                **kwargs,
            )
            for s in range(self.num_shards)
        ]
        #: byte-accounting sink recorded into by the channel layer — one
        #: per run, owned by the front-end (the shards' own stats objects
        #: stay untouched: the wire carries whole frames, not shard parts).
        self.stats = CompressionStats()
        self.staleness_meter = _MergedMeter([s.staleness_meter for s in self.shards])
        self.metrics = _MergedMetrics(self.shards)

    # ------------------------------------------------------------------
    def handle(self, msg: GradientMessage) -> "DiffMessage | ModelMessage":
        """Fan one upstream message across the shards, reassemble one reply.

        Shard locks are taken strictly one at a time — never nested — so
        the front-end adds no lock-ordering constraints.
        """
        t_start = time.perf_counter()
        parts = self.partition.split(msg.payload)
        replies = [
            shard.handle(GradientMessage(msg.worker_id, parts[s], msg.local_iteration))
            for s, shard in enumerate(self.shards)
        ]
        payload = self.partition.merge([r.payload for r in replies])
        # Per-shard timestamps advance in lockstep per request but may
        # interleave differently across concurrent workers; report the
        # most advanced view, matching the unsharded "state after my
        # update" semantics.
        t = max(r.server_timestamp for r in replies)
        staleness = max(r.staleness for r in replies)
        if self.downstream == "difference":
            reply: DiffMessage | ModelMessage = DiffMessage(
                msg.worker_id, payload, t, staleness
            )
        else:
            reply = ModelMessage(msg.worker_id, payload, t, staleness)

        tracer = current_tracer()
        if tracer.enabled:
            # Emitted after every shard lock is released (same rule as the
            # per-shard spans); covers split + N handles + merge.
            tracer.add_span(
                obs_names.SERVER_FANOUT,
                t_start,
                time.perf_counter(),
                cat="server",
                domain="wall",
                args={"worker": msg.worker_id, "shards": self.num_shards},
            )
        return reply

    def handle_shard(self, shard_id: int, msg: GradientMessage) -> "DiffMessage | ModelMessage":
        """Route a shard-addressed message straight to one shard.

        Transports that read the shard id off the frame header
        (:func:`repro.comm.frames.peek_shard`) dispatch here without
        touching the payload or the other shards.
        """
        return self.shards[shard_id].handle(msg)

    # ------------------------------------------------------------------
    def bootstrap_worker(self, worker_id: int) -> ModelMessage:
        """Admit a worker on every shard (locks taken one at a time, never
        nested) and reassemble the full-model join reply."""
        replies = [shard.bootstrap_worker(worker_id) for shard in self.shards]
        payload = self.partition.merge([r.payload for r in replies])
        t = max(r.server_timestamp for r in replies)
        return ModelMessage(worker_id, payload, t, 0)

    def worker_model(self, worker_id: int) -> "Mapping[str, np.ndarray]":
        """θ_0 + v_k reassembled across shards, original layer order."""
        return self.partition.merge(
            [shard.worker_model(worker_id) for shard in self.shards]
        )

    def worker_update_counts(self) -> "dict[int, int]":
        """Updates per worker — every shard sees every update, so shard
        counts agree; report the max so in-flight fan-outs stay monotone."""
        merged: "dict[int, int]" = {}
        for shard in self.shards:
            for worker, count in shard.worker_update_counts().items():
                merged[worker] = max(merged.get(worker, 0), count)
        return merged

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> "dict[str, object]":
        """Per-shard snapshots, one lock hold each (sequential, unnested)."""
        return {"shards": [shard.checkpoint_state() for shard in self.shards]}

    def restore_state(self, state: "Mapping[str, object]") -> None:
        shards_state = state["shards"]
        if len(shards_state) != self.num_shards:
            raise ValueError(
                f"checkpoint has {len(shards_state)} shards, server has {self.num_shards}"
            )
        for shard, shard_state in zip(self.shards, shards_state):
            shard.restore_state(shard_state)

    # ------------------------------------------------------------------
    def raw_staleness(self) -> "dict[int, list[int]]":
        """Per-worker staleness observations merged across shards.

        Concatenation, not averaging: each shard contributes one
        observation per update, so counts are ``updates × num_shards``
        while the distribution's location statistics are unchanged.
        """
        merged: "dict[int, list[int]]" = {}
        for shard in self.shards:
            for worker, values in shard.raw_staleness().items():
                merged.setdefault(worker, []).extend(values)
        return merged

    def staleness_summary(self) -> "dict[str, object]":
        """Exact staleness percentiles over the merged shard observations."""
        return summarize_staleness(self.raw_staleness())

    def global_model(self) -> "Mapping[str, np.ndarray]":
        """Materialise θ_t = θ_0 + M_t across shards, original layer order."""
        return self.partition.merge([shard.global_model() for shard in self.shards])

    @property
    def timestamp(self) -> int:
        """Server timestamp — every shard applies every update, so all
        shard clocks agree once the system quiesces; report the max so
        in-flight reads are still monotone."""
        return max(shard.timestamp for shard in self.shards)

    def server_state_bytes(self) -> int:
        """Sum of the shards' disjoint M/v_k/θ0 slices = whole-model bytes."""
        return sum(shard.server_state_bytes() for shard in self.shards)

    # ------------------------------------------------------------------
    def register_lock(self, registry, name: str = "ps") -> None:
        """Enroll every shard lock (``<name>.shard<i>``) in the registry."""
        for i, shard in enumerate(self.shards):
            shard.register_lock(registry, f"{name}.shard{i}")
