"""repro — reproduction of "Dual-Way Gradient Sparsification for
Asynchronous Distributed Deep Learning" (Yan et al., ICPP 2020).

Public surface:

* ``repro.core`` — DGS: SAMomentum, model-difference tracking, baselines
* ``repro.exec`` — unified Trainer front-end over pluggable execution backends
* ``repro.comm`` — typed frames + the channel layer under every backend
* ``repro.ps`` / ``repro.sim`` — parameter-server substrates (threads / virtual clock)
* ``repro.autograd`` / ``repro.nn`` — the from-scratch training substrate
* ``repro.compression`` — sparsifiers, quantiser, wire coding
* ``repro.data`` / ``repro.optim`` / ``repro.metrics`` — supporting pieces
* ``repro.harness`` — ready-made experiment runners for every table/figure
* ``repro.analysis`` — static analysis + runtime sanitizers for this repo
* ``repro.obs`` — unified tracing + metrics (spans, Chrome trace, profiling)
"""

from . import (
    analysis,
    autograd,
    comm,
    compression,
    core,
    data,
    exec,
    harness,
    metrics,
    nn,
    obs,
    optim,
    ps,
    sim,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "obs",
    "autograd",
    "nn",
    "data",
    "optim",
    "compression",
    "core",
    "exec",
    "comm",
    "ps",
    "sim",
    "metrics",
    "harness",
    "__version__",
]
