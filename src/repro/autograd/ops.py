"""Structured-array autograd ops: convolution and pooling via im2col.

These carry hand-written backward passes (rather than being composed from
primitives) because im2col/col2im is the vectorised formulation — a direct
loop over output pixels would be orders of magnitude slower in Python.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = ["im2col", "col2im", "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d"]


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N*OH*OW, C*kh*kw)."""
    n, c, h, w = x.shape
    oh, ow = _out_size(h, kh, stride, pad), _out_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided view: (N, C, kh, kw, OH, OW) without copying.
    sN, sC, sH, sW = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sN, sC, sH, sW, sH * stride, sW * stride),
        writeable=False,
    )
    cols = view.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold columns back to an image, summing overlapping contributions."""
    n, c, h, w = x_shape
    oh, ow = _out_size(h, kh, stride, pad), _out_size(w, kw, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, pad: int = 0) -> Tensor:
    """2-D cross-correlation: x (N,C,H,W) * weight (F,C,kh,kw) -> (N,F,OH,OW)."""
    n, c, h, w = x.shape
    f, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input has {c}, kernel expects {c2}")
    cols, oh, ow = im2col(x.data, kh, kw, stride, pad)
    wmat = weight.data.reshape(f, -1)  # (F, C*kh*kw)
    out = cols @ wmat.T  # (N*OH*OW, F)
    if bias is not None:
        out += bias.data
    out_data = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)
    result = Tensor(out_data)
    if is_grad_enabled() and any(p.requires_grad for p in parents):

        def backward(g: np.ndarray) -> None:
            gmat = g.transpose(0, 2, 3, 1).reshape(-1, f)  # (N*OH*OW, F)
            if weight.requires_grad:
                gw = gmat.T @ cols  # (F, C*kh*kw)
                weight._accumulate(gw.reshape(weight.shape))
            if bias is not None and bias.requires_grad:
                bias._accumulate(gmat.sum(axis=0))
            if x.requires_grad:
                gcols = gmat @ wmat  # (N*OH*OW, C*kh*kw)
                x._accumulate(col2im(gcols, (n, c, h, w), kh, kw, stride, pad))

        result.requires_grad = True
        result._parents = parents
        result._backward = backward
    return result


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over (kernel × kernel) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(x.data, kernel, kernel, stride, 0)
    cols = cols.reshape(n * oh * ow, c, kernel * kernel)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    out_data = out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)

    result = Tensor(out_data)
    if is_grad_enabled() and x.requires_grad:

        def backward(g: np.ndarray) -> None:
            gflat = g.transpose(0, 2, 3, 1).reshape(n * oh * ow, c)
            gcols = np.zeros((n * oh * ow, c, kernel * kernel), dtype=g.dtype)
            np.put_along_axis(gcols, argmax[:, :, None], gflat[:, :, None], axis=2)
            gcols = gcols.reshape(n * oh * ow, c * kernel * kernel)
            x._accumulate(col2im(gcols, (n, c, h, w), kernel, kernel, stride, 0))

        result.requires_grad = True
        result._parents = (x,)
        result._backward = backward
    return result


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over (kernel × kernel) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(x.data, kernel, kernel, stride, 0)
    cols = cols.reshape(n * oh * ow, c, kernel * kernel)
    out = cols.mean(axis=2)
    out_data = out.reshape(n, oh, ow, c).transpose(0, 3, 1, 2)

    result = Tensor(out_data)
    if is_grad_enabled() and x.requires_grad:

        def backward(g: np.ndarray) -> None:
            gflat = g.transpose(0, 2, 3, 1).reshape(n * oh * ow, c)
            gcols = np.repeat(gflat[:, :, None] / (kernel * kernel), kernel * kernel, axis=2)
            gcols = gcols.reshape(n * oh * ow, c * kernel * kernel)
            x._accumulate(col2im(gcols, (n, c, h, w), kernel, kernel, stride, 0))

        result.requires_grad = True
        result._parents = (x,)
        result._backward = backward
    return result


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions: (N,C,H,W) -> (N,C)."""
    return x.mean(axis=(2, 3))
