"""Run manifests and health gating — the durable artifact of one run.

Every traced/benchmarked run can leave a ``runs/<run_id>/`` directory:

* ``manifest.json`` — the resolved run configuration, backend, git SHA,
  wall times, and the full :class:`TrainResult` in its JSON form
  (``result.to_dict()``), so two runs are comparable long after the
  processes are gone;
* ``metrics.jsonl`` — one ``type: "metric"`` record per line (the
  server's per-worker staleness / lock-contention histogram series plus
  anything the workers shipped back);
* ``trace.json`` — the merged Chrome trace (all processes, both clock
  domains).

On top of the artifact sit three CLI verbs (``python -m repro.obs
report | compare | check``) and :class:`HealthSpec` — a declarative SLO
on *run health* (staleness p99, samples/sec, wall-clock skew between
workers) that :func:`evaluate_health` turns into a pass/fail gate for
benchmarks and CI.

This module deliberately knows nothing about the execution layer: the
result arrives duck-typed (anything with ``to_dict()``, or a plain
mapping), keeping the ``obs → metrics``-only import discipline intact.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import subprocess
import time
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping, Sequence

from ..metrics.tables import format_table
from .export import to_chrome_trace
from .metrics import quantile_from_counts
from .names import METRIC_SERVER_STALENESS

__all__ = [
    "HealthSpec",
    "HealthViolation",
    "evaluate_health",
    "git_sha",
    "load_manifest",
    "new_run_id",
    "render_compare",
    "render_report",
    "worker_skew_s",
    "write_run_dir",
]

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"
TRACE_NAME = "trace.json"

#: manifest schema version — bump on incompatible layout changes
MANIFEST_VERSION = 1


def new_run_id(now: "float | None" = None) -> str:
    """Sortable unique run id: UTC timestamp + random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(now))
    return f"{stamp}-{os.urandom(3).hex()}"


def git_sha(cwd: "str | pathlib.Path | None" = None) -> "str | None":
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _result_dict(result: Any) -> "dict[str, Any]":
    """Duck-typed view of a result: ``to_dict()`` if present, else mapping."""
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        return dict(to_dict())
    if isinstance(result, Mapping):
        return dict(result)
    raise TypeError(f"result must expose to_dict() or be a mapping, got {type(result).__name__}")


# ----------------------------------------------------------------------
# Worker wall-clock skew
# ----------------------------------------------------------------------
def worker_skew_s(records: "Iterable[Mapping[str, Any]]") -> "float | None":
    """Max spread of per-worker last-span end times (same clock domain).

    Groups wall-domain spans by the worker that emitted them (the
    ``worker`` span arg) and measures how far apart the workers' final
    span ends are — a straggling worker shows up as a large skew.
    Returns None when fewer than two workers produced spans.
    """
    last_end: dict[int, float] = {}
    for rec in records:
        if rec.get("type") != "span" or rec.get("domain", "wall") != "wall":
            continue
        worker = rec.get("args", {}).get("worker")
        if not isinstance(worker, int):
            continue
        end = float(rec["ts"]) + float(rec["dur"])
        if end > last_end.get(worker, float("-inf")):
            last_end[worker] = end
    if len(last_end) < 2:
        return None
    return max(last_end.values()) - min(last_end.values())


# ----------------------------------------------------------------------
# Writing and loading
# ----------------------------------------------------------------------
def write_run_dir(
    root: "str | pathlib.Path",
    result: Any,
    config: "Mapping[str, Any] | None" = None,
    run_id: "str | None" = None,
    records: "Sequence[Mapping[str, Any]] | None" = None,
    extra_meta: "Mapping[str, Any] | None" = None,
) -> pathlib.Path:
    """Write ``<root>/<run_id>/{manifest.json, metrics.jsonl, trace.json}``.

    ``records`` are merged span records (``tracer.records()``); when
    absent no trace.json is written and the manifest marks tracing off.
    Returns the run directory path.
    """
    rd = _result_dict(result)
    run_id = run_id or new_run_id()
    run_dir = pathlib.Path(root) / run_id
    run_dir.mkdir(parents=True, exist_ok=True)

    metric_records = [dict(m) for m in (rd.get("metrics") or [])]
    with open(run_dir / METRICS_NAME, "w") as fh:
        for rec in metric_records:
            fh.write(json.dumps(rec) + "\n")

    skew: "float | None" = None
    traced = bool(records)
    if traced:
        trace = to_chrome_trace(list(records), meta={"run_id": run_id})
        with open(run_dir / TRACE_NAME, "w") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        skew = worker_skew_s(records)

    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "run_id": run_id,
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "backend": rd.get("backend"),
        "method": rd.get("method"),
        "config": dict(config) if config else {},
        "result": rd,
        "worker_skew_s": skew,
        "files": {
            "metrics": METRICS_NAME,
            "trace": TRACE_NAME if traced else None,
        },
    }
    if extra_meta:
        manifest.update(dict(extra_meta))
    tmp = run_dir / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, default=str)
        fh.write("\n")
    tmp.replace(run_dir / MANIFEST_NAME)  # atomic: readers never see a torn manifest
    return run_dir


def load_manifest(run_dir: "str | pathlib.Path") -> "dict[str, Any]":
    """Read ``manifest.json`` from a run directory (or a manifest path)."""
    path = pathlib.Path(run_dir)
    if path.is_dir():
        path = path / MANIFEST_NAME
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Health gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HealthViolation:
    """One failed SLO: which limit, what the run measured."""

    check: str
    limit: float
    observed: float
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.check}: observed {self.observed:.6g} vs limit {self.limit:.6g}{extra}"


@dataclass(frozen=True)
class HealthSpec:
    """Declarative SLO on run health; None disables a check.

    * ``max_staleness_p99`` — the run's exact staleness p99 (falling back
      to the bucket-interpolated estimate from the server's histogram
      series when the result lacks the exact number) must not exceed it;
    * ``min_samples_per_sec`` — end-to-end throughput floor;
    * ``max_worker_skew_s`` — wall-clock spread between the workers' last
      spans (requires a traced run; an untraced manifest skips it).
    """

    max_staleness_p99: "float | None" = None
    min_samples_per_sec: "float | None" = None
    max_worker_skew_s: "float | None" = None

    @staticmethod
    def from_dict(data: "Mapping[str, Any]") -> "HealthSpec":
        known = {f.name for f in fields(HealthSpec)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown HealthSpec keys: {sorted(unknown)}")
        return HealthSpec(**{k: (None if v is None else float(v)) for k, v in data.items()})

    @staticmethod
    def from_file(path: "str | pathlib.Path") -> "HealthSpec":
        with open(path) as fh:
            return HealthSpec.from_dict(json.load(fh))


def _staleness_p99(manifest: "Mapping[str, Any]") -> "float | None":
    """Exact p99 from the result, else estimated from histogram series."""
    result = manifest.get("result", {})
    p99 = result.get("staleness_p99")
    if isinstance(p99, (int, float)) and not math.isnan(p99):
        return float(p99)
    worst: "float | None" = None
    for metric in result.get("metrics") or []:
        if metric.get("kind") != "histogram" or metric.get("name") != METRIC_SERVER_STALENESS:
            continue
        estimate = quantile_from_counts(metric["buckets"], metric["counts"], 0.99)
        if not math.isnan(estimate) and (worst is None or estimate > worst):
            worst = estimate
    return worst


def evaluate_health(
    manifest: "Mapping[str, Any]", spec: HealthSpec
) -> "list[HealthViolation]":
    """All SLO violations of ``manifest`` against ``spec`` (empty = healthy)."""
    violations: list[HealthViolation] = []
    result = manifest.get("result", {})

    if spec.max_staleness_p99 is not None:
        p99 = _staleness_p99(manifest)
        if p99 is None:
            violations.append(
                HealthViolation(
                    "max_staleness_p99",
                    spec.max_staleness_p99,
                    float("nan"),
                    "run reports no staleness observations",
                )
            )
        elif p99 > spec.max_staleness_p99:
            violations.append(
                HealthViolation("max_staleness_p99", spec.max_staleness_p99, p99)
            )

    if spec.min_samples_per_sec is not None:
        samples = result.get("samples_processed") or 0
        makespan = result.get("makespan_s")
        if not makespan or makespan <= 0:
            violations.append(
                HealthViolation(
                    "min_samples_per_sec",
                    spec.min_samples_per_sec,
                    float("nan"),
                    "run reports no makespan",
                )
            )
        else:
            rate = samples / makespan
            if rate < spec.min_samples_per_sec:
                violations.append(
                    HealthViolation("min_samples_per_sec", spec.min_samples_per_sec, rate)
                )

    if spec.max_worker_skew_s is not None:
        skew = manifest.get("worker_skew_s")
        # Untraced runs cannot measure skew; the check is skipped, not failed
        # (tracing is opt-in and the other gates still apply).
        if isinstance(skew, (int, float)) and skew > spec.max_worker_skew_s:
            violations.append(
                HealthViolation("max_worker_skew_s", spec.max_worker_skew_s, float(skew))
            )

    return violations


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
_REPORT_FIELDS = (
    ("final_loss", "{:.6g}"),
    ("final_accuracy", "{:.4f}"),
    ("total_iterations", "{}"),
    ("samples_processed", "{}"),
    ("makespan_s", "{:.6g}"),
    ("throughput", "{:.6g}"),
    ("mean_staleness", "{:.4g}"),
    ("staleness_p50", "{:.4g}"),
    ("staleness_p99", "{:.4g}"),
    ("upload_bytes", "{}"),
    ("download_bytes", "{}"),
    ("compression_ratio", "{:.4g}"),
)


def _fmt(value: Any, fmt: str) -> str:
    if value is None:
        return "-"
    try:
        return fmt.format(value)
    except (ValueError, TypeError):
        return str(value)


def render_report(manifest: "Mapping[str, Any]") -> str:
    """Human-readable summary of one run manifest."""
    result = manifest.get("result", {})
    header = (
        f"run {manifest.get('run_id', '?')} — "
        f"{result.get('method', '?')} on {result.get('backend', '?')} "
        f"({result.get('num_workers', '?')} workers)"
    )
    rows = [[name, _fmt(result.get(name), fmt)] for name, fmt in _REPORT_FIELDS]
    skew = manifest.get("worker_skew_s")
    rows.append(["worker_skew_s", _fmt(skew, "{:.6g}")])
    rows.append(["git_sha", str(manifest.get("git_sha") or "-")[:12]])
    per_worker = result.get("worker_staleness") or {}
    table = format_table(["field", "value"], rows, title=header)
    if not per_worker:
        return table
    wtable = format_table(
        ["worker", "updates", "mean", "p50", "p99"],
        [
            [
                w,
                summary.get("count", 0),
                _fmt(summary.get("mean"), "{:.4g}"),
                _fmt(summary.get("p50"), "{:.4g}"),
                _fmt(summary.get("p99"), "{:.4g}"),
            ]
            for w, summary in sorted(per_worker.items(), key=lambda kv: str(kv[0]))
        ],
        title="per-worker staleness",
    )
    return table + "\n\n" + wtable


def render_compare(a: "Mapping[str, Any]", b: "Mapping[str, Any]") -> str:
    """Side-by-side deltas between two run manifests (b relative to a)."""
    ra, rb = a.get("result", {}), b.get("result", {})
    rows = []
    for name, fmt in _REPORT_FIELDS:
        va, vb = ra.get(name), rb.get(name)
        delta = "-"
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            if not (math.isnan(float(va)) or math.isnan(float(vb))):
                diff = vb - va
                if va not in (0, 0.0):
                    delta = f"{diff:+.4g} ({100.0 * diff / va:+.1f}%)"
                else:
                    delta = f"{diff:+.4g}"
        rows.append([name, _fmt(va, fmt), _fmt(vb, fmt), delta])
    title = (
        f"{a.get('run_id', 'a')} ({ra.get('method', '?')}/{ra.get('backend', '?')})  vs  "
        f"{b.get('run_id', 'b')} ({rb.get('method', '?')}/{rb.get('backend', '?')})"
    )
    return format_table(["field", "a", "b", "delta (b-a)"], rows, title=title)
