"""Model Difference Tracking — the server side of DGS (§4.2, Algorithm 2).

The server never materialises per-worker models.  It keeps:

* ``M`` — the accumulation of all applied updates, ``M_t = θ_t − θ_0``
  (Eq. 2).  Updates arrive as per-layer values ``g`` already scaled by η,
  and are applied as ``M ← M − g`` (Eq. 1).
* ``v_k`` — per worker, the accumulation of everything already shipped to
  worker ``k`` (Eq. 3/6b).

On each exchange with worker ``k`` the server answers with the *model
difference* ``G = M − v_k`` (Eq. 3), optionally secondary-compressed
(Eq. 6a), then advances ``v_k ← v_k + G``.  Without secondary compression
``v_k == M`` after every exchange, which makes DGS exactly equivalent to
download-the-whole-model ASGD (Eq. 5) — the headline invariant of §4.2.1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

import numpy as np

from ..compression.base import Sparsifier
from ..compression.coding import SparseTensor, encode_best, encode_mask
from ..compression.workspace import KernelWorkspace
from .arena import LayerArena, make_layer_buffers

__all__ = ["ModelDifferenceTracker"]


class ModelDifferenceTracker:
    """Server state for dual-way sparsification (M, per-worker v_k).

    ``arena=True`` stores M and every v_k as
    :class:`~repro.core.arena.LayerArena` buffers (float32 unless ``dtype``
    overrides): applying an update or advancing v_k becomes one fused op
    over the flat buffer — shortening the server's lock hold — and the
    model-difference encode draws scratch from a tracker-owned
    :class:`KernelWorkspace`.  ``arena=False`` is the dict-of-float64
    reference path, bitwise-identical at equal dtype.
    """

    def __init__(
        self,
        shapes: Mapping[str, tuple[int, ...]],
        num_workers: int,
        secondary: Sparsifier | None = None,
        track_differences: bool = True,
        arena: bool = False,
        dtype: "np.dtype | type | str | None" = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.shapes = OrderedDict(shapes)
        self.num_workers = num_workers
        self.secondary = secondary
        self.track_differences = track_differences
        self.arena = bool(arena)
        #: construction-time dtype request, reused when a late joiner's
        #: v_k buffer is grown (the new buffer must match the old ones)
        self.buffer_dtype = dtype
        self.workspace: "KernelWorkspace | None" = KernelWorkspace() if self.arena else None
        self.M = make_layer_buffers(self.shapes, self.arena, dtype)
        # v_k buffers exist only under difference tracking — vanilla ASGD
        # downloads the whole model and pays no per-worker server memory.
        self.v = [
            make_layer_buffers(self.shapes, self.arena, dtype)
            for _ in range(num_workers if track_differences else 0)
        ]
        # Reused scratch arena for M − v_k (arena mode only; overwritten on
        # every model_difference call, never escapes the tracker).
        self._diff: "LayerArena | None" = (
            LayerArena(self.shapes, dtype=self.M.dtype) if self.arena else None
        )
        #: server timestamp t — incremented once per applied update (Table 1)
        self.t = 0
        #: prev(k): server timestamp of worker k's last download (Table 1)
        self.prev = [0] * num_workers

    # ------------------------------------------------------------------
    def apply_update(self, update: "Mapping[str, SparseTensor] | Mapping[str, np.ndarray]") -> int:
        """``M ← M − g`` (Eq. 1).  Returns the new server timestamp."""
        if self.arena:
            # One fused op for same-layout dense arenas; COO scatter /
            # to_dense fallbacks otherwise — same arithmetic either way.
            self.M.add_payload(update, scale=-1.0)
            self.t += 1
            return self.t
        for name, g in update.items():
            dest = self.M[name]
            if isinstance(g, SparseTensor):
                dest.reshape(-1)[g.indices] -= g.values
            elif hasattr(g, "to_dense"):  # quantised payloads (extensions)
                dest -= g.to_dense()
            else:
                dest -= g
        self.t += 1
        return self.t

    def model_difference(self, worker: int) -> "OrderedDict[str, SparseTensor]":
        """Compute, record, and return ``G_k`` for ``worker`` (Eq. 3/6).

        Side effects: ``v_k ← v_k + G`` and ``prev(k) ← t``.
        """
        if not self.track_differences:
            raise RuntimeError("model_difference() requires track_differences=True")
        vk = self.v[worker]
        out: OrderedDict[str, SparseTensor] = OrderedDict()
        if self.arena:
            # One fused subtraction for the whole difference, then per-layer
            # encode out of the scratch arena's views.
            diff = self._diff
            np.subtract(self.M.flat, vk.flat, out=diff.flat)
            for name in self.M:
                d = diff[name]
                if self.secondary is not None:
                    sent = self.secondary.select(d, self.workspace)
                    if sent is None:
                        sent = encode_mask(d, self.secondary.mask(d), self.workspace)
                    sent.add_into(vk[name])
                else:
                    sent = encode_best(d, self.workspace)
                out[name] = sent
            if self.secondary is None:
                vk.copy_(self.M)  # v_k == M (Eq. 3), one memcpy
            self.prev[worker] = self.t
            return out
        for name, m_layer in self.M.items():
            diff = m_layer - vk[name]
            if self.secondary is not None:
                mask = self.secondary.mask(diff)
                sent = encode_mask(diff, mask)
                # v_k advances only by what was actually sent (Eq. 6b) —
                # the remainder is implicitly accumulated for later.
                sent.add_into(vk[name])
            else:
                # G densifies with staleness; pick the cheapest wire format
                # per layer (COO / bitmap / dense — see encode_best).
                sent = encode_best(diff)
                np.copyto(vk[name], m_layer)  # v_k == M (Eq. 3)
            out[name] = sent
        self.prev[worker] = self.t
        return out

    def staleness(self, worker: int) -> int:
        """Updates applied at the server since this worker last synced."""
        return self.t - self.prev[worker]

    # ------------------------------------------------------------------
    def bootstrap_worker(self, worker: int) -> None:
        """Admit ``worker`` (growing state if it is new): ``v_k ← M_t``,
        ``prev(k) ← t``.

        The elastic-membership state transition (a late joiner downloads
        θ_t, so everything ever applied has by definition been shipped to
        it — ``v_k == M_t`` is exactly the Eq. 5 invariant at join time).
        Idempotent for existing workers: re-bootstrapping just refreshes
        their ``v_k`` to the current ``M``, which is what a reconnect
        after a full-model download means.
        """
        if worker < 0:
            raise ValueError(f"worker id must be >= 0, got {worker}")
        if worker >= self.num_workers:
            if self.track_differences:
                self.v.extend(
                    make_layer_buffers(self.shapes, self.arena, self.buffer_dtype)
                    for _ in range(worker + 1 - self.num_workers)
                )
            self.prev.extend([0] * (worker + 1 - self.num_workers))
            self.num_workers = worker + 1
        if self.track_differences:
            vk = self.v[worker]
            if self.arena:
                vk.copy_(self.M)
            else:
                for name, m_layer in self.M.items():
                    np.copyto(vk[name], m_layer)
        self.prev[worker] = self.t

    def worker_model(self, theta0: Mapping[str, np.ndarray], worker: int) -> "Mapping[str, np.ndarray]":
        """Materialise the model worker ``k`` holds: θ_0 + v_k (Eq. 3 view).

        Without difference tracking (vanilla ASGD) the worker holds the
        full global model from its last download, which — under the strict
        request→reply cycle — is θ_t.
        """
        if not self.track_differences:
            return self.global_model(theta0)
        vk = self.v[worker]
        if (
            self.arena
            and isinstance(theta0, LayerArena)
            and theta0.same_layout(vk)
        ):
            return theta0.clone().add_(vk)
        return OrderedDict((name, theta0[name] + vk[name]) for name in self.M)

    # ------------------------------------------------------------------
    def global_model(self, theta0: Mapping[str, np.ndarray]) -> "Mapping[str, np.ndarray]":
        """Materialise θ_t = θ_0 + M_t (Eq. 2) — used for evaluation."""
        if (
            self.arena
            and isinstance(theta0, LayerArena)
            and theta0.same_layout(self.M)
        ):
            return theta0.clone().add_(self.M)  # one fused θ0 + M
        return OrderedDict((name, theta0[name] + self.M[name]) for name in self.M)

    def state_dict(self) -> "dict[str, np.ndarray]":
        """Snapshot M, every v_k, t, and prev(k) for checkpointing."""
        state: dict[str, np.ndarray] = {"t": np.array(self.t), "prev": np.array(self.prev)}
        for name, arr in self.M.items():
            state[f"M/{name}"] = arr.copy()
        for k, vk in enumerate(self.v):
            for name, arr in vk.items():
                state[f"v{k}/{name}"] = arr.copy()
        return state

    def load_state_dict(self, state: "Mapping[str, np.ndarray]") -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.t = int(state["t"])
        prev = [int(x) for x in np.asarray(state["prev"]).reshape(-1)]
        if len(prev) != self.num_workers:
            raise ValueError(
                f"checkpoint has {len(prev)} workers, tracker expects {self.num_workers}"
            )
        self.prev = prev
        for name, arr in self.M.items():
            np.copyto(arr, state[f"M/{name}"])
        for k, vk in enumerate(self.v):
            for name, arr in vk.items():
                np.copyto(arr, state[f"v{k}/{name}"])

    # ------------------------------------------------------------------
    def flat_state(self) -> "list[np.ndarray]":
        """``[M, v_0, …, v_{K-1}]``, each as one contiguous 1-D array.

        The checkpoint payload: in arena mode these are zero-copy views of
        the flat backing buffers (the caller copies if it needs isolation);
        the dict reference path concatenates per layer.  Layer order is
        ``self.shapes`` order, which both representations share.
        """
        return [_flatten_buffers(self.M)] + [_flatten_buffers(vk) for vk in self.v]

    def load_flat_state(self, buffers: "list[np.ndarray]") -> None:
        """Restore :meth:`flat_state` output (``M`` first, then each v_k).

        Grows the worker set if the checkpoint carries more v_k buffers
        than this tracker currently has (a checkpoint taken after elastic
        joins restores into a tracker built at the original size).
        """
        if not buffers:
            raise ValueError("flat state needs at least the M buffer")
        n_v = len(buffers) - 1
        if self.track_differences and n_v > len(self.v):
            self.bootstrap_worker(n_v - 1)  # grow v/prev to checkpoint size
        elif not self.track_differences and n_v != 0:
            raise ValueError("checkpoint has v_k buffers but tracking is off")
        elif self.track_differences and n_v < len(self.v):
            raise ValueError(
                f"checkpoint has {n_v} v_k buffers, tracker has {len(self.v)} workers"
            )
        _load_flat(self.M, buffers[0])
        for vk, buf in zip(self.v, buffers[1:]):
            _load_flat(vk, buf)

    def server_state_bytes(self) -> int:
        """Memory held by M plus every v_k (the §5.6.2 accounting:
        ``NumOfWorkers × ParameterMemOfModel`` for the v's, + one M)."""
        m_bytes = sum(arr.nbytes for arr in self.M.values())
        v_bytes = sum(sum(arr.nbytes for arr in vk.values()) for vk in self.v)
        return m_bytes + v_bytes


def _flatten_buffers(buffers: "LayerArena | Mapping[str, np.ndarray]") -> np.ndarray:
    """One contiguous 1-D view/copy of a layer buffer set (shapes order)."""
    if isinstance(buffers, LayerArena):
        return buffers.flat  # already one contiguous buffer: zero copy
    return np.concatenate([arr.reshape(-1) for arr in buffers.values()])


def _load_flat(buffers: "LayerArena | Mapping[str, np.ndarray]", flat: np.ndarray) -> None:
    """Scatter one contiguous 1-D array back into a layer buffer set."""
    if isinstance(buffers, LayerArena):
        if flat.size != buffers.flat.size:
            raise ValueError(
                f"flat buffer has {flat.size} elements, arena holds {buffers.flat.size}"
            )
        np.copyto(buffers.flat, flat)
        return
    offset = 0
    for arr in buffers.values():
        np.copyto(arr, flat[offset : offset + arr.size].reshape(arr.shape))
        offset += arr.size
    if offset != flat.size:
        raise ValueError(f"flat buffer has {flat.size} elements, layers hold {offset}")
