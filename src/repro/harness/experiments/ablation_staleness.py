"""Extension ablation — gap-aware staleness damping (the paper's ref. [4]).

The paper cites Barkai et al. ("Gap Aware Mitigation of Gradient
Staleness") as the source of its momentum-ASGD formulation.  This bench
measures what the damping (scale updates by ``1/(staleness+1)``) does to
ASGD and to DGS at a high worker count — complementary to DGS's own answer
to staleness (SAMomentum).
"""

from __future__ import annotations

from ..config import get_workload
from ..report import ExperimentReport
from ..runners import run_distributed
from .common import resolve_fast, scaled_batch, scaling_hyper

__all__ = ["run"]


def run(fast: bool | None = None, seeds: tuple[int, ...] = (0,)) -> ExperimentReport:
    fast = resolve_fast(fast)
    num_workers = 4 if fast else 16
    wl = get_workload("cifar10")
    seed = seeds[0]
    bs = scaled_batch(num_workers)
    hyper = scaling_hyper(wl, num_workers)

    report = ExperimentReport(
        experiment_id="Ablation (staleness damping)",
        title=f"Gap-aware update damping at {num_workers} workers",
        headers=("Method", "Damping", "Top-1 Accuracy", "Mean staleness"),
    )
    for method in ("asgd", "dgs"):
        for damping in (False, True):
            r = run_distributed(
                method, wl, num_workers, batch_size=bs, hyper=hyper,
                staleness_damping=damping, fast=fast, seed=seed,
            )
            report.add_row(
                method.upper(),
                "on" if damping else "off",
                f"{100 * r.final_accuracy:.2f}%",
                f"{r.mean_staleness:.1f}",
            )
    report.add_note(
        "Expected shape: damping softens stale ASGD updates (accuracy change small "
        "at this scale, effective LR drops by ~1/(N)); DGS needs no damping — "
        "SAMomentum already absorbs staleness into per-parameter batch size."
    )
    return report
