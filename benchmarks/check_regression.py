"""Micro-kernel performance regression gate.

Times the reference/optimised kernel pairs from ``kernel_pairs.py`` and
compares the measured **speedup ratios** (reference time / optimised time)
against the committed baseline in ``benchmarks/BENCH_kernels.json``.
Ratios — not absolute times — are what the baseline records, so the gate
is meaningful on any machine: a real regression in the optimised path
shrinks the ratio everywhere.

Usage::

    python benchmarks/check_regression.py           # gate (CI): fail on
                                                    #   >1.3x ratio erosion
    python benchmarks/check_regression.py --update  # re-measure and
                                                    #   rewrite the baseline

The baseline must also keep the headline claim honest: at least
``MIN_WINS`` of the gated kernels (top-k select, COO encode, payload
apply) must show a >= 1.5x speedup, or ``--update`` refuses to write it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from kernel_pairs import GATED, MIN_WINS, N, RATIO, make_pairs  # noqa: E402

BASELINE = pathlib.Path(__file__).parent / "BENCH_kernels.json"

#: a kernel fails the gate when its ratio drops below baseline / TOLERANCE
TOLERANCE = 1.3
#: the committed baseline must show this speedup on >= MIN_WINS gated kernels
REQUIRED_SPEEDUP = 1.5


def _time(fn, repeats: int = 7, min_sample_s: float = 0.02) -> float:
    """Best-of-``repeats`` seconds per call (loops short calls up)."""
    fn()  # warmup (allocations, branch caches)
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    number = max(1, int(min_sample_s / max(once, 1e-9)))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def measure() -> "dict[str, dict[str, float]]":
    out: "dict[str, dict[str, float]]" = {}
    for name, (ref, opt) in make_pairs().items():
        ref_s = _time(ref)
        opt_s = _time(opt)
        out[name] = {
            "ref_ms": round(ref_s * 1e3, 4),
            "opt_ms": round(opt_s * 1e3, 4),
            "speedup": round(ref_s / opt_s, 3),
        }
    return out


def _print_table(rows: "dict[str, dict[str, float]]", baseline=None) -> None:
    hdr = f"{'kernel':20s} {'ref ms':>10s} {'opt ms':>10s} {'speedup':>8s}"
    if baseline:
        hdr += f" {'baseline':>9s} {'floor':>7s}"
    print(hdr)
    for name, row in rows.items():
        line = f"{name:20s} {row['ref_ms']:10.3f} {row['opt_ms']:10.3f} {row['speedup']:7.2f}x"
        if baseline and name in baseline:
            base = baseline[name]["speedup"]
            line += f" {base:8.2f}x {base / TOLERANCE:6.2f}x"
        print(line)


def cmd_update() -> int:
    rows = measure()
    wins = sum(1 for k in GATED if rows[k]["speedup"] >= REQUIRED_SPEEDUP)
    _print_table(rows)
    if wins < MIN_WINS:
        print(
            f"refusing to write baseline: only {wins}/{len(GATED)} gated kernels "
            f"reach {REQUIRED_SPEEDUP}x (need {MIN_WINS}); the optimised path "
            "no longer earns its keep",
            file=sys.stderr,
        )
        return 1
    BASELINE.write_text(
        json.dumps(
            {
                "n": N,
                "ratio": RATIO,
                "tolerance": TOLERANCE,
                "kernels": rows,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"baseline written to {BASELINE} ({wins}/{len(GATED)} gated kernels >= {REQUIRED_SPEEDUP}x)")
    return 0


def cmd_check() -> int:
    if not BASELINE.exists():
        print(f"missing baseline {BASELINE}; run with --update first", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE.read_text())["kernels"]
    rows = measure()
    _print_table(rows, baseline)
    failures = []
    for name, base in baseline.items():
        if name not in rows:
            failures.append(f"{name}: in baseline but no longer measured")
            continue
        got = rows[name]["speedup"]
        floor = base["speedup"] / TOLERANCE
        if got < floor:
            failures.append(
                f"{name}: speedup {got:.2f}x fell below {floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x / {TOLERANCE})"
            )
    if failures:
        print("\nPERFORMANCE REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nok: all kernel speedups within tolerance of the committed baseline")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--update", action="store_true", help="re-measure and rewrite the baseline")
    args = ap.parse_args(argv)
    return cmd_update() if args.update else cmd_check()


if __name__ == "__main__":
    raise SystemExit(main())
