#!/usr/bin/env python
"""Observability: stream per-step telemetry to JSONL and render charts.

Attaches a :class:`repro.metrics.RunLogger` to a simulated DGS run, writes
one JSON record per applied update (step, virtual time, worker, loss,
staleness, bytes), reloads the log, and renders loss + staleness charts to
SVG — the offline equivalent of a TensorBoard scalar stream.

Usage:  python examples/telemetry.py [--fast] [--out-dir /tmp]
"""

import argparse
import pathlib
from collections import Counter

from repro.exec import RunConfig, train
from repro.harness import get_workload, paper_cluster
from repro.metrics import RunLogger, load_runlog, save_svg


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--out-dir", default=".", help="where to write run.jsonl and charts")
    args = parser.parse_args()
    out = pathlib.Path(args.out_dir)

    workload = get_workload("cifar10")
    dataset = workload.dataset(args.fast)
    factory = workload.model_factory(seed=0)
    total_iters = max(1, workload.epochs * dataset.n_train // workload.batch_size)

    log_path = out / "run.jsonl"
    with RunLogger(log_path, meta={"method": "dgs", "workers": 4}) as logger:
        result = train(
            RunConfig(
                "dgs", factory, dataset,
                num_workers=4,
                batch_size=workload.batch_size,
                total_iterations=total_iters,
                hyper=workload.hyper,
                schedule=workload.schedule(),
                cluster=paper_cluster(4, 10.0, factory()),
                logger=logger,
                seed=0,
            ),
            backend="simulated",
        )
    print(f"trained: acc={100 * result.final_accuracy:.2f}%  log: {log_path}")

    # Reload (as an analysis script would) and render charts.
    log = load_runlog(log_path)
    steps = log.steps()
    save_svg(out / "loss.svg", {"DGS": log.curve("loss", "time_s")},
             title="training loss vs virtual time", xlabel="s", ylabel="loss", logy=True)
    save_svg(out / "staleness.svg", {"staleness": log.curve("staleness", "step")},
             title="gradient staleness per update", xlabel="step", ylabel="staleness")
    print(f"charts: {out / 'loss.svg'}, {out / 'staleness.svg'}")

    per_worker = Counter(r["worker"] for r in steps)
    print("updates per worker:", dict(sorted(per_worker.items())))
    mean_stale = sum(r["staleness"] for r in steps) / len(steps)
    print(f"mean staleness: {mean_stale:.2f} (≈ workers − 1 for a balanced cluster)")


if __name__ == "__main__":
    main()
