"""Gap-aware damping through the full runner path (harness → sim → server)."""

import pytest

from repro.harness import get_workload, run_distributed


@pytest.fixture(scope="module")
def wl():
    return get_workload("blobs")


class TestDampingThroughHarness:
    def test_runner_threads_flag(self, wl):
        base = run_distributed("asgd", wl, 3, fast=True, epochs=1, seed=0)
        damped = run_distributed(
            "asgd", wl, 3, fast=True, epochs=1, seed=0, staleness_damping=True
        )
        # identical everything else → only the damping changed the outcome
        assert base.total_iterations == damped.total_iterations
        assert base.final_loss != damped.final_loss

    def test_damping_off_by_default(self, wl):
        a = run_distributed("asgd", wl, 3, fast=True, epochs=1, seed=0)
        b = run_distributed("asgd", wl, 3, fast=True, epochs=1, seed=0)
        assert a.final_loss == b.final_loss  # determinism sanity

    def test_single_worker_damping_is_noop(self, wl):
        """staleness is always 0 with one worker → damping changes nothing."""
        a = run_distributed("asgd", wl, 1, fast=True, epochs=1, seed=0)
        b = run_distributed("asgd", wl, 1, fast=True, epochs=1, seed=0, staleness_damping=True)
        assert a.final_loss == b.final_loss
