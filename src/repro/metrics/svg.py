"""Minimal SVG line-chart renderer (no plotting library available offline).

Produces standalone .svg files for the paper's figures: multiple series,
axes with tick labels, a legend, optional log-scale y.  Kept deliberately
simple — the benchmarks write one chart per figure into
``benchmarks/results/``.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from .curves import Curve

__all__ = ["render_svg", "save_svg"]

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf")
_W, _H = 640, 400
_ML, _MR, _MT, _MB = 64, 16, 36, 48  # margins


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / n
    mag = 10 ** math.floor(math.log10(raw))
    step = min(s * mag for s in (1, 2, 5, 10) if s * mag >= raw)
    start = math.ceil(lo / step) * step
    out = []
    t = start
    while t <= hi + 1e-12 * step:
        out.append(round(t, 12))
        t += step
    return out or [lo]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-2:
        return f"{v:.1e}"
    return f"{v:g}"


def render_svg(
    curves: "Mapping[str, Curve] | Mapping[str, tuple[Sequence[float], Sequence[float]]]",
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    logy: bool = False,
) -> str:
    """Render named series into a standalone SVG document string."""
    series: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, c in curves.items():
        xs, ys = (c.xs, c.ys) if isinstance(c, Curve) else c
        xs, ys = np.asarray(xs, float), np.asarray(ys, float)
        if logy:
            keep = ys > 0
            xs, ys = xs[keep], np.log10(ys[keep])
        if len(xs):
            series[name] = (xs, ys)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
    ]
    if title:
        parts.append(f'<text x="{_W / 2}" y="20" text-anchor="middle" font-size="14">{title}</text>')

    if not series:
        parts.append(f'<text x="{_W / 2}" y="{_H / 2}" text-anchor="middle">(no data)</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    xmin = min(s[0].min() for s in series.values())
    xmax = max(s[0].max() for s in series.values())
    ymin = min(s[1].min() for s in series.values())
    ymax = max(s[1].max() for s in series.values())
    if xmax == xmin:
        xmax = xmin + 1
    if ymax == ymin:
        ymax = ymin + 1
    pw, ph = _W - _ML - _MR, _H - _MT - _MB

    def sx(x: float) -> float:
        return _ML + (x - xmin) / (xmax - xmin) * pw

    def sy(y: float) -> float:
        return _MT + (ymax - y) / (ymax - ymin) * ph

    # Axes + grid + ticks.
    parts.append(
        f'<rect x="{_ML}" y="{_MT}" width="{pw}" height="{ph}" fill="none" stroke="#888"/>'
    )
    for t in _ticks(xmin, xmax):
        parts.append(f'<line x1="{sx(t):.1f}" y1="{_MT + ph}" x2="{sx(t):.1f}" y2="{_MT + ph + 4}" stroke="#555"/>')
        parts.append(
            f'<text x="{sx(t):.1f}" y="{_MT + ph + 18}" text-anchor="middle">{_fmt(t)}</text>'
        )
    for t in _ticks(ymin, ymax):
        label = _fmt(10**t) if logy else _fmt(t)
        parts.append(f'<line x1="{_ML}" y1="{sy(t):.1f}" x2="{_ML - 4}" y2="{sy(t):.1f}" stroke="#555"/>')
        parts.append(
            f'<line x1="{_ML}" y1="{sy(t):.1f}" x2="{_ML + pw}" y2="{sy(t):.1f}" stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{_ML - 8}" y="{sy(t) + 4:.1f}" text-anchor="end">{label}</text>'
        )
    if xlabel:
        parts.append(f'<text x="{_ML + pw / 2}" y="{_H - 8}" text-anchor="middle">{xlabel}</text>')
    if ylabel:
        ylab = f"log10({ylabel})" if logy else ylabel
        parts.append(
            f'<text x="14" y="{_MT + ph / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {_MT + ph / 2})">{ylab}</text>'
        )

    # Series polylines + legend.
    for i, (name, (xs, ys)) in enumerate(series.items()):
        color = _COLORS[i % len(_COLORS)]
        pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
        parts.append(f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.8"/>')
        ly = _MT + 14 + 16 * i
        parts.append(f'<line x1="{_ML + pw - 130}" y1="{ly}" x2="{_ML + pw - 108}" y2="{ly}" stroke="{color}" stroke-width="2.5"/>')
        parts.append(f'<text x="{_ML + pw - 102}" y="{ly + 4}">{name}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path, curves, **kwargs) -> None:
    """Render and write an SVG chart to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_svg(curves, **kwargs))
