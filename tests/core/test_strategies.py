"""Worker strategies: the paper's Algorithms 1 and 3 plus baselines.

The decisive invariants:

* Gradient Dropping conserves mass: Σ(sent) + residual == Σ(η∇) always.
* SAMomentum telescoping (Eq. 16): over any interval where a coordinate is
  unsent, ``u_{c+T} = m·u_c + η·Σ∇`` — equivalent to an enlarged batch
  (Eq. 17).
* SAMomentum at R=100% is *exactly* dense momentum (T=1 case).
* DGC momentum factor masking zeroes u and v at sent coordinates.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.compression import SparseTensor, TopKSparsifier
from repro.core.strategies import (
    DenseStrategy,
    DGCStrategy,
    GradientDroppingStrategy,
    SAMomentumStrategy,
    SparsityRamp,
)

SHAPES = OrderedDict([("w", (40,)), ("b", (10,))])


def grads_from(rng):
    return OrderedDict((n, rng.normal(size=s)) for n, s in SHAPES.items())


def payload_dense(payload):
    return OrderedDict(
        (n, p.to_dense() if isinstance(p, SparseTensor) else p) for n, p in payload.items()
    )


class TestDenseStrategy:
    def test_sends_scaled_gradient(self, rng):
        st = DenseStrategy(SHAPES)
        g = grads_from(rng)
        out = st.prepare(g, lr=0.5)
        np.testing.assert_allclose(out["w"], 0.5 * g["w"])

    def test_no_state(self):
        assert DenseStrategy(SHAPES).state_bytes() == 0

    def test_not_sparse(self):
        assert DenseStrategy.sparse_output is False


class TestGradientDropping:
    def make(self, ratio=0.1):
        return GradientDroppingStrategy(SHAPES, TopKSparsifier(ratio, min_sparse_size=0))

    def test_mass_conservation(self, rng):
        """sent-so-far + residual == η·Σ∇ exactly (Algorithm 1)."""
        st = self.make()
        lr = 0.1
        total_sent = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        total_grad = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        for _ in range(20):
            g = grads_from(rng)
            out = st.prepare(g, lr)
            for n in SHAPES:
                total_sent[n] += out[n].to_dense()
                total_grad[n] += lr * g[n]
        for n in SHAPES:
            # atol covers float32 wire rounding of the sent values.
            np.testing.assert_allclose(total_sent[n] + st.residual[n], total_grad[n], atol=1e-5)

    def test_sends_topk_of_residual(self, rng):
        st = self.make(ratio=0.1)
        g = grads_from(rng)
        out = st.prepare(g, lr=1.0)
        assert out["w"].nnz == 4  # 10% of 40

    def test_residual_zeroed_at_sent(self, rng):
        st = self.make()
        out = st.prepare(grads_from(rng), lr=1.0)
        sent_idx = out["w"].indices
        np.testing.assert_array_equal(st.residual["w"].reshape(-1)[sent_idx], 0.0)

    def test_small_gradients_eventually_sent(self):
        st = self.make(ratio=0.1)
        g = OrderedDict([("w", np.full(40, 0.01)), ("b", np.zeros(10))])
        sent_indices = set()
        for _ in range(10):
            out = st.prepare(g, lr=1.0)
            sent_indices.update(out["w"].indices.tolist())
        assert len(sent_indices) == 40  # everyone's turn comes

    def test_state_bytes(self):
        st = self.make()
        assert st.state_bytes() == (40 + 10) * 8


class TestSAMomentum:
    def test_dense_ratio_equals_vanilla_momentum(self, rng):
        """R=100% ⇒ SAMomentum sends exactly the dense velocity (Eq. 16, T=1)."""
        m, lr = 0.7, 0.1
        st = SAMomentumStrategy(SHAPES, TopKSparsifier(1.0, min_sparse_size=0), momentum=m)
        u_ref = OrderedDict((n, np.zeros(s)) for n, s in SHAPES.items())
        for _ in range(10):
            g = grads_from(rng)
            out = st.prepare(g, lr)
            for n in SHAPES:
                u_ref[n] = m * u_ref[n] + lr * g[n]
                np.testing.assert_allclose(out[n].to_dense(), u_ref[n], atol=1e-12)

    def test_eq15_rescale(self, rng):
        """After prepare: sent coords hold m·u+ηg; unsent hold (m·u+ηg)/m."""
        m, lr = 0.5, 1.0
        st = SAMomentumStrategy(SHAPES, TopKSparsifier(0.1, min_sparse_size=0), momentum=m)
        g1 = grads_from(rng)
        st.prepare(g1, lr)
        u_after_1 = {n: st.u[n].copy() for n in SHAPES}
        g2 = grads_from(rng)
        out2 = st.prepare(g2, lr)
        for n in SHAPES:
            velocity = m * u_after_1[n] + lr * g2[n]
            mask = np.zeros(SHAPES[n], dtype=bool).reshape(-1)
            mask[out2[n].indices] = True
            mask = mask.reshape(SHAPES[n])
            np.testing.assert_allclose(st.u[n][mask], velocity[mask], atol=1e-12)
            np.testing.assert_allclose(st.u[n][~mask], velocity[~mask] / m, atol=1e-12)

    def test_telescoping_eq16(self):
        """For a never-sent coordinate: u after T steps = u0·m... telescopes to
        m·u_c + η·Σ∇ when finally multiplied by m (Eq. 16)."""
        m, lr = 0.7, 0.1
        shapes = OrderedDict([("w", (4,))])
        st = SAMomentumStrategy(shapes, TopKSparsifier(0.25, min_sparse_size=0), momentum=m)
        # Coordinate 0 gets huge gradients (always sent); 1..3 get small,
        # consistent gradients (never sent until accumulated).
        gsum = np.zeros(4)
        T = 5
        for _ in range(T):
            g = OrderedDict([("w", np.array([100.0, 0.01, 0.012, 0.011]))])
            st.prepare(g, lr)
            gsum += lr * g["w"]
        # For unsent coords, m * u == η Σ∇ (u0 = 0): the paper's identity.
        np.testing.assert_allclose(m * st.u["w"][1:], gsum[1:], atol=1e-12)

    def test_no_residual_buffer(self):
        st = SAMomentumStrategy(SHAPES, TopKSparsifier(0.1), momentum=0.7)
        # single buffer u only: memory == one model copy (§5.6.2)
        assert st.state_bytes() == (40 + 10) * 8

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SAMomentumStrategy(SHAPES, TopKSparsifier(0.1), momentum=0.0)
        with pytest.raises(ValueError):
            SAMomentumStrategy(SHAPES, TopKSparsifier(0.1), momentum=1.0)


class TestSparsityRamp:
    def test_reaches_final(self):
        ramp = SparsityRamp(0.01, warmup_epochs=4, start_ratio=0.25, iterations_per_epoch=10)
        assert ramp.ratio_at(0) == pytest.approx(0.25)
        assert ramp.ratio_at(40) == pytest.approx(0.01)
        assert ramp.ratio_at(1000) == pytest.approx(0.01)

    def test_monotone_decreasing(self):
        ramp = SparsityRamp(0.01, warmup_epochs=4, start_ratio=0.25, iterations_per_epoch=5)
        rs = [ramp.ratio_at(i) for i in range(0, 30, 5)]
        assert all(a >= b for a, b in zip(rs, rs[1:]))

    def test_dgc_reference_schedule(self):
        """75% → 93.75% → 98.4% → 99.6% sparsity over 4 epochs (Lin et al.)."""
        ramp = SparsityRamp(0.004, warmup_epochs=4, start_ratio=0.25, iterations_per_epoch=1)
        assert ramp.ratio_at(0) == pytest.approx(0.25)
        assert ramp.ratio_at(1) == pytest.approx(0.0887, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparsityRamp(0.0)
        with pytest.raises(ValueError):
            SparsityRamp(0.1, iterations_per_epoch=0)


class TestDGC:
    def make(self, **kw):
        defaults = dict(ratio=0.1, momentum=0.7, ramp=None, clip_norm=None, min_sparse_size=0)
        defaults.update(kw)
        return DGCStrategy(OrderedDict(SHAPES), **defaults)

    def test_factor_masking_zeroes_u_and_v(self, rng):
        st = self.make()
        out = st.prepare(grads_from(rng), lr=0.1)
        idx = out["w"].indices
        np.testing.assert_array_equal(st.u["w"].reshape(-1)[idx], 0.0)
        np.testing.assert_array_equal(st.v["w"].reshape(-1)[idx], 0.0)

    def test_momentum_correction_accumulates_velocity(self, rng):
        """v accumulates u (velocity), not raw gradient."""
        st = self.make(momentum=0.5)
        g = OrderedDict([("w", np.full(40, 0.001)), ("b", np.zeros(10))])
        # tiny gradients: nothing sent from w beyond top-k picks; check v
        st.prepare(g, lr=1.0)
        st.prepare(g, lr=1.0)
        # never-sent coordinate: v = u1 + u2 = g + (0.5 g + g) = 0.0025;
        # sent-in-round-1 coordinate restarts: v = g = 0.001
        unsent = np.unique(np.round(st.v["w"][st.v["w"] != 0], 12))
        np.testing.assert_allclose(sorted(unsent), [0.001, 0.0025], rtol=1e-9)

    def test_clip_norm_limits_gradient(self, rng):
        st = self.make(clip_norm=0.001)
        g = grads_from(rng)
        out = st.prepare(g, lr=1.0)
        total = np.abs(np.concatenate([out[n].to_dense().reshape(-1) for n in SHAPES])).sum()
        assert total < 0.01

    def test_clip_does_not_mutate_caller_grads(self, rng):
        st = self.make(clip_norm=0.001)
        g = grads_from(rng)
        before = g["w"].copy()
        st.prepare(g, lr=1.0)
        np.testing.assert_array_equal(g["w"], before)

    def test_ramp_is_used(self, rng):
        ramp = SparsityRamp(0.05, warmup_epochs=2, start_ratio=1.0, iterations_per_epoch=1)
        st = self.make(ramp=ramp)
        out0 = st.prepare(grads_from(rng), lr=0.1)
        assert out0["w"].nnz == 40  # ratio 1.0 in epoch 0
        st.prepare(grads_from(rng), lr=0.1)
        out2 = st.prepare(grads_from(rng), lr=0.1)
        assert out2["w"].nnz < 40

    def test_state_bytes_two_buffers(self):
        st = self.make()
        assert st.state_bytes() == 2 * (40 + 10) * 8

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            self.make(momentum=1.0)
