"""Shard-contention benchmark + regression gate for the sharded server.

Runs the threaded backend with a fixed model and ``WORKERS`` workers,
sweeping the parameter server across 1/2/4/8 shards, and extracts two
figures per shard count from the run's own metrics registry:

* ``samples_per_s`` — end-to-end training throughput (wall clock);
* ``lock_wait_p99_s`` — p99 of ``server.lock_wait_s`` with the counts of
  every per-worker/per-shard histogram series merged (plus the same
  figure per worker), via the Prometheus-style estimator.

The point of sharding is that N independent locks shear one contended
lock into N mostly-uncontended ones, so lock-wait p99 must not *rise*
as shards are added, and on real multi-core hardware throughput must
*scale*.  The gate is core-count aware because the second claim is
physically out of reach on a single CPU (the workers time-slice one
core, so there is nothing for extra shards to parallelise):

* always: merged lock-wait p99 monotonically non-increasing across the
  sweep (within ``P99_TOLERANCE`` to absorb timer noise), and sharded
  throughput within ``THROUGHPUT_TOLERANCE`` of the 1-shard run (the
  fan-out must be free when it cannot help);
* with >= ``SPEEDUP_MIN_CPUS`` cores: additionally demand
  ``REQUIRED_SPEEDUP``x samples/sec at 4 shards vs 1 shard; with fewer,
  an explicit ``speedup gate skipped (cores<4)`` line is printed so CI
  logs show the gate was consciously waived, not forgotten;
* against the committed ``BENCH_shards.json``: the measured
  throughput *ratios* (shard-S over shard-1, machine-portable like the
  kernel gate's speedup ratios) must not erode by more than
  ``RATIO_TOLERANCE`` — skipped (loudly) when the baseline's recorded
  core count and this machine's straddle ``SPEEDUP_MIN_CPUS``, since
  parallel-speedup ratios do not transfer across that boundary.

**Parallel serve mode**: a second sweep drives the *serve loop itself* —
``serve_channels`` over real pipe channels, fan-out sub-frames
pre-encoded so the workers cost nothing — once serial (``shard_lanes=
None``) and once with one executor lane per shard, at each shard count
in ``PARALLEL_SWEEP``.  The lanes decode payloads outside every lock,
so on multi-core hardware the parallel loop must clear
``REQUIRED_SPEEDUP``x serial at 4 shards; on fewer cores the gate is
skipped and the detected core count is recorded in the baseline's
``speedup_gate`` block so the waiver is auditable, not silent.  Either
way the parallel loop must stay within ``PARALLEL_TOLERANCE`` of
serial — on one core the lane handoffs are pure overhead, and this
bounds what that overhead is allowed to cost.

Usage::

    python benchmarks/bench_shard_contention.py            # gate (CI)
    python benchmarks/bench_shard_contention.py --update   # rewrite baseline
    python benchmarks/bench_shard_contention.py --parallel # serve-loop sweep only
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import Hyper  # noqa: E402
from repro.data import make_blobs  # noqa: E402
from repro.exec import RunConfig, Trainer  # noqa: E402
from repro.nn import MLP  # noqa: E402
from repro.obs import names as obs_names  # noqa: E402
from repro.obs.metrics import quantile_from_counts  # noqa: E402

BASELINE = pathlib.Path(__file__).parent / "BENCH_shards.json"

WORKERS = 8
SHARD_SWEEP = (1, 2, 4, 8)
ITERS_PER_WORKER = 40
REPEATS = 3

#: p99 may wobble this factor above the previous shard count (timer noise
#: on microsecond-scale waits) and still count as "non-increasing"
P99_TOLERANCE = 1.15
#: sharded throughput must stay within this factor of the 1-shard run.
#: On one CPU every shard's bookkeeping (tracker update, metrics, spans)
#: is pure serial overhead — ~25% at 8 shards — so this bounds the cost
#: of the fan-out where it cannot pay for itself; on >= SPEEDUP_MIN_CPUS
#: machines the REQUIRED_SPEEDUP demand below supersedes it.
THROUGHPUT_TOLERANCE = 1.5
#: committed throughput ratios must not erode by more than this factor
RATIO_TOLERANCE = 1.3
#: multi-core machines must show this speedup at 4 shards vs 1
REQUIRED_SPEEDUP = 1.5
SPEEDUP_MIN_CPUS = 4

#: shard counts for the serve-loop (serial vs lanes) sweep
PARALLEL_SWEEP = (2, 4, 8)
PARALLEL_WORKERS = 4
PARALLEL_STEPS = 30
PARALLEL_REPEATS = 3
#: (256, 256) float64 tensors; 8 of them so the 8-shard point is real.
#: Big on purpose: the lanes parallelise O(payload) decode/apply work,
#: so the measurement must be dominated by it, not by thread handoffs.
PARALLEL_LAYERS = 8
PARALLEL_LAYER_SIDE = 256
#: parallel serve must stay within this factor of serial even where it
#: cannot win.  Looser than THROUGHPUT_TOLERANCE: on a single core every
#: demux→lane→writer handoff is pure context-switch overhead by
#: construction; on >= SPEEDUP_MIN_CPUS cores the REQUIRED_SPEEDUP
#: demand supersedes this floor entirely.
PARALLEL_TOLERANCE = 2.0


def _make_config(num_shards: int) -> RunConfig:
    ds = make_blobs(n_samples=800, num_classes=4, dim=24, sep=2.0, noise=0.8, seed=11)
    return RunConfig(
        "dgs",
        # 4 hidden layers -> 10 parameter tensors, so the 8-shard point in
        # the sweep is a real 8-way partition (num_shards clamps to layers)
        lambda: MLP(24, (48, 40, 32, 24), 4, seed=3),
        ds,
        num_workers=WORKERS,
        batch_size=16,
        total_iterations=ITERS_PER_WORKER * WORKERS,
        # cool lr + damping: 8 wall-clock workers on a loaded machine reach
        # double-digit staleness, and a diverged (NaN) run times nothing real
        hyper=Hyper(lr=0.01, momentum=0.7, ratio=0.1, min_sparse_size=0),
        staleness_damping=0.5,
        seed=0,
        num_shards=num_shards,
    )


def _lock_wait_histograms(metrics: "list[dict]") -> "list[dict]":
    return [
        r
        for r in metrics
        if r.get("name") == obs_names.METRIC_SERVER_LOCK_WAIT_S
        and r.get("kind") == "histogram"
    ]


def _merge_p99(records: "list[dict]") -> float:
    """p99 over the union of the given histogram series (shared buckets)."""
    if not records:
        return float("nan")
    buckets = tuple(records[0]["buckets"])
    counts = [0] * (len(buckets) + 1)
    for r in records:
        assert tuple(r["buckets"]) == buckets, "histogram buckets diverged"
        for i, c in enumerate(r["counts"]):
            counts[i] += c
    return quantile_from_counts(buckets, counts, 0.99)


def measure_one(num_shards: int) -> "dict[str, object]":
    """Best-of-``REPEATS`` throughput; lock-wait counts pooled over repeats."""
    best_throughput = 0.0
    pooled: "list[dict]" = []
    by_worker: "dict[str, list[dict]]" = {}
    for _ in range(REPEATS):
        result = Trainer(_make_config(num_shards), backend="threaded").run()
        assert result.num_shards == num_shards
        best_throughput = max(best_throughput, result.throughput)
        histograms = _lock_wait_histograms(result.metrics or [])
        pooled.extend(histograms)
        for r in histograms:
            by_worker.setdefault(str(r["labels"]["worker"]), []).append(r)
    return {
        "samples_per_s": round(best_throughput, 1),
        "lock_wait_p99_s": _merge_p99(pooled),
        "per_worker_p99_s": {
            w: _merge_p99(rs) for w, rs in sorted(by_worker.items())
        },
        "histogram_series": len(pooled) // REPEATS,
    }


def measure() -> "dict[str, dict[str, object]]":
    return {str(s): measure_one(s) for s in SHARD_SWEEP}


# ----------------------------------------------------------------------
# parallel serve mode: the loop itself, serial vs per-shard lanes
# ----------------------------------------------------------------------

def _serve_loop_steps_per_s(num_shards: int, shard_lanes: "int | None") -> float:
    """Steps/s through ``serve_channels`` with ``PARALLEL_WORKERS`` driver
    threads blasting pre-encoded fan-out sub-frames over real pipes."""
    import threading
    import time
    from collections import OrderedDict
    from multiprocessing import Pipe

    import numpy as np

    from repro.comm.frames import CloseFrame, GradientFrame, encode_frame
    from repro.comm.pipe import PipeChannel
    from repro.comm.service import ServerService, serve_channels
    from repro.core.methods import get_method
    from repro.exec.common import build_server
    from repro.ps.messages import GradientMessage

    rng = np.random.default_rng(7)
    theta0 = OrderedDict(
        (f"w{i}", rng.normal(size=(PARALLEL_LAYER_SIDE, PARALLEL_LAYER_SIDE)))
        for i in range(PARALLEL_LAYERS)
    )
    server = build_server(
        get_method("asgd"),
        theta0,
        PARALLEL_WORKERS,
        Hyper(lr=0.01, momentum=0.0),
        num_shards=num_shards,
    )
    service = ServerService(server)
    server_ends, worker_ends = [], []
    for _ in range(PARALLEL_WORKERS):
        a, b = Pipe()
        server_ends.append(PipeChannel(a))
        worker_ends.append(PipeChannel(b))

    payload = {k: np.full_like(v, 0.01) for k, v in theta0.items()}
    parts = server.partition.split(payload)

    def worker(worker_id: int, ch: "PipeChannel") -> None:
        # Encode once, ship many: the drivers cost ~nothing, so the
        # measurement is the serve loop's decode/dispatch/reply path.
        # A separate receiver thread drains replies while the sender
        # streams sub-frames — frames here are larger than the OS pipe
        # buffer, so a single thread that sent a whole step before
        # reading would deadlock the serial loop against its own
        # replies; concurrent drain also keeps real queue depth on the
        # lanes, which is the pipelining the parallel loop overlaps.
        # The shard order is rotated by worker id so concurrent workers
        # occupy distinct lanes, not a convoy marching through shard 0.
        order = [(worker_id + i) % len(parts) for i in range(len(parts))]
        raws = {
            s: encode_frame(
                GradientFrame(GradientMessage(worker_id, parts[s], 0), loss=0.0, shard=s)
            )
            for s in order
        }
        close = encode_frame(CloseFrame(worker_id=worker_id))
        expected_replies = PARALLEL_STEPS * len(order)

        def drain() -> None:
            for _ in range(expected_replies):
                ch.recv_raw()

        rx = threading.Thread(target=drain)
        rx.start()
        for _ in range(PARALLEL_STEPS):
            for s in order:
                ch.send_raw(raws[s])
        rx.join()
        ch.send_raw(close)
        ch.close()

    threads = [
        threading.Thread(target=worker, args=(w, ch))
        for w, ch in enumerate(worker_ends)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    serve_channels(
        server_ends,
        service,
        expected_closes=PARALLEL_WORKERS,
        shard_lanes=shard_lanes,
    )
    elapsed = time.perf_counter() - t0
    for t in threads:
        t.join(timeout=30)
    return PARALLEL_WORKERS * PARALLEL_STEPS / elapsed


def measure_parallel_one(num_shards: int) -> "dict[str, float]":
    serial = parallel = 0.0
    for _ in range(PARALLEL_REPEATS):
        serial = max(serial, _serve_loop_steps_per_s(num_shards, None))
        parallel = max(parallel, _serve_loop_steps_per_s(num_shards, num_shards))
    return {
        "serial_steps_per_s": round(serial, 1),
        "parallel_steps_per_s": round(parallel, 1),
        "speedup": round(parallel / serial, 3),
    }


def measure_parallel() -> "dict[str, dict[str, float]]":
    return {str(s): measure_parallel_one(s) for s in PARALLEL_SWEEP}


def _print_parallel_table(rows: "dict[str, dict[str, float]]") -> None:
    print(f"\n{'shards':>6s} {'serial steps/s':>15s} {'lanes steps/s':>14s} {'speedup':>8s}")
    for shards, row in rows.items():
        print(
            f"{shards:>6s} {row['serial_steps_per_s']:15.1f} "
            f"{row['parallel_steps_per_s']:14.1f} {row['speedup']:7.2f}x"
        )


def _speedup_gate_record() -> "dict[str, object]":
    """The baseline's audit record: was the multi-core speedup gate armed
    when this baseline was written, and if not, why not."""
    cpus = os.cpu_count() or 1
    record: "dict[str, object]" = {
        "armed": cpus >= SPEEDUP_MIN_CPUS,
        "cpu_count": cpus,
        "required_speedup": REQUIRED_SPEEDUP,
        "min_cpus": SPEEDUP_MIN_CPUS,
    }
    if cpus < SPEEDUP_MIN_CPUS:
        record["skip_reason"] = (
            f"cores<{SPEEDUP_MIN_CPUS}: {cpus} CPU(s) detected at baseline update"
        )
    return record


def _parallel_failures(rows: "dict[str, dict[str, float]]") -> "list[str]":
    failures: "list[str]" = []
    cpus = os.cpu_count() or 1
    for shards in PARALLEL_SWEEP:
        row = rows[str(shards)]
        if row["parallel_steps_per_s"] < row["serial_steps_per_s"] / PARALLEL_TOLERANCE:
            failures.append(
                f"parallel serve, {shards} shards: {row['parallel_steps_per_s']:.1f} "
                f"steps/s fell below serial ({row['serial_steps_per_s']:.1f}) / "
                f"{PARALLEL_TOLERANCE} — the lane machinery is costing real "
                "throughput even where it cannot win"
            )
    if cpus >= SPEEDUP_MIN_CPUS:
        speedup = rows["4"]["speedup"]
        if speedup < REQUIRED_SPEEDUP:
            failures.append(
                f"parallel serve, 4 shards: {speedup:.2f}x over serial on a "
                f"{cpus}-CPU machine (need {REQUIRED_SPEEDUP}x — decode-outside-"
                "lock lanes must actually overlap)"
            )
    else:
        print(f"speedup gate skipped (cores<{SPEEDUP_MIN_CPUS})")
        print(
            f"note: {cpus} CPU(s) — lanes cannot overlap decode work; gating the "
            "parallel loop on no-throughput-regression only and recording the "
            "core count in the baseline's speedup_gate block"
        )
    return failures


def _print_table(rows: "dict[str, dict[str, object]]") -> None:
    base = rows["1"]["samples_per_s"]
    print(f"{'shards':>6s} {'samples/s':>12s} {'vs 1 shard':>11s} {'lock-wait p99':>14s} {'series':>7s}")
    for shards, row in rows.items():
        p99 = row["lock_wait_p99_s"]
        print(
            f"{shards:>6s} {row['samples_per_s']:12.1f} "
            f"{row['samples_per_s'] / base:10.2f}x {p99 * 1e6:11.2f} us "
            f"{row['histogram_series']:>7d}"
        )


def _structural_failures(rows: "dict[str, dict[str, object]]") -> "list[str]":
    """Core-count-aware invariants measured fresh on this machine."""
    failures: "list[str]" = []
    base = rows["1"]["samples_per_s"]
    prev_p99 = None
    for shards in SHARD_SWEEP:
        row = rows[str(shards)]
        p99 = row["lock_wait_p99_s"]
        if math.isnan(p99):
            failures.append(f"{shards} shards: no lock-wait samples observed")
            continue
        if prev_p99 is not None and p99 > prev_p99 * P99_TOLERANCE:
            failures.append(
                f"{shards} shards: lock-wait p99 {p99 * 1e6:.2f}us rose above "
                f"{prev_p99 * 1e6:.2f}us x {P99_TOLERANCE} from the previous "
                "shard count (sharding must relieve contention, not add it)"
            )
        prev_p99 = min(p99, prev_p99) if prev_p99 is not None else p99
        if row["samples_per_s"] < base / THROUGHPUT_TOLERANCE:
            failures.append(
                f"{shards} shards: {row['samples_per_s']:.1f} samples/s fell below "
                f"the 1-shard run ({base:.1f}) / {THROUGHPUT_TOLERANCE} — the "
                "fan-out is costing real throughput"
            )
    cpus = os.cpu_count() or 1
    if cpus >= SPEEDUP_MIN_CPUS:
        speedup = rows["4"]["samples_per_s"] / base
        if speedup < REQUIRED_SPEEDUP:
            failures.append(
                f"4 shards: {speedup:.2f}x speedup on a {cpus}-CPU machine "
                f"(need {REQUIRED_SPEEDUP}x)"
            )
    else:
        print(f"speedup gate skipped (cores<{SPEEDUP_MIN_CPUS})")
        print(
            f"note: {cpus} CPU(s) — parallel speedup unattainable, gating on "
            "lock-wait p99 monotonicity and no-throughput-regression only"
        )
    return failures


def cmd_update() -> int:
    rows = measure()
    _print_table(rows)
    parallel_rows = measure_parallel()
    _print_parallel_table(parallel_rows)
    failures = _structural_failures(rows) + _parallel_failures(parallel_rows)
    if failures:
        print("\nrefusing to write baseline:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    BASELINE.write_text(
        json.dumps(
            {
                "workers": WORKERS,
                "iters_per_worker": ITERS_PER_WORKER,
                "repeats": REPEATS,
                "cpu_count_at_update": os.cpu_count() or 1,
                "p99_tolerance": P99_TOLERANCE,
                "throughput_tolerance": THROUGHPUT_TOLERANCE,
                "ratio_tolerance": RATIO_TOLERANCE,
                "runs": rows,
                "parallel_serve": parallel_rows,
                "speedup_gate": _speedup_gate_record(),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"baseline written to {BASELINE}")
    return 0


def cmd_parallel() -> int:
    """Serve-loop sweep only: no threaded backend runs, no baseline I/O."""
    parallel_rows = measure_parallel()
    _print_parallel_table(parallel_rows)
    failures = _parallel_failures(parallel_rows)
    if failures:
        print("\nPARALLEL SERVE REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nok: parallel serve loop within tolerance of serial"
          + (" and over the required speedup" if (os.cpu_count() or 1) >= SPEEDUP_MIN_CPUS else ""))
    return 0


def cmd_check() -> int:
    if not BASELINE.exists():
        print(f"missing baseline {BASELINE}; run with --update first", file=sys.stderr)
        return 1
    committed = json.loads(BASELINE.read_text())
    baseline = committed["runs"]
    rows = measure()
    _print_table(rows)
    parallel_rows = measure_parallel()
    _print_parallel_table(parallel_rows)
    failures = _structural_failures(rows) + _parallel_failures(parallel_rows)
    # Throughput *ratios* vs 1 shard are machine-portable — but only
    # between machines on the same side of the speedup threshold: a
    # baseline recorded on multi-core hardware carries genuine parallel
    # speedup that a 1-CPU runner cannot reproduce (and vice versa the
    # erosion check would be vacuously easy), so the comparison is
    # skipped, loudly, when the core counts straddle SPEEDUP_MIN_CPUS.
    cpus = os.cpu_count() or 1
    baseline_cpus = committed.get("cpu_count_at_update", 1)
    if (cpus >= SPEEDUP_MIN_CPUS) != (baseline_cpus >= SPEEDUP_MIN_CPUS):
        print(
            f"ratio gate skipped: baseline from a {baseline_cpus}-CPU machine, "
            f"this machine has {cpus} — throughput ratios are not comparable "
            "across the speedup threshold; re-baseline with --update"
        )
    else:
        base_now = rows["1"]["samples_per_s"]
        base_then = baseline["1"]["samples_per_s"]
        for shards in SHARD_SWEEP[1:]:
            key = str(shards)
            if key not in baseline:
                failures.append(f"{shards} shards: in sweep but missing from baseline")
                continue
            ratio_now = rows[key]["samples_per_s"] / base_now
            ratio_then = baseline[key]["samples_per_s"] / base_then
            if ratio_now < ratio_then / RATIO_TOLERANCE:
                failures.append(
                    f"{shards} shards: throughput ratio {ratio_now:.2f}x eroded below "
                    f"baseline {ratio_then:.2f}x / {RATIO_TOLERANCE}"
                )
        # lanes-over-serial speedups are ratios too, portable under the
        # same same-side-of-the-threshold caveat as above
        for shards, then_row in committed.get("parallel_serve", {}).items():
            if shards not in parallel_rows:
                continue
            speedup_now = parallel_rows[shards]["speedup"]
            speedup_then = then_row["speedup"]
            if speedup_now < speedup_then / RATIO_TOLERANCE:
                failures.append(
                    f"parallel serve, {shards} shards: speedup {speedup_now:.2f}x "
                    f"eroded below baseline {speedup_then:.2f}x / {RATIO_TOLERANCE}"
                )
    if failures:
        print("\nSHARD CONTENTION REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nok: lock-wait p99 non-increasing across the sweep, throughput within tolerance")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--update", action="store_true", help="re-measure and rewrite the baseline")
    ap.add_argument(
        "--parallel",
        action="store_true",
        help="run only the serve-loop sweep (serial vs per-shard lanes)",
    )
    args = ap.parse_args(argv)
    if args.update and args.parallel:
        ap.error("--parallel is measurement-only; drop it when using --update")
    if args.parallel:
        return cmd_parallel()
    return cmd_update() if args.update else cmd_check()


if __name__ == "__main__":
    raise SystemExit(main())
