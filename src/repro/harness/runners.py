"""High-level experiment runners shared by benches, examples, and tests."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ..core.methods import Hyper, get_method
from ..exec import Backend, RunConfig, TrainResult, get_backend
from ..harness.local import LocalResult, LocalTrainer
from ..obs.tracer import NullTracer, Tracer
from ..sim.cluster import ClusterConfig
from .config import WorkloadSpec, paper_cluster

__all__ = ["run_distributed", "run_msgd", "run_all_methods", "DISTRIBUTED_METHODS"]

DISTRIBUTED_METHODS = ("asgd", "gd_async", "dgc_async", "dgs")


def run_distributed(
    method: str,
    workload: WorkloadSpec,
    num_workers: int,
    gbps: float = 10.0,
    epochs: int | None = None,
    batch_size: int | None = None,
    total_iterations: int | None = None,
    hyper: Hyper | None = None,
    secondary_compression: bool | None = None,
    cluster: ClusterConfig | None = None,
    eval_every: int | None = None,
    staleness_damping: bool = False,
    fast: bool | None = None,
    tracer: "Tracer | NullTracer | None" = None,
    backend: "str | Backend | None" = None,
    seed: int = 0,
) -> TrainResult:
    """One distributed run of ``method`` on ``workload``, on any backend.

    ``backend`` names an execution backend from the :mod:`repro.exec`
    registry (``"threaded"`` | ``"process"`` | ``"simulated"`` | ``"sync"``);
    None uses the ambient default (``"simulated"`` unless changed with
    ``repro.exec.use_backend``).  The paper-shaped cluster (``gbps``,
    ResNet-18 wire scaling) only applies to the virtual-clock backends.

    ``tracer``: a :class:`repro.obs.Tracer` to stamp with spans (defaults
    to the ambient tracer, so ``use_tracer`` + the CLI's ``--trace``
    capture experiment runs without plumbing).
    """
    dataset = workload.dataset(fast)
    model_factory = workload.model_factory(seed=seed)
    bs = batch_size if batch_size is not None else workload.batch_size
    total_epochs = epochs if epochs is not None else workload.epochs
    total_iters = (
        total_iterations
        if total_iterations is not None
        else max(1, (total_epochs * dataset.n_train) // bs)
    )
    h = hyper if hyper is not None else workload.hyper
    h = replace(h, iterations_per_epoch=max(1, total_iters // max(total_epochs, 1) // num_workers))
    exec_backend = get_backend(backend)
    if cluster is None and exec_backend.clock == "virtual":
        cluster = paper_cluster(num_workers, gbps, model_factory(), seed=seed)
    config = RunConfig(
        method,
        model_factory,
        dataset,
        num_workers=num_workers,
        batch_size=bs,
        total_iterations=total_iters,
        hyper=h,
        schedule=workload.schedule(total_epochs, lr=h.lr),
        secondary_compression=secondary_compression,
        staleness_damping=staleness_damping,
        seed=seed,
        cluster=cluster,
        eval_every=eval_every,
        tracer=tracer,
    )
    return exec_backend.run(config)


def run_msgd(
    workload: WorkloadSpec,
    epochs: int | None = None,
    batch_size: int | None = None,
    eval_every: int | None = None,
    fast: bool | None = None,
    seed: int = 0,
) -> LocalResult:
    """Single-node momentum-SGD baseline on ``workload``."""
    dataset = workload.dataset(fast)
    bs = batch_size if batch_size is not None else workload.batch_size
    total_epochs = epochs if epochs is not None else workload.epochs
    total_iters = max(1, (total_epochs * dataset.n_train) // bs)
    trainer = LocalTrainer(
        workload.model_factory(seed=seed),
        dataset,
        batch_size=bs,
        total_iterations=total_iters,
        lr=workload.hyper.lr,
        momentum=workload.hyper.momentum,
        schedule=workload.schedule(total_epochs),
        eval_every=eval_every,
        seed=seed,
    )
    return trainer.run()


def run_all_methods(
    workload: WorkloadSpec,
    num_workers: int,
    methods: tuple[str, ...] = DISTRIBUTED_METHODS,
    include_msgd: bool = True,
    **kwargs,
) -> "dict[str, TrainResult | LocalResult]":
    """Run every requested method on identical data/model/cluster settings."""
    results: dict[str, TrainResult | LocalResult] = {}
    if include_msgd:
        results["msgd"] = run_msgd(
            workload,
            epochs=kwargs.get("epochs"),
            batch_size=kwargs.get("batch_size"),
            eval_every=kwargs.get("eval_every"),
            fast=kwargs.get("fast"),
            seed=kwargs.get("seed", 0),
        )
    for m in methods:
        results[m] = run_distributed(m, workload, num_workers, **kwargs)
    return results
