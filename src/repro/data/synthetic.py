"""Synthetic dataset generators.

The paper evaluates on CIFAR-10 and ImageNet, neither of which is available
offline.  Per DESIGN.md §2 we substitute procedurally generated,
class-structured datasets that exercise the identical training pipeline:
multi-class image-shaped inputs, per-worker shards, train/validation split,
and a top-1 accuracy metric whose ordering across methods is meaningful.

Generation model for image datasets: each class draws a smooth random
"template" image; each sample is the template under a random affine-ish
deformation (shift + channel gain) plus Gaussian pixel noise.  The
``difficulty`` knob scales noise relative to template separation so that
reaching high accuracy requires genuine optimisation, not memorisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Dataset",
    "make_blobs",
    "make_spirals",
    "make_image_classes",
    "synthetic_cifar10",
    "synthetic_imagenet",
]


@dataclass
class Dataset:
    """An in-memory supervised dataset with a held-out validation split."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train inputs/targets length mismatch")
        if len(self.x_val) != len(self.y_val):
            raise ValueError("val inputs/targets length mismatch")

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_val(self) -> int:
        return len(self.x_val)

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.x_train.shape[1:]

    def shard(self, num_shards: int, shard_id: int) -> "Dataset":
        """Return the ``shard_id``-th of ``num_shards`` disjoint training shards.

        Validation data is shared by all shards (evaluation is global).
        """
        if not 0 <= shard_id < num_shards:
            raise ValueError(f"shard_id {shard_id} out of range for {num_shards} shards")
        idx = np.arange(self.n_train)[shard_id::num_shards]
        return Dataset(
            self.x_train[idx],
            self.y_train[idx],
            self.x_val,
            self.y_val,
            self.num_classes,
            name=f"{self.name}[shard {shard_id}/{num_shards}]",
        )


def _split(
    x: np.ndarray, y: np.ndarray, val_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n = len(x)
    perm = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val, train = perm[:n_val], perm[n_val:]
    return x[train], y[train], x[val], y[val]


def make_blobs(
    n_samples: int = 1000,
    num_classes: int = 10,
    dim: int = 20,
    sep: float = 2.0,
    noise: float = 1.0,
    val_fraction: float = 0.2,
    seed: int = 0,
) -> Dataset:
    """Gaussian class clusters — the fastest dataset, used in unit tests."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, sep, size=(num_classes, dim))
    y = rng.integers(0, num_classes, size=n_samples)
    x = centers[y] + rng.normal(0.0, noise, size=(n_samples, dim))
    xtr, ytr, xv, yv = _split(x, y, val_fraction, rng)
    return Dataset(xtr, ytr, xv, yv, num_classes, name="blobs")


def make_spirals(
    n_samples: int = 1000,
    num_classes: int = 3,
    noise: float = 0.1,
    turns: float = 1.5,
    val_fraction: float = 0.2,
    seed: int = 0,
) -> Dataset:
    """Interleaved 2-D spirals — a nonlinearly separable benchmark."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, num_classes, size=n_samples)
    t = rng.random(n_samples)
    radius = 0.2 + 0.8 * t
    angle = 2 * np.pi * (turns * t + y / num_classes)
    x = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
    x += rng.normal(0.0, noise, size=x.shape)
    xtr, ytr, xv, yv = _split(x, y, val_fraction, rng)
    return Dataset(xtr, ytr, xv, yv, num_classes, name="spirals")


def _smooth_template(
    rng: np.random.Generator, channels: int, size: int, smoothness: int = 3
) -> np.ndarray:
    """Draw a smooth random image by upsampling low-frequency noise."""
    coarse = rng.normal(0.0, 1.0, size=(channels, smoothness, smoothness))
    # Bilinear upsample via separable linear interpolation (vectorised).
    grid = np.linspace(0, smoothness - 1, size)
    lo = np.floor(grid).astype(int)
    hi = np.minimum(lo + 1, smoothness - 1)
    frac = grid - lo
    rows = coarse[:, lo, :] * (1 - frac)[None, :, None] + coarse[:, hi, :] * frac[None, :, None]
    img = rows[:, :, lo] * (1 - frac)[None, None, :] + rows[:, :, hi] * frac[None, None, :]
    return img


def make_image_classes(
    n_samples: int = 2000,
    num_classes: int = 10,
    channels: int = 3,
    size: int = 8,
    difficulty: float = 1.0,
    val_fraction: float = 0.2,
    seed: int = 0,
    name: str = "images",
) -> Dataset:
    """Class-template image dataset (the CIFAR/ImageNet stand-in)."""
    rng = np.random.default_rng(seed)
    templates = np.stack([_smooth_template(rng, channels, size) for _ in range(num_classes)])
    y = rng.integers(0, num_classes, size=n_samples)

    x = templates[y].copy()
    # Random spatial shift by up to 1 pixel (np.roll per-sample, vectorised
    # by grouping the nine possible shifts).
    shifts = rng.integers(-1, 2, size=(n_samples, 2))
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            mask = (shifts[:, 0] == dy) & (shifts[:, 1] == dx)
            if mask.any() and (dy or dx):
                x[mask] = np.roll(x[mask], shift=(dy, dx), axis=(2, 3))
    # Per-sample channel gain and additive noise.
    gain = 1.0 + 0.1 * rng.normal(size=(n_samples, channels, 1, 1))
    x = x * gain + rng.normal(0.0, 0.35 * difficulty, size=x.shape)
    x = x.astype(np.float64)

    xtr, ytr, xv, yv = _split(x, y, val_fraction, rng)
    return Dataset(xtr, ytr, xv, yv, num_classes, name=name)


def synthetic_cifar10(
    n_samples: int = 2000, size: int = 8, difficulty: float = 1.0, seed: int = 0
) -> Dataset:
    """10-class RGB image dataset, the CIFAR-10 substitute (DESIGN.md §2)."""
    return make_image_classes(
        n_samples=n_samples,
        num_classes=10,
        channels=3,
        size=size,
        difficulty=difficulty,
        seed=seed,
        name="synthetic-cifar10",
    )


def synthetic_imagenet(
    n_samples: int = 6000,
    num_classes: int = 50,
    size: int = 8,
    difficulty: float = 1.0,
    seed: int = 0,
) -> Dataset:
    """Larger many-class image dataset, the ImageNet substitute (DESIGN.md §2)."""
    return make_image_classes(
        n_samples=n_samples,
        num_classes=num_classes,
        channels=3,
        size=size,
        difficulty=difficulty,
        seed=seed,
        name="synthetic-imagenet",
    )
