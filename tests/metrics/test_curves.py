"""Curves."""

import numpy as np
import pytest

from repro.metrics import Curve


class TestCurve:
    def test_add_and_len(self):
        c = Curve("x")
        c.add(1, 10.0)
        c.add(2, 20.0)
        assert len(c) == 2
        assert c.final == 20.0

    def test_rejects_decreasing_x(self):
        c = Curve("x")
        c.add(2, 1.0)
        with pytest.raises(ValueError):
            c.add(1, 1.0)

    def test_best(self):
        c = Curve("x")
        for i, v in enumerate([3.0, 9.0, 5.0]):
            c.add(i, v)
        assert c.best("max") == 9.0
        assert c.best("min") == 3.0

    def test_empty_final_raises(self):
        with pytest.raises(ValueError):
            Curve("x").final

    def test_y_at_interpolates(self):
        c = Curve("x")
        c.add(0, 0.0)
        c.add(10, 100.0)
        assert c.y_at(5) == pytest.approx(50.0)

    def test_x_reaching_below(self):
        c = Curve("loss")
        for i, v in enumerate([5.0, 3.0, 0.9, 0.5]):
            c.add(i, v)
        assert c.x_reaching(1.0, "below") == 2

    def test_x_reaching_none_if_never(self):
        c = Curve("loss")
        c.add(0, 5.0)
        assert c.x_reaching(1.0, "below") is None

    def test_x_reaching_above(self):
        c = Curve("acc")
        for i, v in enumerate([0.1, 0.6, 0.9]):
            c.add(i, v)
        assert c.x_reaching(0.5, "above") == 1

    def test_resample(self):
        c = Curve("x")
        c.add(0, 0.0)
        c.add(2, 2.0)
        np.testing.assert_allclose(c.resample(np.array([0.0, 1.0, 2.0])), [0, 1, 2])

    def test_to_rows(self):
        c = Curve("x")
        c.add(1, 2.0)
        assert c.to_rows() == [(1.0, 2.0)]


class TestCurveSet:
    def test_default_curves(self):
        from repro.metrics import CurveSet

        cs = CurveSet()
        assert cs.loss_vs_step.name == "loss_vs_step"
        assert cs.acc_vs_epoch.name == "acc_vs_epoch"
        cs.loss_vs_time.add(0.5, 3.0)
        assert cs.loss_vs_time.final == 3.0

    def test_independent_instances(self):
        from repro.metrics import CurveSet

        a, b = CurveSet(), CurveSet()
        a.loss_vs_step.add(1, 1.0)
        assert len(b.loss_vs_step) == 0
